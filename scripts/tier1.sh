#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean.
#
# Note `--workspace`: a bare `cargo test -q` from the root only tests the
# `fuiov` facade package, silently skipping every `crates/*` suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --all-targets -- -D warnings
