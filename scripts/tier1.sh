#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean.
#
# Note `--workspace`: a bare `cargo test -q` from the root only tests the
# `fuiov` facade package, silently skipping every `crates/*` suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
# Perf-sensitive crates: clones and allocation churn in the replay hot loop
# are regressions, not style nits (see DESIGN.md "Batched recovery engine").
cargo clippy --all-targets -- -D warnings -D clippy::perf -D clippy::redundant_clone

# Testkit stage: golden-trace regression (fails on any digest drift — bless
# intentional changes with FUIOV_BLESS=1, see DESIGN.md §6) plus a
# fault-matrix smoke at two extra seeds beyond the suite's defaults.
cargo test -p fuiov-testkit -q --test golden_trace
for seed in 101 202; do
  FUIOV_FAULT_SEED="$seed" cargo test -p fuiov-testkit -q --test fault_matrix
done

# Tiering stage: the same golden trace with the history forced out to the
# spill tier (tight byte budget, short keyframe interval so delta chains
# are exercised). The pinned FNV digests must survive spill + reload
# unchanged — bitwise tier invariance, not approximate agreement.
FUIOV_HISTORY_BUDGET=4096 FUIOV_KEYFRAME_INTERVAL=3 \
  cargo test -p fuiov-testkit -q --test golden_trace

# Bench smoke: every benchmark (including its pre-timing bitwise
# differential assertions) executes once with a minimal budget, so bench
# code cannot rot between full BENCH_micro.json refreshes.
FUIOV_BENCH_SMOKE=1 cargo bench -p fuiov-bench --bench micro > /dev/null
