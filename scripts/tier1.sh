#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean, golden traces,
# fault matrix, tier invariance, scenario-lab smoke, bench smoke.
#
# Every stage is a function so CI (.github/workflows/ci.yml) and local runs
# execute the *same* commands: `scripts/tier1.sh` runs them all in order,
# `scripts/tier1.sh <stage>...` runs just the named ones. `stages` lists
# what is available.
set -euo pipefail
cd "$(dirname "$0")/.."

# Correctness stages build with the portable baseline, not the local
# machine's ISA: an *empty* RUSTFLAGS overrides the `target-cpu=native`
# in .cargo/config.toml (Cargo gives the environment variable
# precedence), so what tier 1 tests is exactly what a generic x86_64
# build ships — with the `fuiov_tensor::simd` runtime dispatcher, not
# compile-time codegen, selecting the AVX2 kernels. Local benches keep
# native codegen by just not going through this script. Opt out (e.g. to
# reproduce a native-only miscompile) with FUIOV_TIER1_NATIVE=1.
if [ "${FUIOV_TIER1_NATIVE:-0}" != "1" ]; then
  export RUSTFLAGS=""
fi

# The fault-seed matrix, single-sourced: this file is the only place the
# seed values live. CI's job matrices repeat them (GitHub can't read
# files at matrix-expansion time), so tests/workspace_guard.rs asserts
# every `seed: [...]` in ci.yml matches this file — drift fails the
# suite, not a human review.
SEED_MATRIX="$(cat scripts/seed_matrix.txt)"

# Guard the workspace footgun before anything else: a bare `cargo test -q`
# from the root only tests the `fuiov` facade package, silently skipping
# every `crates/*` suite. Fail loudly if this script ever regresses to it.
stage_guard() {
  if grep -nE '^[^#]*\bcargo test\b' "$0" | grep -vE 'grep|echo' | grep -vE -- '--workspace|-p [a-z-]+' ; then
    echo "tier1.sh: bare 'cargo test' found above — it would silently skip" >&2
    echo "every crates/* suite. Use 'cargo test --workspace' or '-p <crate>'." >&2
    exit 1
  fi
}

stage_build() {
  cargo build --release
}

stage_test() {
  cargo test --workspace -q
}

stage_fmt() {
  cargo fmt --all --check
}

stage_clippy() {
  # Perf-sensitive crates: clones and allocation churn in the replay hot
  # loop are regressions, not style nits (see DESIGN.md "Batched recovery
  # engine").
  cargo clippy --all-targets -- -D warnings -D clippy::perf -D clippy::redundant_clone
}

stage_doc() {
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
}

stage_golden() {
  # Golden-trace regression (fails on any digest drift — bless intentional
  # changes with FUIOV_BLESS=1, see DESIGN.md §6).
  cargo test -p fuiov-testkit -q --test golden_trace
}

stage_fault_matrix() {
  # Fault-matrix smoke at two extra seeds beyond the suite's defaults.
  # CI fans the seeds out as a job matrix by exporting FUIOV_FAULT_SEED.
  for seed in ${FUIOV_FAULT_SEED:-$SEED_MATRIX}; do
    FUIOV_FAULT_SEED="$seed" cargo test -p fuiov-testkit -q --test fault_matrix
  done
}

stage_tier_invariance() {
  # The same golden trace with the history forced out to the spill tier
  # (tight byte budget, short keyframe interval so delta chains are
  # exercised). The pinned FNV digests must survive spill + reload
  # unchanged — bitwise tier invariance, not approximate agreement.
  FUIOV_HISTORY_BUDGET=4096 FUIOV_KEYFRAME_INTERVAL=3 \
    cargo test -p fuiov-testkit -q --test golden_trace
}

stage_jobs() {
  # Job-service crash/resume oracles under the fault matrix (CI fans the
  # seeds out via FUIOV_FAULT_SEED), plus one pass with the SIMD kill
  # switch thrown: resumed == uninterrupted must hold bitwise on both
  # kernel paths, at every checkpoint boundary, at any seed.
  for seed in ${FUIOV_FAULT_SEED:-$SEED_MATRIX}; do
    FUIOV_FAULT_SEED="$seed" cargo test -p fuiov -q --test job_resume_oracles
  done
  FUIOV_SIMD=0 cargo test -p fuiov -q --test job_resume_oracles
}

stage_simd_off() {
  # The whole suite again with the SIMD kill switch thrown, pinning every
  # runtime-dispatched kernel to its scalar reference — the suite must
  # pass identically (the golden traces inside it enforce bit-identical,
  # not just both-green). The fault matrix runs once under the kill
  # switch too: fault handling must not depend on which kernel path
  # computed the numbers.
  FUIOV_SIMD=0 cargo test --workspace -q
  FUIOV_SIMD=0 cargo test -p fuiov-testkit -q --test fault_matrix
}

stage_scale() {
  # Hierarchical-cohort scale smoke: a 10^5-vehicle round plus a
  # subtree-scoped forget under a 4 KB history budget, and the pinned
  # million-vehicle resident-byte envelope. CI fans the seeds out via
  # FUIOV_FAULT_SEED.
  for seed in ${FUIOV_FAULT_SEED:-$SEED_MATRIX}; do
    FUIOV_FAULT_SEED="$seed" cargo test -p fuiov -q --test scale_smoke
  done
}

stage_net() {
  # Networked-plane oracle: socket rounds must be bitwise identical to the
  # in-process loop — clean, sign-compressed, and under the wire fault
  # plans at seeds 101/202 (torn frames, connection drops, duplicate
  # uploads) — plus the wire-codec property suite. Then the oracle again
  # with the SIMD kill switch thrown: which kernel decoded the payload
  # must not leak through the transport seam.
  cargo test -p fuiov-net -q
  FUIOV_SIMD=0 cargo test -p fuiov-net -q --test loopback_oracle
}

stage_lab() {
  # Scenario-lab smoke slice: the smoke-tagged rows of scenarios.jsonl
  # run end to end (training, backtrack, every baseline, jobs service,
  # loopback transport, MIA + reconstruction eval columns) at each fault
  # seed, and the rows' shape asserts gate the stage (non-zero exit on
  # any failed claim). One more pass with the SIMD kill switch thrown:
  # trial metrics must not depend on which kernel path computed them.
  cargo build --release -q -p fuiov-lab
  for seed in ${FUIOV_FAULT_SEED:-$SEED_MATRIX}; do
    ./target/release/lab run --smoke --seed "$seed" --out "target/lab/seed-$seed"
    FUIOV_SIMD=0 ./target/release/lab run --smoke --seed "$seed" \
      --out "target/lab/seed-$seed-simd-off"
  done
}

stage_bench_smoke() {
  # One code path owns smoke execution: `lab bench-smoke` runs every
  # benchmark (including its pre-timing bitwise differential assertions)
  # once with a minimal budget — dispatcher on and FUIOV_SIMD=0, so both
  # kernel paths stay exercised — plus the one-cell transport sweep
  # whose exact byte-reconciliation asserts run on every CI pass, then
  # gates the recorded BENCH_*.json artifacts (schema + byte-accounting
  # invariants re-checked against the comms model).
  cargo run --release -q -p fuiov-lab --bin lab -- bench-smoke
}

ALL_STAGES="guard build test fmt clippy doc golden fault_matrix tier_invariance jobs scale net simd_off lab bench_smoke"

stages() {
  echo "$ALL_STAGES" | tr ' ' '\n'
}

if [ "${1:-}" = "stages" ]; then
  stages
  exit 0
fi

for stage in "${@:-$ALL_STAGES}"; do
  # Top-level "run everything" expands the list; named runs take one each.
  for s in $stage; do
    echo "== tier1: $s"
    "stage_$s"
  done
done
