#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean, golden traces,
# fault matrix, tier invariance, bench smoke.
#
# Every stage is a function so CI (.github/workflows/ci.yml) and local runs
# execute the *same* commands: `scripts/tier1.sh` runs them all in order,
# `scripts/tier1.sh <stage>...` runs just the named ones. `stages` lists
# what is available.
set -euo pipefail
cd "$(dirname "$0")/.."

# Guard the workspace footgun before anything else: a bare `cargo test -q`
# from the root only tests the `fuiov` facade package, silently skipping
# every `crates/*` suite. Fail loudly if this script ever regresses to it.
stage_guard() {
  if grep -nE '^[^#]*\bcargo test\b' "$0" | grep -vE 'grep|echo' | grep -vE -- '--workspace|-p [a-z-]+' ; then
    echo "tier1.sh: bare 'cargo test' found above — it would silently skip" >&2
    echo "every crates/* suite. Use 'cargo test --workspace' or '-p <crate>'." >&2
    exit 1
  fi
}

stage_build() {
  cargo build --release
}

stage_test() {
  cargo test --workspace -q
}

stage_fmt() {
  cargo fmt --all --check
}

stage_clippy() {
  # Perf-sensitive crates: clones and allocation churn in the replay hot
  # loop are regressions, not style nits (see DESIGN.md "Batched recovery
  # engine").
  cargo clippy --all-targets -- -D warnings -D clippy::perf -D clippy::redundant_clone
}

stage_doc() {
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
}

stage_golden() {
  # Golden-trace regression (fails on any digest drift — bless intentional
  # changes with FUIOV_BLESS=1, see DESIGN.md §6).
  cargo test -p fuiov-testkit -q --test golden_trace
}

stage_fault_matrix() {
  # Fault-matrix smoke at two extra seeds beyond the suite's defaults.
  # CI fans the seeds out as a job matrix by exporting FUIOV_FAULT_SEED.
  for seed in ${FUIOV_FAULT_SEED:-101 202}; do
    FUIOV_FAULT_SEED="$seed" cargo test -p fuiov-testkit -q --test fault_matrix
  done
}

stage_tier_invariance() {
  # The same golden trace with the history forced out to the spill tier
  # (tight byte budget, short keyframe interval so delta chains are
  # exercised). The pinned FNV digests must survive spill + reload
  # unchanged — bitwise tier invariance, not approximate agreement.
  FUIOV_HISTORY_BUDGET=4096 FUIOV_KEYFRAME_INTERVAL=3 \
    cargo test -p fuiov-testkit -q --test golden_trace
}

stage_bench_smoke() {
  # Every benchmark (including its pre-timing bitwise differential
  # assertions) executes once with a minimal budget, so bench code cannot
  # rot between full BENCH_micro.json refreshes.
  FUIOV_BENCH_SMOKE=1 cargo bench -p fuiov-bench --bench micro > /dev/null
}

ALL_STAGES="guard build test fmt clippy doc golden fault_matrix tier_invariance bench_smoke"

stages() {
  echo "$ALL_STAGES" | tr ' ' '\n'
}

if [ "${1:-}" = "stages" ]; then
  stages
  exit 0
fi

for stage in "${@:-$ALL_STAGES}"; do
  # Top-level "run everything" expands the list; named runs take one each.
  for s in $stage; do
    echo "== tier1: $s"
    "stage_$s"
  done
done
