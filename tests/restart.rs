//! Integration test: the server-restart story. The RSU serialises its
//! history, restarts (decode), and serves an unlearning request from the
//! restored record — producing bit-identical results to the live path.

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::storage::serialize::{decode_history, encode_history};
use fuiov::unlearn::{
    ingest_requests, JobConfig, JobLog, JobService, NoOracle, RecoveryConfig, Unlearner,
};

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 16,
    classes: 10,
};

fn trained_server(seed: u64) -> Server {
    let n = 4;
    let rounds = 12;
    let data = Dataset::digits(n * 20, &DigitStyle::small(), seed);
    let parts = partition_iid(data.len(), n, seed);
    let mut clients: Vec<Box<dyn Client>> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, SPEC, data.subset(&idx), 20, seed)) as Box<dyn Client>
        })
        .collect();
    let mut schedule = ChurnSchedule::static_membership(n, rounds);
    schedule.set_membership(
        3,
        Membership {
            joined: 2,
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let mut server = Server::new(
        FlConfig::new(rounds, 0.1)
            .batch_size(20)
            .parallel_clients(false),
        SPEC.build(seed).params(),
    );
    server.train(&mut clients, &schedule);
    server
}

#[test]
fn recovery_from_restored_history_is_bit_identical() {
    let server = trained_server(31);
    let live_history = server.history();

    let blob = encode_history(live_history);
    let restored = decode_history(&blob).expect("own encoding decodes");

    let cfg = RecoveryConfig::new(0.01);
    let live = Unlearner::new(live_history, cfg)
        .forget_and_recover(3)
        .expect("live recovery");
    let cold = Unlearner::new(&restored, cfg)
        .forget_and_recover(3)
        .expect("restored recovery");

    assert_eq!(live.params, cold.params, "restart must not change recovery");
    assert_eq!(live.start_round, cold.start_round);
    assert_eq!(live.rounds_replayed, cold.rounds_replayed);
}

/// The full RSU restart story through the job service: a forget request
/// arrives at the server, the recovery job checkpoints to an on-disk log,
/// the RSU dies mid-replay, and the restarted process — restored history
/// blob plus reopened job log — resumes to the exact bits the live
/// uninterrupted path produces.
#[test]
fn job_service_resumes_across_a_server_restart_bit_identically() {
    let mut server = trained_server(34);
    assert!(
        server.request_forget(&[3]),
        "intake accepts a fresh request"
    );
    assert!(!server.request_forget(&[3]), "duplicate intake is rejected");
    let requests = server.drain_forget_requests();
    assert_eq!(requests.len(), 1);

    let cfg = RecoveryConfig::new(0.01);
    let live = Unlearner::new(server.history(), cfg)
        .forget_and_recover(3)
        .expect("live recovery");

    let blob = encode_history(server.history());
    let log_path =
        std::env::temp_dir().join(format!("fuiov-restart-joblog-{}.seg", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    // First process: ingest the request, replay a few rounds, crash.
    {
        let (log, logged) = JobLog::open(&log_path).expect("fresh log");
        assert!(logged.is_empty());
        let mut svc = JobService::with_log(JobConfig::new(cfg).checkpoint_interval(2), log, logged);
        let ids = ingest_requests(&mut svc, server.history(), &requests);
        assert_eq!(ids.len(), 1);
        for _ in 0..4 {
            svc.step(&mut NoOracle);
        }
    } // crash: service dropped, only the log file and blob survive

    // Restarted process: restored history + reopened log, resume to done.
    let restored = decode_history(&blob).expect("own encoding decodes");
    let (log, logged) = JobLog::open(&log_path).expect("reopen log");
    assert!(!logged.is_empty(), "crash must leave sealed checkpoints");
    let mut svc = JobService::with_log(JobConfig::new(cfg).checkpoint_interval(2), log, logged);
    let ids = ingest_requests(&mut svc, &restored, &requests);
    svc.run_to_completion(&mut NoOracle);
    let resumed = svc
        .take_outcome(ids[0])
        .expect("job finished")
        .expect("job succeeded");

    assert_eq!(
        live.params, resumed.params,
        "restart through the job log must not change recovery"
    );
    assert_eq!(live.rounds_replayed, resumed.rounds_replayed);
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn blob_keeps_the_storage_savings() {
    let server = trained_server(32);
    let h = server.history();
    let blob = encode_history(h);
    // The blob's gradient section stays 2-bit packed: total size is
    // dominated by the f32 models, and is far below what full-f32
    // gradients would need.
    let full_equiv = h.full_gradient_bytes_equivalent() + h.model_bytes();
    assert!(
        blob.len() < full_equiv / 2,
        "blob {} B vs full-precision equivalent {} B",
        blob.len(),
        full_equiv
    );
}

#[test]
fn restored_history_preserves_churn_metadata() {
    let server = trained_server(33);
    let h = server.history();
    let restored = decode_history(&encode_history(h)).unwrap();
    assert_eq!(restored.join_round(3), Some(2));
    assert_eq!(restored.clients(), h.clients());
    for c in h.clients() {
        assert_eq!(restored.weight(c), h.weight(c));
    }
    assert_eq!(
        restored.gradient_savings_ratio(),
        h.gradient_savings_ratio()
    );
}
