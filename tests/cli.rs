//! Integration tests for the `fuiov` CLI binary: the full
//! train → info → unlearn → eval round trip through the filesystem.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fuiov"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fuiov-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn train_info_unlearn_eval_roundtrip() {
    let hist = tmp("hist.bin");
    let model = tmp("model.ckpt");

    let out = bin()
        .args([
            "train",
            "--out",
            hist.to_str().unwrap(),
            "--clients",
            "4",
            "--rounds",
            "8",
            "--seed",
            "5",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("final accuracy"), "{stdout}");
    assert!(hist.exists());

    let out = bin()
        .args(["info", "--history", hist.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rounds recorded:   9"), "{stdout}");
    assert!(
        stdout.contains("joined round   2"),
        "forgotten client F=2 missing: {stdout}"
    );

    let out = bin()
        .args([
            "unlearn",
            "--history",
            hist.to_str().unwrap(),
            "--client",
            "3",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("run unlearn");
    assert!(
        out.status.success(),
        "unlearn failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = bin()
        .args(["eval", "--model", model.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("run eval");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("accuracy:"));

    let _ = std::fs::remove_file(&hist);
    let _ = std::fs::remove_file(&model);
}

#[test]
fn unlearn_unknown_client_fails_cleanly() {
    let hist = tmp("hist2.bin");
    let out = bin()
        .args([
            "train",
            "--out",
            hist.to_str().unwrap(),
            "--clients",
            "3",
            "--rounds",
            "5",
            "--seed",
            "1",
        ])
        .output()
        .expect("run train");
    assert!(out.status.success());

    let out = bin()
        .args([
            "unlearn",
            "--history",
            hist.to_str().unwrap(),
            "--client",
            "99",
            "--out",
            tmp("never.ckpt").to_str().unwrap(),
        ])
        .output()
        .expect("run unlearn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("never participated"));
    let _ = std::fs::remove_file(&hist);
}

#[test]
fn bad_invocations_fail_with_usage() {
    let out = bin().output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = bin().args(["wibble"]).output().expect("run unknown");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args(["info"])
        .output()
        .expect("run info without args");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--history"));

    let out = bin()
        .args(["info", "--history", "/nonexistent/nope.bin"])
        .output()
        .expect("run info missing file");
    assert!(!out.status.success());
}
