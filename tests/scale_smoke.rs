//! Scale smoke: hierarchical cohorts at 10⁵–10⁶ vehicles.
//!
//! The hierarchy's whole point is that server-side state scales with the
//! *tree*, not the cohort: group-level history (one pseudo-client per
//! RSU leaf), lazily generated membership, and sealed subtree aggregates
//! keep a million-vehicle round inside a fixed resident-byte envelope,
//! and forgetting one vehicle replays only its root-to-leaf path.
//!
//! Resident-byte bounds below are *pinned* (measured ~33 KB at 10⁵ and
//! ~75 KB at 10⁶, asserted with ~3× headroom): a regression that
//! reintroduces per-vehicle state blows past them by orders of
//! magnitude, not by noise.
//!
//! Fault seeds follow the fault-matrix convention: `FUIOV_FAULT_SEED`
//! selects a single seed (the CI matrix fans out 101/202), otherwise the
//! in-repo defaults `[11, 29]` run.

use fuiov_core::{recover_vehicle, NoOracle, RecoveryConfig};
use fuiov_fl::hierarchy::{run_cohort, CohortConfig, CohortRun};
use fuiov_storage::TierConfig;

fn seeds() -> Vec<u64> {
    match std::env::var("FUIOV_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("FUIOV_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 29],
    }
}

/// A bounded-history cohort: every leaf's sign history lives under a
/// 4 KB hot budget, so the run exercises the spill/reload path at scale.
fn cohort(n: usize, rounds: usize, dim: usize, seed: u64) -> CohortRun {
    run_cohort(
        CohortConfig::new(n)
            .group_size(1024)
            .dim(dim)
            .rounds(rounds)
            .seed(seed)
            .tier(TierConfig::bounded(4096)),
    )
}

fn forget_and_check(run: &CohortRun, vehicle: usize, label: &str) -> usize {
    let cfg = RecoveryConfig::new(run.cfg.lr);
    let rec = recover_vehicle(run, vehicle, &cfg, &mut NoOracle)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    assert_eq!(rec.forget.vehicle, vehicle);
    assert_eq!(rec.outcome.params.len(), run.params.len());
    assert!(
        rec.outcome.params.iter().all(|x| x.is_finite()),
        "{label}: recovered model must be finite"
    );
    // Every sibling leaf reuses its sealed aggregate in every replayed
    // round — only the forgotten vehicle's own leaf is re-estimated.
    let siblings = run.cfg.leaf_count() - 1;
    assert_eq!(
        rec.outcome.sibling_reuses,
        siblings * rec.outcome.rounds_replayed,
        "{label}: subtree replay must reuse every sibling leaf"
    );
    rec.outcome.rounds_replayed
}

#[test]
fn hundred_thousand_vehicles_train_and_forget_under_4kb_budget() {
    const N: usize = 100_000;
    for seed in seeds() {
        let run = cohort(N, 6, 32, seed);
        assert_eq!(run.cfg.leaf_count(), 98);
        // No churn, no sampling: every vehicle participates every round.
        assert_eq!(run.participant_rounds, 6 * N as u64);
        assert!(
            run.params.iter().all(|x| x.is_finite()),
            "seed {seed}: trained model must be finite"
        );
        assert!(
            run.peak_resident_bytes < 96 * 1024,
            "seed {seed}: resident {} B blew the 10⁵-vehicle envelope",
            run.peak_resident_bytes
        );
        let replayed = forget_and_check(&run, (seed as usize * 37) % N, &format!("seed {seed}"));
        assert!(replayed > 0, "seed {seed}: forget must replay something");
        assert_eq!(
            run.history.tier_stats().decode_errors,
            0,
            "seed {seed}: bounded store must decode cleanly"
        );
    }
}

#[test]
fn million_vehicle_cohort_stays_inside_the_resident_envelope() {
    const N: usize = 1_000_000;
    let seed = seeds()[0];
    let run = cohort(N, 2, 16, seed);
    assert_eq!(run.cfg.leaf_count(), 977);
    assert_eq!(run.participant_rounds, 2 * N as u64);
    // The pinned end-to-end bound: training state plus group history plus
    // subtree index for a million vehicles fits in a quarter megabyte —
    // per-vehicle state at this scale would need megabytes at 1 B each.
    assert!(
        run.peak_resident_bytes < 256 * 1024,
        "resident {} B blew the million-vehicle envelope",
        run.peak_resident_bytes
    );
    let replayed = forget_and_check(&run, N / 2, "10^6 cohort");
    assert_eq!(replayed, 2);
}

/// The envelope is sublinear in the cohort: 10× the vehicles must cost
/// far less than 10× the resident bytes (the delta is leaves, never
/// vehicles).
#[test]
fn resident_bytes_scale_with_leaves_not_vehicles() {
    let seed = seeds()[0];
    let small = cohort(10_000, 3, 16, seed);
    let big = cohort(100_000, 3, 16, seed);
    assert!(
        big.peak_resident_bytes < small.peak_resident_bytes * 4,
        "10× vehicles cost {}→{} resident bytes — state is not group-level",
        small.peak_resident_bytes,
        big.peak_resident_bytes
    );
}
