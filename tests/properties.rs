//! Property-based tests over cross-crate invariants.

use fuiov::storage::checkpoint;
use fuiov::storage::GradientDirection;
use fuiov::tensor::{solve, vector, Mat};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL
        .prop_map(|v| v % 10.0)
        .prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Sign quantisation round-trips exactly through the 2-bit packing.
    #[test]
    fn direction_pack_roundtrip(grad in prop::collection::vec(small_f32(), 0..200), delta in 0.0f32..0.5) {
        let packed = GradientDirection::quantize(&grad, delta);
        let signs = packed.to_signs();
        prop_assert_eq!(signs.len(), grad.len());
        for (s, g) in signs.iter().zip(&grad) {
            let expected = if *g > delta { 1 } else if *g < -delta { -1 } else { 0 };
            prop_assert_eq!(*s, expected);
        }
        // Packed size is exactly ⌈n/4⌉ bytes.
        prop_assert_eq!(packed.byte_size(), grad.len().div_ceil(4));
    }

    /// Element-wise clipping (Eq. 7) bounds every element and never flips
    /// a sign.
    #[test]
    fn clip_elementwise_bounds_and_preserves_sign(
        mut v in prop::collection::vec(small_f32(), 1..100),
        l in 0.01f32..10.0,
    ) {
        let orig = v.clone();
        vector::clip_elementwise(&mut v, l);
        for (c, o) in v.iter().zip(&orig) {
            prop_assert!(c.abs() <= l + 1e-6);
            prop_assert!(c.signum() == o.signum() || *o == 0.0 || *c == 0.0);
            prop_assert!(c.abs() <= o.abs() + 1e-6);
        }
    }

    /// FedAvg with equal weights equals the arithmetic mean; with one
    /// dominant weight it approaches that client's gradient.
    #[test]
    fn weighted_mean_limits(
        a in prop::collection::vec(-1.0f32..1.0, 1..20),
    ) {
        let b: Vec<f32> = a.iter().map(|v| -v).collect();
        let eq = vector::weighted_mean(&[&a, &b], &[1.0, 1.0]);
        for v in &eq {
            prop_assert!(v.abs() < 1e-5);
        }
        let dominated = vector::weighted_mean(&[&a, &b], &[1e6, 1e-6]);
        prop_assert!(vector::l2_distance(&dominated, &a) < 1e-3);
    }

    /// Checkpoints round-trip bit-exactly.
    #[test]
    fn checkpoint_roundtrip(params in prop::collection::vec(small_f32(), 0..300)) {
        let buf = checkpoint::encode(&params);
        let back = checkpoint::decode(&buf).expect("own encoding decodes");
        prop_assert_eq!(back, params);
    }

    /// LU solves of diagonally dominant systems have small residuals.
    #[test]
    fn lu_solve_residual(
        seed_vals in prop::collection::vec(-1.0f32..1.0, 9),
        b in prop::collection::vec(-1.0f32..1.0, 3),
    ) {
        let mut a = Mat::from_vec(3, 3, seed_vals);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 4.0); // diagonal dominance
        }
        let x = solve::solve(&a, &b).expect("diagonally dominant is nonsingular");
        let r = a.matvec(&x);
        prop_assert!(vector::l2_distance(&r, &b) < 1e-3);
    }

    /// Dead-zone monotonicity: a larger δ never stores *more* non-zero
    /// directions.
    #[test]
    fn sparsity_monotone_in_delta(grad in prop::collection::vec(small_f32(), 1..200)) {
        let d1 = GradientDirection::quantize(&grad, 0.01);
        let d2 = GradientDirection::quantize(&grad, 0.1);
        prop_assert!(d2.sparsity() >= d1.sparsity() - 1e-12);
    }

    /// Sign aggregation (RSA, Eq. 3) output is bounded by λ·n.
    #[test]
    fn sign_aggregation_bounded(
        g1 in prop::collection::vec(-5.0f32..5.0, 1..50),
        lambda in 0.01f32..2.0,
    ) {
        let g2: Vec<f32> = g1.iter().rev().copied().collect();
        let grads = vec![g1.clone(), g2];
        let out = fuiov::fl::aggregate::aggregate(
            fuiov::fl::AggregationRule::SignSgd { lambda },
            &grads,
            &[1.0, 1.0],
        );
        for v in out {
            prop_assert!(v.abs() <= 2.0 * lambda + 1e-6);
        }
    }
}

mod lbfgs_props {
    use super::*;
    use fuiov::unlearn::LbfgsApprox;

    proptest! {
        /// On any SPD quadratic, the compact L-BFGS approximation
        /// satisfies the secant equation for the newest pair.
        #[test]
        fn secant_holds_on_random_quadratics(
            diag in prop::collection::vec(0.5f32..4.0, 4),
            dw1 in prop::collection::vec(-1.0f32..1.0, 4),
            dw2 in prop::collection::vec(-1.0f32..1.0, 4),
        ) {
            prop_assume!(vector::l2_norm(&dw1) > 0.1);
            prop_assume!(vector::l2_norm(&dw2) > 0.1);
            // Pairs must not be (nearly) collinear for a stable middle matrix.
            let cos = vector::cosine_similarity(&dw1, &dw2).unwrap_or(1.0);
            prop_assume!(cos.abs() < 0.9);
            let q = |v: &[f32]| -> Vec<f32> {
                v.iter().zip(&diag).map(|(x, d)| x * d).collect()
            };
            let dgs = vec![q(&dw1), q(&dw2)];
            let approx = match LbfgsApprox::new(&[dw1, dw2.clone()], &dgs) {
                Ok(a) => a,
                Err(_) => return Ok(()), // degenerate draw: fine
            };
            let pred = approx.hvp(&dw2);
            let err = vector::l2_distance(&pred, &dgs[1]);
            let scale = vector::l2_norm(&dgs[1]).max(1.0);
            prop_assert!(err / scale < 0.05, "secant error {err}");
        }
    }
}
