//! Integration test: §III-B unlearning-quality criteria on a real
//! pipeline — the forgotten client's data must lose its privileged fit,
//! and the recovered model must stay close to a true retrain.

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::model_distance;
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{calibrate_lr, forgetting_score, RecoveryConfig, Unlearner};

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 24,
    classes: 10,
};

/// Trains a federation where the forgotten client holds a *distinctive*
/// shard (heavy in class 9) so its contribution is measurable.
fn world(seed: u64) -> (Server, Dataset, Dataset) {
    let n = 5;
    let rounds = 40;
    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let pool = Dataset::digits(n * 30, &style, seed);
    let parts = partition_iid(pool.len(), n, seed);

    // The forgotten client's data: its IID shard plus many extra class-9
    // samples (a distinctive contribution the model will partly memorise).
    let mut forgotten_data = pool.subset(&parts[n - 1]);
    let extra = Dataset::digits(90, &style, seed + 50).filter_classes(&[9]);
    forgotten_data.merge(&extra);

    let mut clients: Vec<Box<dyn Client>> = parts[..n - 1]
        .iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, SPEC, pool.subset(idx), 30, seed)) as Box<dyn Client>
        })
        .collect();
    clients.push(Box::new(HonestClient::new(
        n - 1,
        SPEC,
        forgotten_data.clone(),
        30,
        seed,
    )));

    let mut schedule = ChurnSchedule::static_membership(n, rounds);
    schedule.set_membership(
        n - 1,
        Membership {
            joined: 2,
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let mut server = Server::new(
        FlConfig::new(rounds, 0.1)
            .batch_size(30)
            .parallel_clients(false),
        SPEC.build(seed).params(),
    );
    server.train(&mut clients, &schedule);
    let reference = Dataset::digits(120, &style, seed + 99);
    (server, forgotten_data, reference)
}

#[test]
fn unlearning_removes_the_clients_privileged_fit() {
    let (server, forgotten_data, reference) = world(3);
    let lr = calibrate_lr(server.history()).map_or(0.01, |c| c * 2.0);
    let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(lr));
    let out = unlearner.forget_and_recover(4).expect("recover");

    let mut model = SPEC.build(0);
    let score = forgetting_score(
        &mut model,
        server.params(),
        &out.params,
        &forgotten_data,
        &reference,
    );
    assert!(
        score > 0.0,
        "the forgotten client's data should lose its privileged fit (score {score})"
    );
}

#[test]
fn recovery_improves_on_the_backtracked_model_functionally() {
    let (server, _, reference) = world(4);
    let lr = calibrate_lr(server.history()).map_or(0.01, |c| c * 2.0);
    let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(lr));
    let bt = unlearner.forget(4).expect("backtrack");
    let out = unlearner.forget_and_recover(4).expect("recover");

    // §III-B's criterion is functional — the recovered model should
    // predict like one trained on the remaining clients, i.e. clearly
    // better than the nearly-untrained backtracked model w_F. (Parameter-
    // space distance to an independent retrain is not meaningful for
    // NNs, so we assert on behaviour.)
    let mut model = SPEC.build(0);
    model.set_params(&bt.params);
    let acc_backtracked = fuiov::eval::test_accuracy(&mut model, &reference);
    model.set_params(&out.params);
    let acc_recovered = fuiov::eval::test_accuracy(&mut model, &reference);
    assert!(
        acc_recovered > acc_backtracked,
        "recovery should improve accuracy: {acc_backtracked} -> {acc_recovered}"
    );
    // And it must actually move the parameters.
    assert!(model_distance(&out.params, &bt.params) > 1e-4);
}
