//! Integration tests for the poisoning → unlearning → recovery story
//! (the paper's Fig. 1 scenario at test scale).

use fuiov::attacks::{backdoor_asr, backdoor_client, Backdoor, Corner, Trigger};
use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{backtrack_set, calibrate_lr, recover_set, NoOracle, RecoveryConfig};

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 16,
    classes: 10,
};

fn bright_backdoor() -> Backdoor {
    Backdoor {
        trigger: Trigger {
            size: 3,
            value: 1.0,
            corner: Corner::BottomRight,
        },
        target_class: 2,
        fraction: 0.8,
    }
}

fn train_poisoned(seed: u64, rounds: usize) -> (Server, Dataset, Vec<usize>) {
    let n_clients = 6;
    let malicious = vec![1usize, 4];
    let attack = bright_backdoor();
    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 30, &style, seed);
    let test = Dataset::digits(150, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            let shard = train.subset(&idx);
            if malicious.contains(&id) {
                Box::new(backdoor_client(id, SPEC, shard, &attack, 30, seed)) as Box<dyn Client>
            } else {
                Box::new(HonestClient::new(id, SPEC, shard, 30, seed)) as Box<dyn Client>
            }
        })
        .collect();
    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    for &m in &malicious {
        schedule.set_membership(
            m,
            Membership {
                joined: 2,
                leaves_after: None,
                dropouts: vec![],
            },
        );
    }
    let mut server = Server::new(
        FlConfig::new(rounds, 0.1).batch_size(30),
        SPEC.build(seed).params(),
    );
    server.train(&mut clients, &schedule);
    (server, test, malicious)
}

fn asr(params: &[f32], test: &Dataset) -> f32 {
    let mut m = SPEC.build(0);
    m.set_params(params);
    backdoor_asr(&mut m, test, &bright_backdoor())
}

#[test]
fn backdoor_poisons_then_unlearning_erases_it() {
    let (server, test, malicious) = train_poisoned(9, 40);
    let history = server.history();

    let asr_before = asr(server.params(), &test);
    assert!(
        asr_before > 0.5,
        "backdoor should have taken hold (ASR {asr_before})"
    );

    let bt = backtrack_set(history, &malicious).expect("backtrack");
    let asr_forgotten = asr(&bt.params, &test);
    assert!(
        asr_forgotten < 0.3,
        "forgetting should collapse the backdoor (ASR {asr_forgotten})"
    );

    let lr = calibrate_lr(history).map_or(0.01, |c| c * 2.0);
    let out = recover_set(
        history,
        &malicious,
        &RecoveryConfig::new(lr),
        &mut NoOracle,
        |_, _| {},
    )
    .expect("recover");
    let asr_recovered = asr(&out.params, &test);
    assert!(
        asr_recovered < 0.3,
        "recovery must not re-introduce the backdoor (ASR {asr_recovered})"
    );
}

#[test]
fn recovery_excludes_every_member_of_the_forgotten_set() {
    let (server, _test, malicious) = train_poisoned(11, 12);
    let history = server.history();
    let lr = calibrate_lr(history).map_or(0.01, |c| c * 2.0);
    let out = recover_set(
        history,
        &malicious,
        &RecoveryConfig::new(lr),
        &mut NoOracle,
        |_, _| {},
    )
    .expect("recover");
    assert_eq!(out.clients, malicious);
    assert_eq!(out.start_round, 2);
}

#[test]
fn scaling_attacker_is_contained_by_robust_aggregation() {
    // Extension test: a gradient-scaling attacker is absorbed by the
    // coordinate-median rule but visibly harms FedAvg.
    use fuiov::attacks::ScalingAttacker;
    use fuiov::fl::AggregationRule;

    let run = |rule: AggregationRule| -> f32 {
        let seed = 13;
        let n_clients = 5;
        let style = DigitStyle {
            size: 12,
            ..Default::default()
        };
        let train = Dataset::digits(n_clients * 30, &style, seed);
        let test = Dataset::digits(120, &style, seed + 1);
        let shards = partition_iid(train.len(), n_clients, seed);
        let mut clients: Vec<Box<dyn Client>> = shards
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                let honest = HonestClient::new(id, SPEC, train.subset(&idx), 30, seed);
                if id == 0 {
                    Box::new(ScalingAttacker::new(honest, -20.0)) as Box<dyn Client>
                } else {
                    Box::new(honest) as Box<dyn Client>
                }
            })
            .collect();
        let cfg = FlConfig::new(25, 0.1).batch_size(30).aggregation(rule);
        let mut server = Server::new(cfg, SPEC.build(seed).params());
        server.train(
            &mut clients,
            &ChurnSchedule::static_membership(n_clients, 25),
        );
        let mut m = SPEC.build(0);
        m.set_params(server.params());
        fuiov::eval::test_accuracy(&mut m, &test)
    };

    let fedavg = run(AggregationRule::FedAvg);
    let median = run(AggregationRule::CoordinateMedian);
    assert!(
        median > fedavg + 0.05,
        "median should resist the scaling attack: fedavg={fedavg} median={median}"
    );
}
