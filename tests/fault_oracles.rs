//! Top-level smoke test wiring the fault-injection harness into the main
//! crate's integration suite: plans are seed-reproducible, cover the full
//! fault taxonomy, and the unlearning pipeline degrades into typed errors
//! (never panics) when its inputs are corrupted.

use fuiov_core::UnlearnError;
use fuiov_storage::checkpoint::{self, DecodeError};
use fuiov_testkit::{CanonicalRun, Corruptor, FaultPlan, FaultSpec};
use std::sync::Arc;

#[test]
fn fault_plans_are_reproducible_and_cover_the_taxonomy() {
    let spec = FaultSpec::small(3, 6, 100);
    let a = FaultPlan::sample(123, &spec);
    assert_eq!(a, FaultPlan::sample(123, &spec));
    assert!(
        a.classes().len() >= 5,
        "a plan must exercise at least 5 fault classes"
    );
}

#[test]
fn faulted_end_to_end_run_degrades_gracefully() {
    let scenario = CanonicalRun::standard();
    let dim = scenario.initial_params().len();
    let plan = Arc::new(FaultPlan::sample(
        42,
        &FaultSpec::small(scenario.clients, scenario.rounds, dim),
    ));
    let run = scenario.train_faulted(&plan);
    assert!(run.params.iter().all(|v| v.is_finite()));

    // The final model survives a persistence round-trip but every planned
    // corruption of the blob is caught with a typed error.
    let blob = checkpoint::encode(&run.params);
    assert_eq!(checkpoint::decode(&blob).unwrap().len(), dim);
    for raw in plan.truncations() {
        let cut = Corruptor::truncate(&blob, raw);
        assert_eq!(checkpoint::decode(&cut), Err(DecodeError::Truncated));
    }

    // Unlearning on the faulted history: success or a typed error.
    if let Err(e) = scenario.recover_forgotten(&run.history, |_, _| {}) {
        let _typed: UnlearnError = e;
    }
}

#[test]
fn cold_spilled_history_recovers_bitwise_identically() {
    // Tiering oracle: force every checkpoint and direction map out to the
    // spill file under a zero in-memory budget, drop the decode caches,
    // and replay. Streaming rounds back through the segment tier must
    // reproduce the all-in-memory recovery bit for bit.
    use fuiov_core::calibrate_lr;
    use fuiov_testkit::bitwise_eq;

    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    let hot = scenario.recover_forgotten(&run.history, |_, _| {}).unwrap();

    let mut cold_store = run.history.clone();
    cold_store.set_budget(Some(0));
    cold_store.force_spill_all();
    cold_store.invalidate_caches();
    assert_eq!(cold_store.tier_stats().decode_errors, 0);
    assert!(
        cold_store.spilled_bytes() > 0,
        "budget 0 must spill the store"
    );

    let cold = scenario.recover_forgotten(&cold_store, |_, _| {}).unwrap();
    assert!(
        bitwise_eq(&hot.params, &cold.params),
        "spilled replay must match the in-memory replay bit for bit"
    );
    assert_eq!(hot.rounds_replayed, cold.rounds_replayed);
    assert_eq!(hot.estimator_fallbacks, cold.estimator_fallbacks);
    assert_eq!(
        calibrate_lr(&run.history).map(f32::to_bits),
        calibrate_lr(&cold_store).map(f32::to_bits),
        "calibration must be tier-invariant"
    );

    assert_eq!(
        cold_store.tier_stats().decode_errors,
        0,
        "clean store, clean decodes"
    );
}

#[test]
fn fedrecover_baseline_is_tier_invariant() {
    // The FedRecover baseline streams rounds through the same RoundView
    // path as core recovery; spilling the whole history to disk must not
    // move a single bit of its output.
    use fuiov_baselines::{fedrecover, FedRecoverConfig};
    use fuiov_core::recover::NoOracle;
    use fuiov_storage::history::FullGradientStore;
    use fuiov_storage::HistoryStore;
    use fuiov_testkit::bitwise_eq;

    // Synthetic quadratic federation: client c pulls toward its own
    // target, client 1 (forgotten) only joins at round 2.
    let (dim, rounds, clients, lr) = (6usize, 12usize, 4usize, 0.05f32);
    let mut h = HistoryStore::new(1e-6);
    let mut fs = FullGradientStore::new();
    for c in 0..clients {
        h.record_join(c, if c == 1 { 2 } else { 0 });
    }
    let mut w: Vec<f32> = (0..dim).map(|j| 0.3 * (j as f32 + 1.0)).collect();
    for t in 0..rounds {
        h.record_model(t, w.clone());
        let mut grads = Vec::new();
        for c in 0..clients {
            if c == 1 && t < 2 {
                continue;
            }
            let target: Vec<f32> = (0..dim).map(|j| ((c + j) % 3) as f32).collect();
            let g: Vec<f32> = w.iter().zip(&target).map(|(a, b)| a - b).collect();
            h.record_gradient(t, c, &g);
            fs.record(t, c, g.clone());
            grads.push(g);
        }
        let n = grads.len() as f32;
        for j in 0..dim {
            let mean: f32 = grads.iter().map(|g| g[j]).sum::<f32>() / n;
            w[j] -= lr * mean;
        }
    }
    h.record_model(rounds, w);

    let mut cold = h.clone();
    cold.set_budget(Some(0));
    cold.force_spill_all();
    cold.invalidate_caches();

    let cfg = FedRecoverConfig::new(lr);
    let hot = fedrecover(&h, &fs, 1, &cfg, &mut NoOracle).unwrap();
    let spilled = fedrecover(&cold, &fs, 1, &cfg, &mut NoOracle).unwrap();
    assert!(
        bitwise_eq(&hot.params, &spilled.params),
        "fedrecover must be tier-invariant"
    );
    assert_eq!(hot.rounds_replayed, spilled.rounds_replayed);
    assert_eq!(cold.tier_stats().decode_errors, 0);
}

#[test]
fn forgetting_after_everyone_left_is_a_typed_error() {
    // The regression the testkit PR fixed: when no remaining vehicle has
    // any record in the replay window, recovery must report
    // EmptyMembershipWindow rather than silently returning the
    // backtracked model.
    use fuiov_core::{RecoveryConfig, Unlearner};
    use fuiov_storage::HistoryStore;
    let mut h = HistoryStore::new(1e-6);
    for t in 0..=3 {
        h.record_model(t, vec![t as f32; 4]);
    }
    h.record_join(0, 0);
    h.record_gradient(0, 0, &[0.5, -0.5, 0.5, -0.5]);
    h.record_gradient(1, 0, &[0.5, -0.5, 0.5, -0.5]);
    h.record_leave(0, 1);
    h.record_join(1, 2);
    h.record_gradient(2, 1, &[0.5, -0.5, 0.5, -0.5]);

    let unlearner = Unlearner::new(&h, RecoveryConfig::new(0.1));
    assert_eq!(
        unlearner.forget_and_recover(1).unwrap_err(),
        UnlearnError::EmptyMembershipWindow {
            start_round: 2,
            end_round: 3
        }
    );
}
