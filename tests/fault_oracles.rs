//! Top-level smoke test wiring the fault-injection harness into the main
//! crate's integration suite: plans are seed-reproducible, cover the full
//! fault taxonomy, and the unlearning pipeline degrades into typed errors
//! (never panics) when its inputs are corrupted.

use fuiov_core::UnlearnError;
use fuiov_storage::checkpoint::{self, DecodeError};
use fuiov_testkit::{CanonicalRun, Corruptor, FaultPlan, FaultSpec};
use std::sync::Arc;

#[test]
fn fault_plans_are_reproducible_and_cover_the_taxonomy() {
    let spec = FaultSpec::small(3, 6, 100);
    let a = FaultPlan::sample(123, &spec);
    assert_eq!(a, FaultPlan::sample(123, &spec));
    assert!(a.classes().len() >= 5, "a plan must exercise at least 5 fault classes");
}

#[test]
fn faulted_end_to_end_run_degrades_gracefully() {
    let scenario = CanonicalRun::standard();
    let dim = scenario.initial_params().len();
    let plan = Arc::new(FaultPlan::sample(
        42,
        &FaultSpec::small(scenario.clients, scenario.rounds, dim),
    ));
    let run = scenario.train_faulted(&plan);
    assert!(run.params.iter().all(|v| v.is_finite()));

    // The final model survives a persistence round-trip but every planned
    // corruption of the blob is caught with a typed error.
    let blob = checkpoint::encode(&run.params);
    assert_eq!(checkpoint::decode(&blob).unwrap().len(), dim);
    for raw in plan.truncations() {
        let cut = Corruptor::truncate(&blob, raw);
        assert_eq!(checkpoint::decode(&cut), Err(DecodeError::Truncated));
    }

    // Unlearning on the faulted history: success or a typed error.
    if let Err(e) = scenario.recover_forgotten(&run.history, |_, _| {}) {
        let _typed: UnlearnError = e;
    }
}

#[test]
fn forgetting_after_everyone_left_is_a_typed_error() {
    // The regression the testkit PR fixed: when no remaining vehicle has
    // any record in the replay window, recovery must report
    // EmptyMembershipWindow rather than silently returning the
    // backtracked model.
    use fuiov_core::{RecoveryConfig, Unlearner};
    use fuiov_storage::HistoryStore;
    let mut h = HistoryStore::new(1e-6);
    for t in 0..=3 {
        h.record_model(t, vec![t as f32; 4]);
    }
    h.record_join(0, 0);
    h.record_gradient(0, 0, &[0.5, -0.5, 0.5, -0.5]);
    h.record_gradient(1, 0, &[0.5, -0.5, 0.5, -0.5]);
    h.record_leave(0, 1);
    h.record_join(1, 2);
    h.record_gradient(2, 1, &[0.5, -0.5, 0.5, -0.5]);

    let unlearner = Unlearner::new(&h, RecoveryConfig::new(0.1));
    assert_eq!(
        unlearner.forget_and_recover(1).unwrap_err(),
        UnlearnError::EmptyMembershipWindow { start_round: 2, end_round: 3 }
    );
}
