//! Guards the workspace-test footgun: because the root manifest doubles as
//! the `fuiov` facade package, a bare `cargo test` from the repo root runs
//! ONLY this package's suites. These checks pin the defences — the tier-1
//! script must use `--workspace` (or target a specific `-p` package), and
//! the manifests must keep the warning and the `cargo t` alias — so the
//! trap cannot silently reopen.

use std::fs;
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn tier1_never_runs_a_bare_cargo_test() {
    let script = fs::read_to_string(root().join("scripts/tier1.sh")).expect("tier1.sh exists");
    assert!(
        script.contains("cargo test --workspace"),
        "tier1.sh must run the full workspace suite"
    );
    for (i, line) in script.lines().enumerate() {
        let code = line.split('#').next().unwrap_or("");
        if code.contains("grep") || code.contains("echo") {
            continue; // the guard stage talks about the pattern it bans
        }
        if let Some(pos) = code.find("cargo test") {
            let rest = &code[pos..];
            assert!(
                rest.contains("--workspace") || rest.contains("-p "),
                "tier1.sh line {}: bare `cargo test` would silently skip crates/*: {line}",
                i + 1
            );
        }
    }
}

#[test]
fn manifest_documents_the_footgun_and_alias_covers_it() {
    let manifest = fs::read_to_string(root().join("Cargo.toml")).expect("Cargo.toml exists");
    assert!(
        manifest.contains("cargo test --workspace"),
        "the workspace manifest must warn about bare `cargo test`"
    );
    let config = fs::read_to_string(root().join(".cargo/config.toml")).expect("config exists");
    assert!(
        config.contains("t = \"test --workspace\""),
        ".cargo/config.toml must alias `cargo t` to the workspace suite"
    );
}

#[test]
fn ci_runs_the_same_stages_as_tier1() {
    // CI must not drift from the local gate: every stage it invokes goes
    // through scripts/tier1.sh, and the stages it names must exist there.
    let ci = fs::read_to_string(root().join(".github/workflows/ci.yml")).expect("ci.yml exists");
    let script = fs::read_to_string(root().join("scripts/tier1.sh")).expect("tier1.sh exists");
    let mut invoked = 0;
    for line in ci.lines() {
        let line = line.trim();
        let Some(args) = line.strip_prefix("run: bash scripts/tier1.sh") else {
            continue;
        };
        for stage in args.split_whitespace() {
            invoked += 1;
            assert!(
                script.contains(&format!("stage_{stage}()")),
                "ci.yml invokes unknown tier1 stage `{stage}`"
            );
        }
    }
    assert!(
        invoked >= 10,
        "ci.yml must drive its checks through tier1.sh stages, found {invoked}"
    );
}

#[test]
fn ci_seed_matrices_match_the_seed_matrix_file() {
    // The fault seeds are single-sourced in scripts/seed_matrix.txt
    // (tier1.sh reads it at run time). GitHub job matrices cannot read
    // files, so ci.yml repeats the values — this test is the drift gate.
    let seeds = fs::read_to_string(root().join("scripts/seed_matrix.txt"))
        .expect("scripts/seed_matrix.txt exists");
    let seeds: Vec<&str> = seeds.split_whitespace().collect();
    assert!(
        !seeds.is_empty(),
        "seed_matrix.txt must list at least one seed"
    );
    let expected = format!("seed: [{}]", seeds.join(", "));

    let script = fs::read_to_string(root().join("scripts/tier1.sh")).expect("tier1.sh exists");
    assert!(
        script.contains("seed_matrix.txt"),
        "tier1.sh must default its fault seeds from scripts/seed_matrix.txt"
    );

    let ci = fs::read_to_string(root().join(".github/workflows/ci.yml")).expect("ci.yml exists");
    let mut matrices = 0;
    for (i, line) in ci.lines().enumerate() {
        let line = line.trim();
        if line.starts_with("seed: [") {
            matrices += 1;
            assert_eq!(
                line,
                expected,
                "ci.yml line {}: seed matrix drifted from scripts/seed_matrix.txt",
                i + 1
            );
        }
    }
    assert!(
        matrices >= 4,
        "ci.yml should fan out at least the fault-matrix, job-resume, scale, \
         and lab jobs over the seed matrix, found {matrices}"
    );
}
