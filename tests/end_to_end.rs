//! Integration tests: the full train → forget → recover pipeline through
//! the public facade, spanning every crate.

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{calibrate_lr, RecoveryConfig, UnlearnError, Unlearner};

const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 16,
    classes: 10,
};

struct World {
    server: Server,
    test: Dataset,
}

fn train_world(seed: u64, n_clients: usize, rounds: usize, forgotten: usize) -> World {
    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 20, &style, seed);
    let test = Dataset::digits(120, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, SPEC, train.subset(&idx), 20, seed)) as Box<dyn Client>
        })
        .collect();
    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    schedule.set_membership(
        forgotten,
        Membership {
            joined: 2,
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let cfg = FlConfig::new(rounds, 0.1)
        .batch_size(20)
        .keep_full_gradients(true);
    let mut server = Server::new(cfg, SPEC.build(seed).params());
    server.train(&mut clients, &schedule);
    World { server, test }
}

fn accuracy(params: &[f32], test: &Dataset) -> f32 {
    let mut m = SPEC.build(0);
    m.set_params(params);
    test_accuracy(&mut m, test)
}

#[test]
fn full_pipeline_forget_and_recover() {
    let w = train_world(1, 5, 20, 4);
    let history = w.server.history();

    let lr = calibrate_lr(history).expect("history rich enough to calibrate");
    let unlearner = Unlearner::new(history, RecoveryConfig::new(lr * 2.0));

    let bt = unlearner.forget(4).expect("backtrack");
    assert_eq!(bt.join_round, 2);
    assert_eq!(&bt.params[..], &*history.model(2).unwrap());

    let out = unlearner.forget_and_recover(4).expect("recover");
    assert_eq!(out.rounds_replayed, 18);
    assert!(out.params.iter().all(|v| v.is_finite()));

    let acc_unlearned = accuracy(&bt.params, &w.test);
    let acc_recovered = accuracy(&out.params, &w.test);
    assert!(
        acc_recovered >= acc_unlearned,
        "recovery should not hurt: {acc_unlearned} -> {acc_recovered}"
    );
}

#[test]
fn pipeline_is_fully_deterministic() {
    let run = |seed| {
        let w = train_world(seed, 4, 10, 3);
        let unlearner = Unlearner::new(w.server.history(), RecoveryConfig::new(0.01));
        unlearner.forget_and_recover(3).expect("recover").params
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn history_savings_exceed_ninety_percent() {
    let w = train_world(2, 4, 8, 3);
    let h = w.server.history();
    assert!(h.gradient_savings_ratio() > 0.9);
    assert!(h.direction_bytes() > 0);
    assert_eq!(
        h.full_gradient_bytes_equivalent(),
        w.server.full_store().bytes(),
        "full store and the equivalent accounting must agree"
    );
}

#[test]
fn forgetting_nonexistent_client_fails_cleanly() {
    let w = train_world(3, 4, 8, 3);
    let unlearner = Unlearner::new(w.server.history(), RecoveryConfig::new(0.01));
    assert_eq!(
        unlearner.forget(99).unwrap_err(),
        UnlearnError::UnknownClient(99)
    );
}

#[test]
fn recovered_model_differs_from_original_and_unlearned() {
    let w = train_world(4, 5, 15, 4);
    let unlearner = Unlearner::new(w.server.history(), RecoveryConfig::new(0.005));
    let bt = unlearner.forget(4).unwrap();
    let out = unlearner.forget_and_recover(4).unwrap();
    let d_unlearned = fuiov::eval::model_distance(&out.params, &bt.params);
    let d_original = fuiov::eval::model_distance(&out.params, w.server.params());
    assert!(d_unlearned > 1e-6, "recovery must move the model");
    assert!(
        d_original > 1e-6,
        "forgotten client's influence must be gone"
    );
}

#[test]
fn set_unlearning_backtracks_to_earliest_join() {
    let w = train_world(5, 5, 12, 4);
    let history = w.server.history();
    // Client 4 joined at 2, others at 0 → set {0, 4} backtracks to 0.
    let bt = fuiov::unlearn::backtrack_set(history, &[0, 4]).unwrap();
    assert_eq!(bt.join_round, 0);
    // Single client 4 → round 2.
    let bt4 = fuiov::unlearn::backtrack_set(history, &[4]).unwrap();
    assert_eq!(bt4.join_round, 2);
}
