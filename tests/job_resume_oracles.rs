//! Differential oracles for the resumable unlearning job service.
//!
//! The headline contract under test: **resumed == uninterrupted, bitwise,
//! at any crash point and any history budget**. Every test compares job
//! outcomes against the one-shot [`recover_set`] reference on the same
//! history, so concurrency, checkpoint/resume, crash/log-reopen, torn
//! logs, duplicate submissions and tier spills must all be invisible in
//! the output bits.
//!
//! Fault seeds follow the fault-matrix convention: `FUIOV_FAULT_SEED`
//! selects a single seed (the CI matrix fans out 101/202), otherwise the
//! in-repo defaults `[11, 29]` run.

use fuiov_core::jobs::{JobConfig, JobLog, JobService};
use fuiov_core::{recover_set, recover_set_scoped, NoOracle, RecoveryConfig, RecoveryOutcome};
use fuiov_storage::HistoryStore;
use fuiov_testkit::{bitwise_eq, Corruptor, Fault, FaultPlan, FaultSpec};
use proptest::prelude::*;
use std::path::PathBuf;

const DIM: usize = 48;
const ROUNDS: usize = 16;
const CLIENTS: usize = 6;
/// Join rounds per client: staggered so forget sets produce overlapping,
/// nested, and identical membership windows (F = min join of the set).
const JOINS: [usize; 6] = [0, 2, 3, 5, 0, 4];
const LR: f32 = 0.05;

/// Forget sets used across the suite. Backtrack rounds: {3}→5, {1}→2,
/// {2,5}→3, {1,3}→2 — staggered ({3} vs {2,5}), nested ({3} inside {1}),
/// and identical-start ({1} vs {1,3}) window overlaps.
const SETS: [&[usize]; 4] = [&[3], &[1], &[2, 5], &[1, 3]];

fn seeds() -> Vec<u64> {
    match std::env::var("FUIOV_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("FUIOV_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 29],
    }
}

/// Synthetic federation with staggered joins and period-3 per-round sign
/// alternation. The 2-bit store keeps only gradient *signs*, so a
/// monotone trajectory would decay every L-BFGS pair to `Δg = 0` and the
/// stacked sweep would never engage; the alternation guarantees seeded
/// pairs with positive curvature, a live stack from round F onward, and
/// therefore a non-vacuous cross-job batching comparison.
fn history() -> HistoryStore {
    let mut h = HistoryStore::new(1e-6);
    for (c, &join) in JOINS.iter().enumerate() {
        h.record_join(c, join);
    }
    let mut w: Vec<f32> = (0..DIM).map(|j| 0.3 * (j as f32 + 1.0)).collect();
    for t in 0..ROUNDS {
        h.record_model(t, w.clone());
        let mut grads = Vec::new();
        for (c, &join) in JOINS.iter().enumerate() {
            if t < join {
                continue;
            }
            let g: Vec<f32> = (0..DIM)
                .map(|j| {
                    let sign = if (t + j) % 3 < 2 { 1.0f32 } else { -1.0 };
                    sign * (1.0 + 0.1 * c as f32 + 0.05 * j as f32)
                })
                .collect();
            h.record_gradient(t, c, &g);
            grads.push(g);
        }
        let n = grads.len() as f32;
        for j in 0..DIM {
            let mean: f32 = grads.iter().map(|g| g[j]).sum::<f32>() / n;
            w[j] -= LR * mean;
        }
    }
    h.record_model(ROUNDS, w);
    h
}

/// Small pair-refresh interval so refreshes and stack rebuilds land
/// *between* checkpoints — the resume path must reproduce them exactly.
fn config() -> RecoveryConfig {
    let mut cfg = RecoveryConfig::new(LR);
    cfg.pair_refresh_interval = 3;
    cfg
}

fn one_shot(h: &HistoryStore, set: &[usize]) -> RecoveryOutcome {
    recover_set(h, set, &config(), &mut NoOracle, |_, _| {}).expect("one-shot recovery succeeds")
}

fn refs(h: &HistoryStore, n: usize) -> Vec<RecoveryOutcome> {
    SETS[..n].iter().map(|s| one_shot(h, s)).collect()
}

fn take_ok(svc: &mut JobService, id: u64) -> RecoveryOutcome {
    svc.take_outcome(id)
        .expect("job must be finished")
        .expect("job must succeed")
}

fn assert_matches_refs(svc: &mut JobService, ids: &[u64], refs: &[RecoveryOutcome], label: &str) {
    for (i, &id) in ids.iter().enumerate() {
        let out = take_ok(svc, id);
        assert!(
            bitwise_eq(&out.params, &refs[i].params),
            "{label}: job {i} diverged from one-shot reference"
        );
        assert_eq!(
            out.rounds_replayed, refs[i].rounds_replayed,
            "{label}: job {i} replayed a different number of rounds"
        );
    }
}

/// Unique scratch path for a job log; removed on a best-effort basis.
fn log_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fuiov-job-oracle-{tag}-{}-{n}.seg",
        std::process::id()
    ))
}

/// Pull the job-fault draws (preempt round, tear cut, duplicate count)
/// out of a seeded plan.
fn job_fault_draws(seed: u64) -> (usize, usize, usize) {
    let plan = FaultPlan::sample(seed, &FaultSpec::small(CLIENTS, ROUNDS, DIM));
    let (mut preempt, mut cut, mut times) = (0usize, 0usize, 1usize);
    for f in plan.job_faults() {
        match f {
            Fault::JobPreempt { round } => preempt = *round,
            Fault::TornJobCheckpoint { cut: c } => cut = *c,
            Fault::DuplicateForget { times: t } => times = *t,
            _ => {}
        }
    }
    (preempt, cut, times)
}

/// N ∈ {1, 2, 4} overlapping jobs, batched and unbatched, must be
/// bitwise identical to the one-shot reference and to serial
/// one-job-at-a-time execution.
#[test]
fn concurrent_jobs_match_one_shot_and_serial_bitwise() {
    let h = history();
    let all_refs = refs(&h, SETS.len());
    // Guard against a vacuous comparison: the Hessian stack must engage
    // (some clients corrected) or batched-vs-unbatched proves nothing.
    for (i, r) in all_refs.iter().enumerate() {
        assert!(
            r.estimator_fallbacks < r.rounds_replayed * (CLIENTS - SETS[i].len()),
            "set {i}: stacked sweep never engaged — oracle is vacuous"
        );
    }
    for n in [1usize, 2, 4] {
        let mut batched = JobService::new(JobConfig::new(config()).checkpoint_interval(3));
        let ids: Vec<_> = SETS[..n].iter().map(|s| batched.submit(&h, s)).collect();
        batched.run_to_completion(&mut NoOracle);
        assert_matches_refs(&mut batched, &ids, &all_refs[..n], "batched");

        let mut unbatched = JobService::new(
            JobConfig::new(config())
                .checkpoint_interval(3)
                .cross_job_batching(false),
        );
        let ids: Vec<_> = SETS[..n].iter().map(|s| unbatched.submit(&h, s)).collect();
        unbatched.run_to_completion(&mut NoOracle);
        assert_matches_refs(&mut unbatched, &ids, &all_refs[..n], "unbatched");

        for (i, set) in SETS[..n].iter().enumerate() {
            let mut serial = JobService::new(JobConfig::new(config()));
            let id = serial.submit(&h, set);
            serial.run_to_completion(&mut NoOracle);
            let out = take_ok(&mut serial, id);
            assert!(
                bitwise_eq(&out.params, &all_refs[i].params),
                "serial job {i} diverged from one-shot reference"
            );
        }
    }
}

/// Preempt every job at every checkpoint boundary: jobs are forced back
/// to `Pending` after each interval and must reactivate from their
/// newest in-memory checkpoint with no bit of drift.
#[test]
fn resume_after_preemption_at_every_checkpoint_boundary() {
    let h = history();
    let all_refs = refs(&h, 2);
    for seed in seeds() {
        let (preempt_round, _, _) = job_fault_draws(seed);
        let interval = 1 + preempt_round % 3; // seeded boundary spacing
        let mut svc = JobService::new(JobConfig::new(config()).checkpoint_interval(interval));
        let ids: Vec<_> = SETS[..2].iter().map(|s| svc.submit(&h, s)).collect();
        let mut steps = 0usize;
        loop {
            let mut active = false;
            for _ in 0..interval {
                active = svc.step(&mut NoOracle);
                steps += 1;
                assert!(steps < 10_000, "seed {seed}: job service made no progress");
                if !active {
                    break;
                }
            }
            if !active {
                break;
            }
            for &id in &ids {
                svc.preempt(id);
            }
        }
        assert_matches_refs(&mut svc, &ids, &all_refs, &format!("preempt seed {seed}"));
    }
}

/// Kill the whole service (drop it) after every possible number of
/// steps, reopen the on-disk log, resubmit the same forget sets, and
/// resume. Resumed outputs must be bitwise identical to the
/// uninterrupted run at *every* crash point.
#[test]
fn crash_and_resume_from_log_at_every_step() {
    let h = history();
    let all_refs = refs(&h, 2);
    for seed in seeds() {
        let (preempt_round, _, _) = job_fault_draws(seed);
        let interval = 1 + preempt_round % 3;
        let cfg = || JobConfig::new(config()).checkpoint_interval(interval);

        // Count the uninterrupted run's steps so we can kill at every one.
        let total = {
            let mut svc = JobService::new(cfg());
            for s in SETS[..2].iter() {
                svc.submit(&h, s);
            }
            let mut total = 0usize;
            while svc.step(&mut NoOracle) {
                total += 1;
                assert!(total < 10_000, "seed {seed}: uninterrupted run stalled");
            }
            total + 1
        };

        for kill_at in 0..=total {
            let path = log_path("crash");
            {
                let (log, logged) = JobLog::open(&path).expect("open fresh log");
                assert!(logged.is_empty(), "fresh log must hold no records");
                let mut svc = JobService::with_log(cfg(), log, logged);
                for s in SETS[..2].iter() {
                    svc.submit(&h, s);
                }
                for _ in 0..kill_at {
                    svc.step(&mut NoOracle);
                }
                // svc dropped here: the crash. Only the log file survives.
            }
            let (log, logged) = JobLog::open(&path).expect("reopen log after crash");
            let mut svc = JobService::with_log(cfg(), log, logged);
            // Resubmission adopts the logged job ids for the same sets.
            let ids: Vec<_> = SETS[..2].iter().map(|s| svc.submit(&h, s)).collect();
            svc.run_to_completion(&mut NoOracle);
            assert_matches_refs(
                &mut svc,
                &ids,
                &all_refs,
                &format!("crash seed {seed} kill_at {kill_at}"),
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Tear the checkpoint log at a seeded byte offset after a crash. The
/// reopened service must fall back to an older sealed checkpoint (or a
/// fresh start) and still converge to the reference bits.
#[test]
fn torn_checkpoint_log_still_resumes_bitwise() {
    let h = history();
    let all_refs = refs(&h, 2);
    for seed in seeds() {
        let (_, cut, _) = job_fault_draws(seed);
        let path = log_path("torn");
        {
            let (log, logged) = JobLog::open(&path).expect("open fresh log");
            let mut svc =
                JobService::with_log(JobConfig::new(config()).checkpoint_interval(2), log, logged);
            for s in SETS[..2].iter() {
                svc.submit(&h, s);
            }
            for _ in 0..5 {
                svc.step(&mut NoOracle); // seal a few checkpoints, then crash
            }
        }
        assert!(
            Corruptor::torn_job_log(&path, cut),
            "seed {seed}: log must exist and be torn"
        );
        let (log, logged) = JobLog::open(&path).expect("reopen torn log");
        let mut svc =
            JobService::with_log(JobConfig::new(config()).checkpoint_interval(2), log, logged);
        let ids: Vec<_> = SETS[..2].iter().map(|s| svc.submit(&h, s)).collect();
        svc.run_to_completion(&mut NoOracle);
        assert_matches_refs(&mut svc, &ids, &all_refs, &format!("torn seed {seed}"));
        let _ = std::fs::remove_file(&path);
    }
}

/// Duplicate forget requests (same membership set, any order) collapse
/// onto one job id and one unit of replay work.
#[test]
fn duplicate_submissions_collapse_onto_one_job() {
    let h = history();
    let all_refs = refs(&h, 3);
    for seed in seeds() {
        let (_, _, times) = job_fault_draws(seed);
        let mut svc = JobService::new(JobConfig::new(config()));
        let ids: Vec<_> = SETS[..3].iter().map(|s| svc.submit(&h, s)).collect();
        for _ in 0..times {
            for (i, s) in SETS[..3].iter().enumerate() {
                assert_eq!(
                    svc.submit(&h, s),
                    ids[i],
                    "seed {seed}: duplicate submission must return the original id"
                );
            }
        }
        // Permuted membership is the same request.
        assert_eq!(svc.submit(&h, &[5, 2]), ids[2]);
        assert_eq!(svc.active_jobs(), 3, "duplicates must not add jobs");
        svc.run_to_completion(&mut NoOracle);
        assert_matches_refs(&mut svc, &ids, &all_refs, &format!("dup seed {seed}"));
    }
}

/// Subtree-scoped jobs: the scope travels with the job through
/// checkpoints and preemption, the outcome is bitwise identical to the
/// one-shot scoped reference, and scoped/unscoped submissions of the
/// same forgotten set are distinct jobs.
#[test]
fn scoped_jobs_match_one_shot_scoped_recovery() {
    let h = history();
    // Scope = clients 0 and 4 (the forgotten vehicle's leaf); clients
    // 2, 3, 5 are sibling subtrees replayed from sealed directions.
    let scope: &[usize] = &[0, 4];
    let reference = recover_set_scoped(&h, &[1], Some(scope), &config(), &mut NoOracle, |_, _| {})
        .expect("one-shot scoped recovery succeeds");
    assert!(
        reference.sibling_reuses > 0,
        "oracle is vacuous: the scope must exclude someone"
    );

    let mut svc = JobService::new(JobConfig::new(config()).checkpoint_interval(2));
    let scoped_id = svc.submit_scoped(&h, &[1], Some(scope));
    let unscoped_id = svc.submit(&h, &[1]);
    assert_ne!(
        scoped_id, unscoped_id,
        "same forgotten set under a different scope is a different job"
    );
    // A duplicate scoped submission (scope order permuted) collapses.
    assert_eq!(svc.submit_scoped(&h, &[1], Some(&[4, 0])), scoped_id);

    // Preempt at every checkpoint boundary so resume must reproduce the
    // scoped replay, not fall back to full estimation.
    let mut steps = 0usize;
    loop {
        let mut active = false;
        for _ in 0..2 {
            active = svc.step(&mut NoOracle);
            steps += 1;
            assert!(steps < 10_000, "scoped job service made no progress");
            if !active {
                break;
            }
        }
        if !active {
            break;
        }
        svc.preempt(scoped_id);
    }

    let scoped_out = take_ok(&mut svc, scoped_id);
    assert!(
        bitwise_eq(&scoped_out.params, &reference.params),
        "scoped job diverged from one-shot scoped reference"
    );
    assert_eq!(scoped_out.sibling_reuses, reference.sibling_reuses);

    let unscoped_out = take_ok(&mut svc, unscoped_id);
    let unscoped_ref = one_shot(&h, &[1]);
    assert!(
        bitwise_eq(&unscoped_out.params, &unscoped_ref.params),
        "unscoped job sharing the queue diverged from its reference"
    );
    assert_eq!(unscoped_out.sibling_reuses, 0);
}

/// Crash a scoped job (drop the service), reopen the log, resubmit with
/// the same scope: the resumed run must be bitwise identical to the
/// uninterrupted scoped run — the scope is restored from the checkpoint.
#[test]
fn scoped_job_survives_crash_and_log_resume() {
    let h = history();
    let scope: &[usize] = &[0, 4];
    let reference = recover_set_scoped(&h, &[1], Some(scope), &config(), &mut NoOracle, |_, _| {})
        .expect("one-shot scoped recovery succeeds");
    let path = log_path("scoped");
    {
        let (log, logged) = JobLog::open(&path).expect("open fresh log");
        let mut svc =
            JobService::with_log(JobConfig::new(config()).checkpoint_interval(2), log, logged);
        svc.submit_scoped(&h, &[1], Some(scope));
        for _ in 0..4 {
            svc.step(&mut NoOracle); // seal checkpoints, then crash
        }
    }
    let (log, logged) = JobLog::open(&path).expect("reopen log after crash");
    assert!(!logged.is_empty(), "crash must leave sealed checkpoints");
    let mut svc =
        JobService::with_log(JobConfig::new(config()).checkpoint_interval(2), log, logged);
    let id = svc.submit_scoped(&h, &[1], Some(scope));
    svc.run_to_completion(&mut NoOracle);
    let out = take_ok(&mut svc, id);
    assert!(
        bitwise_eq(&out.params, &reference.params),
        "resumed scoped job diverged from uninterrupted scoped run"
    );
    assert_eq!(out.sibling_reuses, reference.sibling_reuses);
    let _ = std::fs::remove_file(&path);
}

/// Job outputs must not depend on the history budget: a 4 KB cold store
/// (everything spilled, caches dropped) and the unbounded hot store
/// produce identical bits.
#[test]
fn outcomes_are_invariant_to_history_budget() {
    let h = history();
    let all_refs = refs(&h, SETS.len());
    let mut cold = h;
    cold.set_budget(Some(4096));
    cold.force_spill_all();
    cold.invalidate_caches();

    let mut svc = JobService::new(JobConfig::new(config()).checkpoint_interval(2));
    let ids: Vec<_> = SETS.iter().map(|s| svc.submit(&cold, s)).collect();
    svc.run_to_completion(&mut NoOracle);
    assert_matches_refs(&mut svc, &ids, &all_refs, "4KB budget");
    assert_eq!(
        cold.tier_stats().decode_errors,
        0,
        "cold store must decode cleanly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweep membership-window overlap patterns (arbitrary subsets of
    /// the staggered-join clients), submission order, and history
    /// budget: every job's output must equal its one-shot reference
    /// regardless of which other jobs run beside it, in what order they
    /// were submitted, or which tier the history lives in.
    #[test]
    fn job_outputs_independent_of_submission_order_and_budget(
        masks in prop::collection::vec(1usize..16, 1..=3),
        rotate in 0usize..4,
        spill in 0usize..2,
    ) {
        // Each mask bit selects one of the staggered-join clients, so a
        // mask is a membership window; multiple masks give overlapping,
        // nested, identical, or disjoint-in-clients windows.
        let pool = [1usize, 2, 3, 5];
        let budget = if spill == 1 { Some(4096usize) } else { None };
        let h = history();
        let mut sets: Vec<Vec<usize>> = masks
            .iter()
            .map(|m| {
                pool.iter()
                    .enumerate()
                    .filter(|(bit, _)| m & (1 << bit) != 0)
                    .map(|(_, &c)| c)
                    .collect()
            })
            .collect();
        sets.sort();
        sets.dedup();
        let expected: Vec<RecoveryOutcome> =
            sets.iter().map(|s| one_shot(&h, s)).collect();

        let store = match budget {
            None => h,
            Some(b) => {
                let mut cold = h;
                cold.set_budget(Some(b));
                cold.force_spill_all();
                cold.invalidate_caches();
                cold
            }
        };

        // Submit in a rotated order; outcomes are keyed by job id, so
        // the rotation must be unobservable in the bits.
        let k = rotate % sets.len();
        let mut svc = JobService::new(JobConfig::new(config()).checkpoint_interval(2));
        let mut ids = vec![0u64; sets.len()];
        for off in 0..sets.len() {
            let i = (k + off) % sets.len();
            ids[i] = svc.submit(&store, &sets[i]);
        }
        svc.run_to_completion(&mut NoOracle);
        for (i, &id) in ids.iter().enumerate() {
            let out = svc.take_outcome(id)
                .expect("job finished")
                .expect("job succeeded");
            prop_assert!(
                bitwise_eq(&out.params, &expected[i].params),
                "set {:?} diverged (rotate {k}, budget {budget:?})",
                sets[i]
            );
        }
    }
}
