//! `fuiov` — command-line driver for the federated-unlearning pipeline.
//!
//! A minimal operational surface over the library: train a federation and
//! persist the server's history, inspect it, serve an unlearning request
//! from it, and evaluate checkpoints. All state lives in ordinary files
//! (`fuiov-storage`'s binary formats), so the unlearn step works on a
//! "restarted" server — nothing but the history file is needed.
//!
//! ```text
//! fuiov train   --out history.bin [--clients 6] [--rounds 40] [--seed 42] [--forgotten-join 2]
//! fuiov info    --history history.bin
//! fuiov unlearn --history history.bin --client 5 --out model.ckpt [--no-hessian]
//! fuiov eval    --model model.ckpt [--seed 42]
//! ```

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::storage::checkpoint;
use fuiov::storage::serialize::{decode_history, encode_history};
use fuiov::unlearn::{calibrate_lr, RecoveryConfig, Unlearner};
use std::process::ExitCode;

/// The CLI's fixed task: digits at 12×12 with the test MLP. The library
/// supports arbitrary specs; the CLI pins one so checkpoints and
/// histories are self-consistent without a schema field.
const SPEC: ModelSpec = ModelSpec::Mlp {
    inputs: 144,
    hidden: 32,
    classes: 10,
};
const IMAGE: DigitStyle = DigitStyle {
    size: 12,
    noise_sigma: 0.15,
    max_rotation: 0.22,
    max_shift: 0.08,
    stroke: (0.06, 0.12),
    scale: (0.75, 1.05),
};

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     fuiov train   --out <history.bin> [--clients N] [--rounds T] [--seed S] [--forgotten-join F]\n  \
     fuiov info    --history <history.bin>\n  \
     fuiov unlearn --history <history.bin> --client ID --out <model.ckpt> [--no-hessian] [--lr X]\n  \
     fuiov eval    --model <model.ckpt> [--seed S]"
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.require("out")?.to_string();
    let n_clients: usize = args.get_parse("clients", 6)?;
    let rounds: usize = args.get_parse("rounds", 40)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let forgotten_join: usize = args.get_parse("forgotten-join", 2)?;
    if n_clients < 2 {
        return Err("need at least 2 clients".into());
    }

    eprintln!("training {n_clients} clients for {rounds} rounds (seed {seed}) …");
    let train = Dataset::digits(n_clients * 40, &IMAGE, seed);
    let parts = partition_iid(train.len(), n_clients, seed);
    let mut clients: Vec<Box<dyn Client>> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, SPEC, train.subset(&idx), 40, seed)) as Box<dyn Client>
        })
        .collect();
    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    schedule.set_membership(
        n_clients - 1,
        Membership {
            joined: forgotten_join.min(rounds),
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let mut server = Server::new(FlConfig::new(rounds, 0.1), SPEC.build(seed).params());
    server.train(&mut clients, &schedule);

    let test = Dataset::digits(200, &IMAGE, seed + 1);
    let mut m = SPEC.build(0);
    m.set_params(server.params());
    println!("final accuracy: {:.3}", test_accuracy(&mut m, &test));

    let blob = encode_history(server.history());
    std::fs::write(&out, &blob).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "history written to {out} ({} KiB; {:.1}% gradient-storage savings)",
        blob.len() / 1024,
        server.history().gradient_savings_ratio() * 100.0
    );
    Ok(())
}

fn load_history(args: &Args) -> Result<fuiov::storage::HistoryStore, String> {
    let path = args.require("history")?;
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    decode_history(&blob).map_err(|e| format!("decoding {path}: {e}"))
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let h = load_history(args)?;
    println!("rounds recorded:   {}", h.rounds().len());
    println!("model dimension:   {}", h.dim().unwrap_or(0));
    println!("sign threshold δ:  {}", h.delta());
    println!("model bytes:       {}", h.model_bytes());
    println!(
        "direction bytes:   {} ({:.1}% savings vs f32)",
        h.direction_bytes(),
        h.gradient_savings_ratio() * 100.0
    );
    println!("clients:");
    for c in h.clients() {
        let p = h.participation(c).expect("listed");
        let left = p
            .left
            .map_or("active".to_string(), |l| format!("left after {l}"));
        println!(
            "  {c:>4}: joined round {:>3}, {left}, weight {}",
            p.joined,
            h.weight(c)
        );
    }
    Ok(())
}

fn cmd_unlearn(args: &Args) -> Result<(), String> {
    let h = load_history(args)?;
    let client: usize = args
        .require("client")?
        .parse()
        .map_err(|_| "invalid --client".to_string())?;
    let out = args.require("out")?.to_string();

    let lr = match args.get("lr") {
        Some(v) => v.parse().map_err(|_| "invalid --lr".to_string())?,
        None => calibrate_lr(&h).map_or(0.01, |c| c * 2.0),
    };
    let mut cfg = RecoveryConfig::new(lr);
    if args.has("no-hessian") {
        cfg = cfg.without_hessian();
    }
    let unlearner = Unlearner::new(&h, cfg);
    let bt = unlearner.forget(client).map_err(|e| e.to_string())?;
    eprintln!(
        "backtracked to round {} (erasing client {client}); recovering {} rounds at lr {lr:.5} …",
        bt.join_round,
        bt.latest_round - bt.join_round
    );
    let rec = unlearner
        .forget_and_recover(client)
        .map_err(|e| e.to_string())?;
    let blob = checkpoint::encode(&rec.params);
    std::fs::write(&out, &blob).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "recovered model written to {out} ({} params, {} rounds replayed, {} estimator fallbacks)",
        rec.params.len(),
        rec.rounds_replayed,
        rec.estimator_fallbacks
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args.require("model")?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let params = checkpoint::decode(&blob).map_err(|e| format!("decoding {path}: {e}"))?;
    if params.len() != SPEC.param_count() {
        return Err(format!(
            "checkpoint has {} params; the CLI's model expects {}",
            params.len(),
            SPEC.param_count()
        ));
    }
    let mut m = SPEC.build(0);
    m.set_params(&params);
    let test = Dataset::digits(200, &IMAGE, seed + 1);
    println!("accuracy: {:.3}", test_accuracy(&mut m, &test));
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&raw[1..]);
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "info" => cmd_info(&args),
        "unlearn" => cmd_unlearn(&args),
        "eval" => cmd_eval(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
