//! # FUIOV — Federated Unlearning in the Internet of Vehicles
//!
//! Facade crate re-exporting the full reproduction stack of the DSN 2024
//! paper: training substrates ([`nn`], [`data`], [`tensor`]), the FL
//! simulator ([`fl`]), the socket transport ([`net`]), server-side
//! storage ([`storage`]), attacks
//! ([`attacks`]), the paper's unlearning pipeline ([`unlearn`]) and its
//! baselines ([`baselines`]), plus evaluation utilities ([`eval`]).
//!
//! The shortest end-to-end path — train, forget a vehicle, recover — in
//! one doctest:
//!
//! ```
//! use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
//! use fuiov::fl::mobility::{ChurnSchedule, Membership};
//! use fuiov::fl::{Client, FlConfig, HonestClient, Server};
//! use fuiov::nn::ModelSpec;
//! use fuiov::unlearn::{RecoveryConfig, Unlearner};
//!
//! // 1. A tiny federation over a synthetic digit task.
//! let spec = ModelSpec::Mlp { inputs: 144, hidden: 8, classes: 10 };
//! let data = Dataset::digits(60, &DigitStyle::small(), 1);
//! let mut clients: Vec<Box<dyn Client>> = partition_iid(data.len(), 3, 1)
//!     .into_iter()
//!     .enumerate()
//!     .map(|(id, idx)| {
//!         Box::new(HonestClient::new(id, spec, data.subset(&idx), 20, 1))
//!             as Box<dyn Client>
//!     })
//!     .collect();
//!
//! // 2. Train; vehicle 2 joins at round 2 (its future backtrack target).
//! let mut schedule = ChurnSchedule::static_membership(3, 6);
//! schedule.set_membership(2, Membership { joined: 2, leaves_after: None, dropouts: vec![] });
//! let mut server = Server::new(
//!     FlConfig::new(6, 0.1).parallel_clients(false),
//!     spec.build(1).params(),
//! );
//! server.train(&mut clients, &schedule);
//!
//! // 3. Forget vehicle 2 and recover — server-side only, from the 2-bit
//! //    direction history.
//! let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(0.01));
//! let outcome = unlearner.forget_and_recover(2).expect("client 2 participated");
//! assert_eq!(outcome.start_round, 2);
//! assert_eq!(outcome.rounds_replayed, 4);
//! assert!(outcome.params.iter().all(|p| p.is_finite()));
//! ```
//!
//! See the repository `README.md` for the experiment reproduction matrix
//! and `DESIGN.md` for the architecture and substitution rationale.

pub use fuiov_attacks as attacks;
pub use fuiov_baselines as baselines;
pub use fuiov_core as unlearn;
pub use fuiov_data as data;
pub use fuiov_eval as eval;
pub use fuiov_fl as fl;
pub use fuiov_net as net;
pub use fuiov_nn as nn;
pub use fuiov_obs as obs;
pub use fuiov_storage as storage;
pub use fuiov_tensor as tensor;
