//! Recovering from a backdoor attack (the paper's third unlearning
//! scenario): malicious vehicles implant a pixel-trigger backdoor; once
//! detected, the server erases *all* of their updates by backtracking and
//! recovers the model server-side. Attack success rate collapses and does
//! not rebound.
//!
//! ```sh
//! cargo run --release --example poisoning_recovery
//! ```

use fuiov::attacks::{backdoor_asr, backdoor_client, Backdoor, Corner, Trigger};
use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{backtrack_set, calibrate_lr, recover_set, NoOracle, RecoveryConfig};

fn main() {
    let seed = 7;
    let n_clients = 8;
    let rounds = 80;
    let malicious: Vec<usize> = vec![2, 6]; // 25 % of the fleet

    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 40, &style, seed);
    let test = Dataset::digits(240, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);

    // A bright 3×3 trigger (our digits have black backgrounds) mapping any
    // stamped image to class 2.
    let attack = Backdoor {
        trigger: Trigger {
            size: 3,
            value: 1.0,
            corner: Corner::BottomRight,
        },
        target_class: 2,
        fraction: 0.6,
    };

    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 32,
        classes: 10,
    };
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            let shard = train.subset(&idx);
            if malicious.contains(&id) {
                Box::new(backdoor_client(id, spec, shard, &attack, 40, seed)) as Box<dyn Client>
            } else {
                Box::new(HonestClient::new(id, spec, shard, 40, seed)) as Box<dyn Client>
            }
        })
        .collect();

    // Attackers slip in at round 2 — the paper's F.
    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    for &m in &malicious {
        schedule.set_membership(
            m,
            Membership {
                joined: 2,
                leaves_after: None,
                dropouts: vec![],
            },
        );
    }
    let mut server = Server::new(FlConfig::new(rounds, 0.1), spec.build(seed).params());
    server.train(&mut clients, &schedule);

    let mut model = spec.build(0);
    let mut report = |label: &str, params: &[f32]| {
        model.set_params(params);
        println!(
            "{label:<22} accuracy {:.3}   attack success rate {:>5.1}%",
            test_accuracy(&mut model, &test),
            backdoor_asr(&mut model, &test, &attack) * 100.0
        );
    };

    report("poisoned model:", server.params());

    // The attackers are detected (e.g. by an anomaly detector); the
    // safest response is to erase everything they ever contributed.
    let bt = backtrack_set(server.history(), &malicious).expect("attackers participated");
    report("after forgetting:", &bt.params);

    let lr = calibrate_lr(server.history()).map_or(0.1, |c| c * 2.0);
    let out = recover_set(
        server.history(),
        &malicious,
        &RecoveryConfig::new(lr),
        &mut NoOracle, // no vehicle needs to be online
        |_, _| {},
    )
    .expect("recovery");
    report("after recovery:", &out.params);
    println!(
        "\nrecovery replayed {} rounds using only stored models and 2-bit gradient directions",
        out.rounds_replayed
    );
}
