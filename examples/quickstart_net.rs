//! Quickstart for the networked plane: a 4-vehicle federation over real
//! loopback sockets — same arithmetic, same golden traces, different
//! transport.
//!
//! ```sh
//! cargo run --release --example quickstart_net
//! ```
//!
//! Knobs: `FUIOV_NET_ADDR` picks the listen address (`tcp:HOST:PORT` or
//! `unix:/path.sock`; default loopback TCP, ephemeral port),
//! `FUIOV_NET_THREADS` bounds the accept pool, `FUIOV_NET_DEADLINE_MS`
//! caps how long the server waits on a round.

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::fl::{FlConfig, HonestClient, Server};
use fuiov::net::{NetAddr, NetConfig, NetServer, NetVehicle, VehicleConfig};
use fuiov::nn::ModelSpec;
use std::time::Duration;

fn main() {
    let (seed, n_vehicles, rounds) = (42, 4, 3);

    // 1. Data and model, exactly as in the in-process quickstart.
    let style = DigitStyle::small();
    let train = Dataset::digits(n_vehicles * 30, &style, seed);
    let shards = partition_iid(train.len(), n_vehicles, seed);
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 16,
        classes: 10,
    };
    let dim = spec.param_count();

    // 2. Server side: bind the listener first so vehicles have a live
    //    address to dial (port 0 = ephemeral; local_addr resolves it).
    let cfg =
        NetConfig::new(NetAddr::from_env(), n_vehicles).with_deadline(Duration::from_secs(10));
    let mut net = NetServer::bind(cfg).expect("bind listener");
    let addr = net.local_addr().clone();
    println!("server listening on {addr}");

    // 3. Vehicle side: each vehicle is its own thread dialing the server,
    //    registering, and answering round broadcasts with gradients.
    let vehicles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            let addr = addr.clone();
            let client = HonestClient::new(id, spec, train.subset(&idx), 30, seed);
            std::thread::spawn(move || {
                NetVehicle::new(VehicleConfig::new(addr, seed), Box::new(client), dim)
                    .run()
                    .expect("vehicle session")
            })
        })
        .collect();

    // 4. Drive the rounds. The wire layer buffers each round's uploads
    //    and reduces in client order, so this run is bitwise identical
    //    to `Server::run_round` with the same participants.
    let mut fl = Server::new(FlConfig::new(rounds, 0.1), spec.build(seed).params());
    let report = net.serve(&mut fl, rounds).expect("serve rounds");
    for v in vehicles {
        let r = v.join().expect("vehicle thread");
        println!(
            "vehicle uploaded {} round(s), {} payload bytes",
            r.uploads, r.tx_payload
        );
    }

    println!(
        "\n{} rounds with {} vehicles: broadcast {} B, uploads {} B (+{} B framing)",
        report.rounds,
        report.clients,
        report.tx_payload,
        report.rx_payload,
        report.tx_overhead + report.rx_overhead,
    );
    for s in fl.summaries() {
        println!(
            "round {}: {} participants, update norm {:.4}",
            s.round,
            s.participants.len(),
            s.update_norm
        );
    }
}
