//! RSA training under Byzantine attack (the paper's §III-C preliminary).
//!
//! RSA (Li et al. 2019) is the sign-based scheme whose 2-bit communication
//! inspired this paper's gradient-direction storage. This example shows
//! *why* signs are enough: a Byzantine vehicle reporting 10⁶-scaled
//! garbage destroys FedAvg in a handful of rounds but barely dents RSA,
//! whose per-round per-client influence is bounded by ±λη per element.
//!
//! ```sh
//! cargo run --release --example rsa_robust_training
//! ```

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::ChurnSchedule;
use fuiov::fl::rsa::{train_rsa, RsaConfig};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::storage::{ClientId, Round};

/// A vehicle that reports enormous adversarial gradients every round.
struct Byzantine(ClientId);

impl Client for Byzantine {
    fn id(&self) -> ClientId {
        self.0
    }
    fn weight(&self) -> f32 {
        1.0
    }
    fn gradient(&mut self, params: &[f32], _round: Round) -> Vec<f32> {
        vec![1e6; params.len()]
    }
}

fn make_clients(n_honest: usize, seed: u64, spec: ModelSpec) -> Vec<Box<dyn Client>> {
    let data = Dataset::digits(n_honest * 40, &DigitStyle::small(), seed);
    let parts = partition_iid(data.len(), n_honest, seed);
    let mut clients: Vec<Box<dyn Client>> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, data.subset(&idx), 40, seed)) as Box<dyn Client>
        })
        .collect();
    clients.push(Box::new(Byzantine(n_honest)));
    clients
}

fn main() {
    let seed = 17;
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 32,
        classes: 10,
    };
    let test = Dataset::digits(
        200,
        &DigitStyle {
            size: 12,
            ..Default::default()
        },
        seed + 1,
    );
    let eval = |params: &[f32]| {
        let mut m = spec.build(0);
        m.set_params(params);
        test_accuracy(&mut m, &test)
    };
    let init = spec.build(seed).params();
    println!("initial accuracy: {:.3}\n", eval(&init));

    // FedAvg with one Byzantine vehicle: destroyed immediately.
    let mut clients = make_clients(5, seed, spec);
    let mut server = Server::new(FlConfig::new(10, 0.1).parallel_clients(false), init.clone());
    server.train(&mut clients, &ChurnSchedule::static_membership(6, 10));
    println!(
        "FedAvg after 10 rounds with 1 Byzantine of 6: accuracy {:.3} (max |w| = {:.1e})",
        eval(server.params()),
        fuiov::tensor::vector::linf_norm(server.params()),
    );

    // RSA with the same attacker: influence bounded to ±λη per element.
    let mut clients = make_clients(5, seed, spec);
    let cfg = RsaConfig::new(0.1, 80).lambda(0.01);
    let out = train_rsa(&mut clients, &init, &cfg);
    println!(
        "RSA    after 80 rounds with the same attacker: accuracy {:.3} (max |w| = {:.1e})",
        eval(&out.server_model),
        fuiov::tensor::vector::linf_norm(&out.server_model),
    );
    println!("\nRSA communicates (and bounds) only *directions* — the same property the");
    println!("unlearning scheme exploits to store gradients in 2 bits per element.");
}
