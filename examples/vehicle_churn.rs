//! Unlearning under IoV churn (the paper's headline setting): vehicles
//! join the RSU's federation at arbitrary rounds, drop out of individual
//! rounds, and permanently depart. A vehicle that has *already left*
//! requests erasure — no client can help, so the server recovers from its
//! stored history alone.
//!
//! ```sh
//! cargo run --release --example vehicle_churn
//! ```

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::{ChurnModel, ChurnSchedule};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{calibrate_lr, NoOracle, RecoveryConfig, Unlearner};

fn main() {
    let seed = 11;
    let n_clients = 10;
    let rounds = 80;

    // A churn process: 4 vehicles in range initially, arrivals at 20 % per
    // round, occasional dropouts, rare departures.
    let churn = ChurnModel {
        arrival_prob: 0.20,
        departure_prob: 0.02,
        dropout_prob: 0.05,
        initial_active: 4,
    };
    let schedule = ChurnSchedule::sample(&churn, n_clients, rounds, seed);
    for v in 0..n_clients {
        let m = schedule.membership(v);
        println!(
            "vehicle {v}: joins round {:>2}, {} {} dropouts",
            m.joined,
            match m.leaves_after {
                Some(l) => format!("departs after round {l},"),
                None => "stays,".to_string(),
            },
            m.dropouts.len(),
        );
    }

    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 40, &style, seed);
    let test = Dataset::digits(200, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 32,
        classes: 10,
    };
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, train.subset(&idx), 40, seed)) as Box<dyn Client>
        })
        .collect();

    let mut server = Server::new(FlConfig::new(rounds, 0.1), spec.build(seed).params());
    server.train(&mut clients, &schedule);

    let mut model = spec.build(0);
    model.set_params(server.params());
    println!(
        "\ntrained accuracy: {:.3}",
        test_accuracy(&mut model, &test)
    );

    // Pick a vehicle that actually participated and joined mid-training —
    // ideally one that has already departed (the hard case for
    // FedRecover-style schemes, routine for this one).
    let history = server.history();
    let candidate = history
        .clients()
        .into_iter()
        .filter(|&c| history.join_round(c).is_some_and(|f| f > 0))
        .max_by_key(|&c| {
            let departed = history.participation(c).and_then(|p| p.left).is_some();
            (usize::from(departed), history.join_round(c).unwrap_or(0))
        })
        .expect("some vehicle joined mid-training");
    let part = history.participation(candidate).expect("participated");
    println!(
        "\nforgetting vehicle {candidate} (joined round {}, {})",
        part.joined,
        match part.left {
            Some(l) => format!("departed after round {l}"),
            None => "still in range".to_string(),
        }
    );

    let lr = calibrate_lr(history).map_or(0.1, |c| c * 2.0);
    let unlearner = Unlearner::new(history, RecoveryConfig::new(lr));
    let bt = unlearner.forget(candidate).expect("backtrack");
    model.set_params(&bt.params);
    println!(
        "after forgetting (back to round {}): {:.3}",
        bt.join_round,
        test_accuracy(&mut model, &test)
    );

    // NoOracle: every vehicle may be offline; recovery is server-only.
    let out = unlearner
        .forget_and_recover_with(candidate, &mut NoOracle, |_, _| {})
        .expect("recovery");
    model.set_params(&out.params);
    println!(
        "after server-only recovery ({} rounds, {} estimator fallbacks): {:.3}",
        out.rounds_replayed,
        out.estimator_fallbacks,
        test_accuracy(&mut model, &test)
    );
}
