//! Quickstart: train a small federation, forget one vehicle, recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::eval::test_accuracy;
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{calibrate_lr, RecoveryConfig, Unlearner};

fn main() {
    let seed = 42;
    let n_clients = 6;
    let rounds = 100;

    // 1. Data: a synthetic 10-class digit task, split IID across vehicles.
    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 40, &style, seed);
    let test = Dataset::digits(200, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);

    // 2. Clients: one model spec shared by everyone.
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 32,
        classes: 10,
    };
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, train.subset(&idx), 40, seed)) as Box<dyn Client>
        })
        .collect();

    // 3. Train. Vehicle 5 joins late (round 2) — it will ask to be
    //    forgotten, and backtracking will return to exactly that round.
    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    schedule.set_membership(
        5,
        Membership {
            joined: 2,
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let mut server = Server::new(FlConfig::new(rounds, 0.1), spec.build(seed).params());
    server.train(&mut clients, &schedule);

    let mut model = spec.build(0);
    model.set_params(server.params());
    println!(
        "trained model accuracy:    {:.3}",
        test_accuracy(&mut model, &test)
    );
    println!(
        "history: {} rounds, {} B of packed directions ({:.1}% saved vs f32)",
        server.history().rounds().len(),
        server.history().direction_bytes(),
        server.history().gradient_savings_ratio() * 100.0
    );

    // 4. Vehicle 5 invokes its right to be forgotten. The server
    //    backtracks to w_F and recovers — no vehicle participates.
    let lr = calibrate_lr(server.history()).map_or(0.1, |c| c * 2.0);
    let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(lr));

    let bt = unlearner.forget(5).expect("vehicle 5 participated");
    model.set_params(&bt.params);
    println!(
        "after forgetting (w_{}):    {:.3}",
        bt.join_round,
        test_accuracy(&mut model, &test)
    );

    let out = unlearner.forget_and_recover(5).expect("recovery");
    model.set_params(&out.params);
    println!(
        "after recovery ({} rounds): {:.3}",
        out.rounds_replayed,
        test_accuracy(&mut model, &test)
    );

    // 5. What did that run actually do? The obs registry kept count
    //    (set FUIOV_OBS=0 to turn collection off).
    println!("\n{}", fuiov::obs::RunReport::capture());
}
