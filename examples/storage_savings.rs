//! The storage story (§I, challenge I): what an RSU actually has to keep
//! to support unlearning, with full-precision vs sign-only gradient
//! records side by side, plus model checkpointing.
//!
//! ```sh
//! cargo run --release --example storage_savings
//! ```

use fuiov::data::{partition::partition_iid, Dataset, DigitStyle};
use fuiov::fl::mobility::ChurnSchedule;
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::storage::checkpoint;

fn main() {
    let seed = 3;
    let n_clients = 6;
    let rounds = 20;

    let style = DigitStyle {
        size: 12,
        ..Default::default()
    };
    let train = Dataset::digits(n_clients * 30, &style, seed);
    let shards = partition_iid(train.len(), n_clients, seed);
    let spec = ModelSpec::Mlp {
        inputs: 144,
        hidden: 32,
        classes: 10,
    };
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, train.subset(&idx), 30, seed)) as Box<dyn Client>
        })
        .collect();

    // Keep both records so the comparison is byte-for-byte on the same run.
    let cfg = FlConfig::new(rounds, 0.1).keep_full_gradients(true);
    let mut server = Server::new(cfg, spec.build(seed).params());
    server.train(
        &mut clients,
        &ChurnSchedule::static_membership(n_clients, rounds),
    );

    let h = server.history();
    let full = server.full_store();
    println!(
        "model: {} parameters; {n_clients} vehicles × {rounds} rounds\n",
        spec.param_count()
    );
    println!(
        "gradient record, full f32 (FedRecover-style): {:>9} B",
        full.bytes()
    );
    println!(
        "gradient record, 2-bit directions (ours):     {:>9} B",
        h.direction_bytes()
    );
    println!(
        "per-round global models (both schemes):       {:>9} B",
        h.model_bytes()
    );
    println!(
        "\ngradient-storage savings: {:.2}%  (paper claims ~95%; 2 vs 32 bits is 93.75%)",
        h.gradient_savings_ratio() * 100.0
    );

    // Checkpoint the final model and reload it.
    let encoded = checkpoint::encode(server.params());
    let decoded = checkpoint::decode(&encoded).expect("own encoding is valid");
    assert_eq!(decoded, server.params());
    println!(
        "\ncheckpointed final model: {} B (round-trip verified)",
        encoded.len()
    );

    // What δ does to the stored record: sparsity of the packed signs.
    for delta in [0.0f32, 1e-6, 1e-3, 1e-2] {
        let requant = h.requantized(full, delta);
        let dir = requant.direction(rounds - 1, 0).expect("recorded");
        println!(
            "δ = {delta:>7}: {:>5.1}% of elements stored as 0",
            dir.sparsity() * 100.0
        );
    }

    println!("\n{}", fuiov::obs::RunReport::capture());
}
