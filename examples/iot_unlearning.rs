//! The paper's §VI future work, end to end: federated unlearning on an
//! IoT vehicle-telemetry task. Vehicles classify driving manoeuvres from
//! 3-axis accelerometer windows; one vehicle invokes its right to be
//! forgotten and the server recovers from the 2-bit direction history —
//! the identical pipeline as the image tasks, because everything is a
//! flat parameter vector.
//!
//! ```sh
//! cargo run --release --example iot_unlearning
//! ```

use fuiov::data::synth_sensors::{MANEUVERS, NUM_CLASSES};
use fuiov::data::{partition::partition_iid, Dataset, SensorStyle};
use fuiov::eval::{test_accuracy, ConfusionMatrix};
use fuiov::fl::mobility::{ChurnSchedule, Membership};
use fuiov::fl::{Client, FlConfig, HonestClient, Server};
use fuiov::nn::ModelSpec;
use fuiov::unlearn::{calibrate_lr, RecoveryConfig, Unlearner};

fn main() {
    let seed = 23;
    let n_clients = 8;
    let rounds = 80;

    let style = SensorStyle::default();
    let train = Dataset::sensors(n_clients * 48, &style, seed);
    let test = Dataset::sensors(240, &style, seed + 1);
    let shards = partition_iid(train.len(), n_clients, seed);

    let spec = ModelSpec::Mlp {
        inputs: 3 * style.len,
        hidden: 48,
        classes: NUM_CLASSES,
    };
    let mut clients: Vec<Box<dyn Client>> = shards
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            Box::new(HonestClient::new(id, spec, train.subset(&idx), 48, seed)) as Box<dyn Client>
        })
        .collect();

    let mut schedule = ChurnSchedule::static_membership(n_clients, rounds);
    schedule.set_membership(
        7,
        Membership {
            joined: 2,
            leaves_after: None,
            dropouts: vec![],
        },
    );
    let mut server = Server::new(FlConfig::new(rounds, 0.02), spec.build(seed).params());
    server.train(&mut clients, &schedule);

    let mut model = spec.build(0);
    model.set_params(server.params());
    println!(
        "manoeuvre classifier accuracy: {:.3}",
        test_accuracy(&mut model, &test)
    );
    let cm = ConfusionMatrix::evaluate(&mut model, &test);
    println!("\nper-manoeuvre recall:");
    for (i, m) in MANEUVERS.iter().enumerate() {
        let recall = cm
            .recall(i)
            .map_or("n/a".to_string(), |r| format!("{r:.2}"));
        println!("  {m:?}: {recall}");
    }

    // Vehicle 7 requests erasure; on this MLP task the sign-replay variant
    // recovers best (see EXPERIMENTS.md's IoT section).
    let lr = calibrate_lr(server.history()).map_or(0.001, |c| c * 2.0);
    let unlearner = Unlearner::new(server.history(), RecoveryConfig::new(lr).without_hessian());
    let bt = unlearner.forget(7).expect("vehicle 7 participated");
    model.set_params(&bt.params);
    println!(
        "\nafter forgetting vehicle 7 (round {}): {:.3}",
        bt.join_round,
        test_accuracy(&mut model, &test)
    );
    let out = unlearner.forget_and_recover(7).expect("recovery");
    model.set_params(&out.params);
    println!(
        "after server-only recovery ({} rounds): {:.3}",
        out.rounds_replayed,
        test_accuracy(&mut model, &test)
    );

    println!("\n{}", fuiov::obs::RunReport::capture());
}
