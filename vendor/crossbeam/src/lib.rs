//! Offline stand-in for `crossbeam`, providing the one API this workspace
//! uses: [`scope`] with `Scope::spawn`, implemented over
//! `std::thread::scope` (stabilised in Rust 1.63, so the external crate is
//! no longer needed for scoped fan-out).
//!
//! Behavioural difference from the real crate: a panic in a spawned
//! thread propagates when the scope exits (std semantics) instead of
//! surfacing as `Err` — callers that `.expect()` the result observe the
//! same abort either way.

use std::any::Any;

/// Result alias matching `crossbeam::thread::scope`'s signature.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle that can spawn borrowing threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The
    /// closure receives the scope (for nested spawns), like the real
    /// crossbeam API.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
    }
}

/// Creates a scope for spawning threads that borrow local state; all
/// spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    //! Mirror of `crossbeam::thread` for callers that use the long path.
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        scope(|s| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                s.spawn(move |_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = scope(|_| 42).unwrap();
        assert_eq!(r, 42);
    }
}
