//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen_range`/`gen`/`gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The container this repository builds in has no crates.io access, so the
//! real `rand` cannot be fetched; this vendored subset keeps every caller
//! deterministic and dependency-free. Generated streams differ from the
//! real `StdRng` (which is ChaCha12) — nothing in the workspace depends on
//! the exact stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalars that know how to sample themselves uniformly from bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level generator interface (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draw from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)] // matches the real rand API
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// One SplitMix64 step, used to expand seeds into state.
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna). Fast, 256-bit state, passes BigCrush; deterministic per
    /// seed, which is all the reproducibility pillar requires.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
            let m = r.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn f32_standard_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
