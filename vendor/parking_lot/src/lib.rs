//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API this workspace uses, backed by `std::sync`. Poisoning is erased by
//! unwrapping — matching parking_lot's semantics, where a panicking holder
//! does not poison the lock (here the next acquisition propagates the
//! panic instead, which only ever happens after a bug aborted a thread).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
