//! Offline stand-in for `criterion`: the group/bench API surface this
//! workspace's benches use, with a simple but honest wall-clock harness
//! (calibrated iteration counts, warm-up, median-of-samples reporting).
//!
//! Each benchmark prints one parseable line:
//!
//! ```text
//! bench: <group>/<id> ... <median> ns/iter (<samples> samples)
//! ```
//!
//! Set `FUIOV_BENCH_JSON=<path>` to also append one JSON object per
//! benchmark to that file (used to snapshot `BENCH_micro.json`).
//!
//! Set `FUIOV_BENCH_SMOKE=1` to run every benchmark with a minimal budget
//! (3 samples, milliseconds of measurement): numbers become meaningless,
//! but the bench code itself — setup, assertions, kernels — executes, so
//! CI can keep benches compiling and running without paying for timing.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
    samples: usize,
    target: Duration,
}

impl Bencher {
    /// Times the closure: calibrates an iteration count to the target
    /// sample duration, then reports the median of the samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: grow the batch until it runs >= 1ms.
        let mut batch = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 24 {
                break dt.as_nanos() as f64 / batch as f64;
            }
            batch *= 8;
        };
        // Pick a batch size so one sample takes roughly target/samples.
        let sample_ns = (self.target.as_nanos() as f64 / self.samples as f64).max(1.0);
        let per_sample = ((sample_ns / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std_black_box(f());
            }
            times.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

/// Whether the smoke-run mode (`FUIOV_BENCH_SMOKE=1`) is active.
fn smoke() -> bool {
    std::env::var("FUIOV_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark (ignored in smoke
    /// mode, which pins the minimal budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !smoke() {
            self.sample_size = n.max(3);
        }
        self
    }

    /// Sets the total measurement budget per benchmark (ignored in smoke
    /// mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !smoke() {
            self.measurement = d;
        }
        self
    }

    /// Annotates throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            samples: self.sample_size,
            target: self.measurement,
        };
        f(&mut b);
        let full = format!("{}/{id}", self.name);
        let mut line = format!(
            "bench: {full} ... {:.0} ns/iter ({} samples)",
            b.ns_per_iter, self.sample_size
        );
        if let Some(Throughput::Elements(n) | Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 / (b.ns_per_iter * 1e-9);
            let _ = write!(line, " [{per_sec:.3e} elem/s]");
        }
        println!("{line}");
        if let Ok(path) = std::env::var("FUIOV_BENCH_JSON") {
            if !path.is_empty() {
                use std::io::Write as _;
                if let Ok(mut fh) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        fh,
                        "{{\"bench\": \"{full}\", \"ns_per_iter\": {:.1}, \"samples\": {}}}",
                        b.ns_per_iter, self.sample_size
                    );
                }
            }
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IdLike, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let id = id.id_string();
        self.run_one(&id, f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.name, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark ids accepted by `bench_function`.
pub trait IdLike {
    /// The display string.
    fn id_string(self) -> String;
}

impl IdLike for &str {
    fn id_string(self) -> String {
        self.to_string()
    }
}

impl IdLike for String {
    fn id_string(self) -> String {
        self
    }
}

impl IdLike for BenchmarkId {
    fn id_string(self) -> String {
        self.name
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; the
    /// harness keeps built-in defaults).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement) = if smoke() {
            (3, Duration::from_millis(3))
        } else {
            (20, Duration::from_millis(600))
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IdLike, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let id = id.id_string();
        let mut group = self.benchmark_group("bench");
        group.name = id.clone();
        // Report as just the id (no group prefix) for ungrouped benches.
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            samples: group.sample_size,
            target: group.measurement,
        };
        f(&mut b);
        println!("bench: {id} ... {:.0} ns/iter", b.ns_per_iter);
        self
    }

    /// Final report hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).name, "gemm/64");
    }
}
