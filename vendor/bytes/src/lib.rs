//! Offline stand-in for the `bytes` crate: the little-endian cursor API
//! the storage formats use, over plain `Vec<u8>` (no refcounted slices —
//! nothing in this workspace shares buffers).

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Writer side: appends little-endian scalars.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reader side: consumes little-endian scalars from the front.
///
/// # Panics
///
/// Like the real crate, all getters panic when the buffer has fewer bytes
/// than requested; decoders guard with explicit length checks first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: out of bytes");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "Buf::advance: out of bytes");
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(-1.5);
        w.put_slice(&[1, 2, 3]);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, &[2, 3]);
    }

    #[test]
    fn bytes_slices_like_a_slice() {
        let b: Bytes = vec![1u8, 2, 3, 4].into();
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
