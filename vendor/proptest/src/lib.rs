//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the [`proptest!`] macro, range/collection/tuple
//! strategies, `prop_map`/`prop_flat_map`/`prop_filter`, `any::<T>()`,
//! `prop::num::f32::NORMAL`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its seed-derived inputs via the assertion message only), no persisted
//! regressions, and case generation uses the vendored xoshiro `StdRng`.
//! Cases are deterministic per test name, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the subset used: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 128 keeps single-core CI fast while
        // still exercising the properties broadly.
        ProptestConfig { cases: 128 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy::prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `Strategy::prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f32 {
        //! `f32`-specific strategies.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Generates normal (non-zero, non-subnormal, finite) `f32`s of
        /// either sign across the full exponent range.
        pub struct Normal;

        /// Any normal `f32`.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let v = f32::from_bits(rng.gen::<u32>());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! `prop::` path mirror.
        pub use crate::collection;
        pub use crate::num;
    }
}

pub mod test_runner {
    //! Error type mirroring `proptest::test_runner` just enough for
    //! bodies that `return Ok(())` or reject via [`crate::prop_assume!`].

    /// Why a single generated case did not produce a verdict.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (skipped, not a failure).
        Reject(String),
    }
}

/// Asserts a condition inside a property (here: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(pattern in strategy, ...)` body
/// runs for `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    // Bodies may `return Ok(())` (early accept) or reject via
                    // `prop_assume!`; both surface as the closure's Result.
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    let _ = __outcome; // Reject = skip; panics are failures.
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn nonneg() -> impl Strategy<Value = f32> {
        (-5.0f32..5.0).prop_map(|v| v.abs())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 1usize..10, y in -2.0f32..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0usize..4, nonneg())) {
            prop_assert!(a < 4);
            prop_assert!(b >= 0.0);
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0.0f32..1.0, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
        }

        #[test]
        fn any_u64_generates(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let sa = (0.0f32..1.0).generate(&mut a);
        let sb = (0.0f32..1.0).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
