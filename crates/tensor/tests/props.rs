//! Property-based tests for the math substrate.

use fuiov_tensor::{solve, stats, vector, Mat};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_filter("finite", |v| v.is_finite())
}

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(finite_f32(), n),
            prop::collection::vec(finite_f32(), n),
        )
    })
}

proptest! {
    #[test]
    fn dot_is_symmetric((x, y) in vec_pair(64)) {
        prop_assert_eq!(vector::dot(&x, &y), vector::dot(&y, &x));
    }

    #[test]
    fn dot_is_linear_in_scale((x, y) in vec_pair(64), a in -10.0f32..10.0) {
        let mut ax = x.clone();
        vector::scale(a, &mut ax);
        let lhs = vector::dot(&ax, &y);
        let rhs = a * vector::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn triangle_inequality((x, y) in vec_pair(64)) {
        let sum = vector::add(&x, &y);
        prop_assert!(
            vector::l2_norm(&sum) <= vector::l2_norm(&x) + vector::l2_norm(&y) + 1e-3
        );
    }

    #[test]
    fn l2_distance_is_a_metric((x, y) in vec_pair(64)) {
        prop_assert_eq!(vector::l2_distance(&x, &y), vector::l2_distance(&y, &x));
        prop_assert_eq!(vector::l2_distance(&x, &x), 0.0);
    }

    #[test]
    fn axpy_matches_definition((x, y) in vec_pair(32), a in -5.0f32..5.0) {
        let mut out = y.clone();
        vector::axpy(a, &x, &mut out);
        for ((o, xi), yi) in out.iter().zip(&x).zip(&y) {
            prop_assert!((o - (a * xi + yi)).abs() < 1e-3);
        }
    }

    #[test]
    fn weighted_mean_is_within_bounds(x in prop::collection::vec(finite_f32(), 1..32)) {
        let y: Vec<f32> = x.iter().map(|v| v + 1.0).collect();
        let m = vector::weighted_mean(&[&x, &y], &[2.0, 3.0]);
        for ((mi, xi), yi) in m.iter().zip(&x).zip(&y) {
            prop_assert!(*mi >= xi.min(*yi) - 1e-4 && *mi <= xi.max(*yi) + 1e-4);
        }
    }

    #[test]
    fn sign_threshold_is_odd(x in prop::collection::vec(finite_f32(), 0..64), d in 0.0f32..1.0) {
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        let s_pos = vector::sign_with_threshold(&x, d);
        let s_neg = vector::sign_with_threshold(&neg, d);
        for (a, b) in s_pos.iter().zip(&s_neg) {
            prop_assert_eq!(*a, -b);
        }
    }

    #[test]
    fn clip_l2_norm_bounded(mut x in prop::collection::vec(finite_f32(), 1..64), l in 0.01f32..10.0) {
        vector::clip_l2(&mut x, l);
        prop_assert!(vector::l2_norm(&x) <= l * 1.001);
    }

    #[test]
    fn matvec_distributes_over_addition(
        data in prop::collection::vec(-10.0f32..10.0, 6),
        u in prop::collection::vec(-10.0f32..10.0, 3),
        v in prop::collection::vec(-10.0f32..10.0, 3),
    ) {
        let m = Mat::from_vec(2, 3, data);
        let lhs = m.matvec(&vector::add(&u, &v));
        let rhs = vector::add(&m.matvec(&u), &m.matvec(&v));
        prop_assert!(vector::l2_distance(&lhs, &rhs) < 1e-2);
    }

    #[test]
    fn matvec_and_tr_matvec_share_f64_accumulation(
        data in prop::collection::vec(-10.0f32..10.0, 12),
        v in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        // Both kernels accumulate per output element in f64 with one final
        // f32 rounding, so Aᵀᵀ·v through either path is bitwise identical
        // and matches an explicit f64 reference.
        let m = Mat::from_vec(4, 3, data);
        let fast = m.tr_matvec(&v);
        let via_transpose = m.transpose().matvec(&v);
        prop_assert_eq!(
            fast.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
            via_transpose.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        );
        for (c, &got) in fast.iter().enumerate() {
            let reference = (0..4)
                .map(|r| f64::from(m.get(r, c)) * f64::from(v[r]))
                .sum::<f64>() as f32;
            prop_assert!((got - reference).abs() <= 1e-4 * (1.0 + reference.abs()));
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise_prop(
        data_a in prop::collection::vec(-5.0f32..5.0, 15),
        data_b in prop::collection::vec(-5.0f32..5.0, 20),
    ) {
        let a = Mat::from_vec(3, 5, data_a);
        let b = Mat::from_vec(5, 4, data_b);
        let fast = a.matmul(&b);
        let golden = a.matmul_naive(&b);
        prop_assert_eq!(
            fast.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
            golden.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn transpose_preserves_gram(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let m = Mat::from_vec(4, 3, data);
        // (AᵀA)ᵀ = AᵀA: the gram matrix is symmetric.
        let gram = m.tr_matmul(&m);
        prop_assert!(gram.max_abs_diff(&gram.transpose()) < 1e-4);
    }

    #[test]
    fn lu_reconstructs_diagonally_dominant(
        data in prop::collection::vec(-1.0f32..1.0, 16),
        b in prop::collection::vec(-1.0f32..1.0, 4),
    ) {
        let mut a = Mat::from_vec(4, 4, data);
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 5.0);
        }
        let x = solve::solve(&a, &b).expect("dominant systems are solvable");
        prop_assert!(vector::l2_distance(&a.matvec(&x), &b) < 1e-3);
    }

    #[test]
    fn inverse_roundtrip(data in prop::collection::vec(-1.0f32..1.0, 9)) {
        let mut a = Mat::from_vec(3, 3, data);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 4.0);
        }
        let inv = solve::inverse(&a).expect("dominant");
        prop_assert!(a.matmul(&inv).max_abs_diff(&Mat::eye(3)) < 1e-3);
    }

    #[test]
    fn mean_bounded_by_extremes(x in prop::collection::vec(finite_f32(), 1..64)) {
        let m = stats::mean(&x);
        let lo = stats::min(&x).unwrap();
        let hi = stats::max(&x).unwrap();
        prop_assert!(m >= lo - 1e-3 && m <= hi + 1e-3);
    }

    #[test]
    fn percentile_is_monotone(x in prop::collection::vec(finite_f32(), 1..64)) {
        let p25 = stats::percentile(&x, 25.0).unwrap();
        let p75 = stats::percentile(&x, 75.0).unwrap();
        prop_assert!(p25 <= p75);
    }

    #[test]
    fn variance_is_translation_invariant(x in prop::collection::vec(-10.0f32..10.0, 2..64), c in -10.0f32..10.0) {
        let shifted: Vec<f32> = x.iter().map(|v| v + c).collect();
        let v1 = stats::variance(&x);
        let v2 = stats::variance(&shifted);
        prop_assert!((v1 - v2).abs() < 1e-2 * (1.0 + v1.abs()));
    }

    #[test]
    fn derived_seeds_never_collide_locally(master in any::<u64>(), s1 in 0u64..1000, s2 in 0u64..1000) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(
            fuiov_tensor::rng::derive_seed(master, s1),
            fuiov_tensor::rng::derive_seed(master, s2)
        );
    }
}
