//! SIMD == scalar bitwise pinning for the dense kernels.
//!
//! Every case runs the dispatched kernel with the SIMD path *forced on*
//! (in-process `FUIOV_SIMD=1`; on a host without AVX2 this resolves back
//! to scalar and the assertion is trivially true) and compares it, bit
//! for bit, against the pinned scalar reference. Lengths sweep `0..=67`
//! so every tail-residue class of the 4- and 8-lane kernels — ragged
//! 8-column groups, ragged 8-row blocks, sub-width inputs — is hit.

use fuiov_tensor::{simd, Mat};
use proptest::prelude::*;

/// Finite values with a deliberate sprinkle of exact zeros, so the
/// `== 0.0` skip branches (shared by both paths) are exercised.
fn kernel_f32() -> impl Strategy<Value = f32> {
    (any::<u8>(), -100.0f32..100.0).prop_map(|(z, v)| match z % 8 {
        0 | 1 => 0.0,
        2 => -0.0,
        _ => v,
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` with the dispatch pinned to the SIMD path, restoring the
/// default before returning (guarded, so parallel test threads can't
/// observe each other's override).
fn with_forced_simd<T>(f: impl FnOnce() -> T) -> T {
    let _g = simd::force_guard();
    simd::set_forced(Some(true));
    let out = f();
    simd::set_forced(None);
    out
}

/// Same, pinned to the scalar path through the *dispatcher* (distinct
/// from calling the `*_scalar` reference directly: this checks the
/// kill-switch plumbing too).
fn with_forced_scalar<T>(f: impl FnOnce() -> T) -> T {
    let _g = simd::force_guard();
    simd::set_forced(Some(false));
    let out = f();
    simd::set_forced(None);
    out
}

/// `(a, b)` operand pair for an `m×k · k×n` product, dims bundled in.
#[allow(clippy::type_complexity)]
fn gemm_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..=5, 0usize..=67, 0usize..=67).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            Just(n),
            prop::collection::vec(kernel_f32(), m * k),
            prop::collection::vec(kernel_f32(), k * n),
        )
    })
}

/// Matrix plus shared vector for the fused row-dots sweep.
#[allow(clippy::type_complexity)]
fn row_dots_case() -> impl Strategy<Value = (usize, usize, Vec<f32>, Vec<f32>)> {
    (0usize..=67, 0usize..=67).prop_flat_map(|(rows, cols)| {
        (
            Just(rows),
            Just(cols),
            prop::collection::vec(kernel_f32(), rows * cols),
            prop::collection::vec(kernel_f32(), cols),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn gemm_simd_matches_scalar_bitwise((m, k, n, a_data, b_data) in gemm_case()) {
        let a = Mat::from_vec(m, k, a_data);
        let b = Mat::from_vec(k, n, b_data);
        let golden = a.matmul_naive(&b);
        let fast = with_forced_simd(|| a.matmul(&b));
        let slow = with_forced_scalar(|| a.matmul(&b));
        prop_assert_eq!(bits(fast.as_slice()), bits(golden.as_slice()),
            "simd vs naive at {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(slow.as_slice()), bits(golden.as_slice()),
            "scalar vs naive at {}x{}x{}", m, k, n);
    }

    #[test]
    fn row_dots_simd_matches_scalar_bitwise((rows, cols, data, v) in row_dots_case()) {
        let m = Mat::from_vec(rows, cols, data);
        let mut scalar = vec![7.0f32; rows]; // poisoned: every slot written
        m.row_dots_into_scalar(&v, &mut scalar);
        let mut fast = vec![-7.0f32; rows];
        with_forced_simd(|| m.row_dots_into(&v, &mut fast));
        let mut slow = vec![3.0f32; rows];
        with_forced_scalar(|| m.row_dots_into(&v, &mut slow));
        prop_assert_eq!(bits(&fast), bits(&scalar), "simd row_dots at {}x{}", rows, cols);
        prop_assert_eq!(bits(&slow), bits(&scalar), "dispatched scalar at {}x{}", rows, cols);
    }
}

#[test]
fn row_dots_hits_every_tail_residue_class_deterministically() {
    // The proptests above sample shapes; this sweep guarantees coverage
    // of every (rows mod 8, cols mod 8) residue pair at least once.
    for rows in 0usize..=17 {
        for cols in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 67] {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| if i % 5 == 0 { 0.0 } else { (i as f32).sin() })
                .collect();
            let m = Mat::from_vec(rows, cols, data);
            let v: Vec<f32> = (0..cols)
                .map(|j| if j % 3 == 0 { 0.0 } else { (j as f32).cos() })
                .collect();
            let mut scalar = vec![1.0f32; rows];
            m.row_dots_into_scalar(&v, &mut scalar);
            let mut fast = vec![-1.0f32; rows];
            with_forced_simd(|| m.row_dots_into(&v, &mut fast));
            assert_eq!(bits(&fast), bits(&scalar), "rows={rows} cols={cols}");
        }
    }
}
