//! A small row-major dense matrix.
//!
//! [`Mat`] is deliberately minimal: the unlearning pipeline only ever builds
//! matrices whose *smaller* dimension is `2s` (with `s` the L-BFGS buffer
//! size, 2 in the paper), so the implementation favours clarity over cache
//! blocking. The tall-skinny products (`AᵀB`, `Aᵀv`) used by compact L-BFGS
//! are provided as dedicated methods that never materialise transposes.

use std::fmt;

/// Row-major dense `f32` matrix.
///
/// ```
/// use fuiov_tensor::Mat;
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a.get(1, 0), 3.0);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a `dim × k` matrix whose columns are the given vectors.
    ///
    /// This is how the L-BFGS buffers `ΔW` and `ΔG` are assembled: each
    /// column is one model-difference (or gradient-difference) vector.
    /// Accepts any slice type (`Vec<f32>`, `&[f32]`, …) so ring-buffered
    /// callers can pass borrowed columns without cloning them first.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty or the vectors have unequal lengths.
    pub fn from_cols<C: AsRef<[f32]>>(cols: &[C]) -> Self {
        assert!(!cols.is_empty(), "from_cols: no columns");
        let dim = cols[0].as_ref().len();
        let k = cols.len();
        let mut m = Mat::zeros(dim, k);
        for (j, c) in cols.iter().enumerate() {
            let c = c.as_ref();
            assert_eq!(c.len(), dim, "from_cols: ragged columns");
            for (i, &v) in c.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Builds a `k × dim` matrix whose **rows** are the given vectors — the
    /// transposed layout of [`Mat::from_cols`], used by the batched recovery
    /// engine to keep every stacked L-BFGS factor column contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the vectors have unequal lengths.
    pub fn from_row_vecs<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "from_row_vecs: no rows");
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), cols, "from_row_vecs: ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: size mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "get: index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "set: index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row: index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col: index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self · other`.
    ///
    /// Cache-blocked over output columns and parallelised over contiguous
    /// output-row bands via [`crate::pool`]. Each output element accumulates
    /// over `k` in exactly the order of [`Mat::matmul_naive`] (including the
    /// zero-skip), so the result is bitwise identical to the naive loop at
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        let inner = self.cols;
        let n = other.cols;
        // Resolve the SIMD dispatch once per product, not per band: every
        // band of one call runs the same path (paths agree bitwise, so
        // this is a determinism nicety, not a correctness requirement).
        let simd = crate::simd::enabled();
        crate::pool::par_row_bands(&mut out.data, self.rows, n, |rows, band| {
            gemm_band(&self.data, &other.data, inner, n, rows, band, simd);
        });
        out
    }

    /// Reference GEMM: the original scalar triple loop.
    ///
    /// Kept as the golden kernel — [`Mat::matmul`] must reproduce its output
    /// bit for bit — and as the benchmark baseline in `benches/micro.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_naive(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| crate::vector::dot(self.row(r), v))
            .collect()
    }

    /// `selfᵀ · v` without materialising the transpose.
    ///
    /// For a tall-skinny `dim × k` buffer this is the `k`-vector of
    /// per-column dot products — the shape compact L-BFGS needs.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows`.
    pub fn tr_matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "tr_matvec: dimension mismatch");
        let mut out = vec![0.0f64; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, &x) in out.iter_mut().zip(row) {
                *o += f64::from(vr) * f64::from(x);
            }
        }
        out.into_iter().map(|x| x as f32).collect()
    }

    /// One dot product per **row** against the shared vector `v`, written
    /// into `out[r]` — the transpose-free dual of [`Mat::tr_matvec`].
    ///
    /// For a matrix stored *transposed* (each logical column contiguous as
    /// a row, see [`Mat::from_row_vecs`]), `row_dots_into` computes exactly
    /// what `tr_matvec` computes on the untransposed layout, with the same
    /// per-element accumulation: each output accumulates
    /// `f64(v[j]) · f64(row[j])` in ascending `j`, skipping `v[j] == 0.0`,
    /// and rounds to `f32` once at the end. The pass is parallelised over
    /// output rows via [`crate::pool::par_row_bands_weighted`] (each row
    /// reads `cols` inputs but writes one output), so one fused sweep can
    /// serve many stacked factor columns — this is the batched recovery
    /// engine's inbound kernel.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols` or `out.len() != self.rows`.
    pub fn row_dots_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.cols, "row_dots_into: vector length mismatch");
        assert_eq!(
            out.len(),
            self.rows,
            "row_dots_into: output length mismatch"
        );
        let simd = crate::simd::enabled();
        crate::pool::par_row_bands_weighted(out, self.rows, 1, self.cols, |rows, band| {
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
                unsafe { x86::row_dots_band_avx2(self, v, rows, band) };
                return;
            }
            let _ = simd;
            row_dots_band_scalar(self, v, rows, band);
        });
    }

    /// The pinned scalar reference for [`Mat::row_dots_into`]: identical
    /// banding and per-row accumulation, never dispatched to SIMD. The
    /// AVX2 path must reproduce this function's output bit for bit (see
    /// `tests/simd_props.rs`); benches time the two against each other.
    pub fn row_dots_into_scalar(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.cols, "row_dots_into: vector length mismatch");
        assert_eq!(
            out.len(),
            self.rows,
            "row_dots_into: output length mismatch"
        );
        crate::pool::par_row_bands_weighted(out, self.rows, 1, self.cols, |rows, band| {
            row_dots_band_scalar(self, v, rows, band);
        });
    }

    /// The band primitive of [`Mat::row_dots_into`] without the pool pass:
    /// computes the dots of rows `rows` against `v` into `band` (one slot
    /// per row, in range order), dispatching to the same AVX2/scalar band
    /// kernels. Each row's accumulation is a pure function of `(row, v)` —
    /// independent of how callers partition the rows — which is what lets
    /// one external parallel pass fuse the sweeps of *several* stacked
    /// matrices (the cross-job batched recovery round) while staying
    /// bitwise identical to per-matrix [`Mat::row_dots_into`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`, the range exceeds `self.rows`, or
    /// `band.len() != rows.len()`.
    pub fn row_dots_range_into(&self, v: &[f32], rows: std::ops::Range<usize>, band: &mut [f32]) {
        assert_eq!(v.len(), self.cols, "row_dots_range_into: vector mismatch");
        assert!(
            rows.end <= self.rows,
            "row_dots_range_into: row range out of bounds"
        );
        assert_eq!(
            band.len(),
            rows.len(),
            "row_dots_range_into: band length mismatch"
        );
        let simd = crate::simd::enabled();
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
            unsafe { x86::row_dots_band_avx2(self, v, rows, band) };
            return;
        }
        let _ = simd;
        row_dots_band_scalar(self, v, rows, band);
    }

    /// Gram-style product `selfᵀ · other` (a `k × m` matrix for tall-skinny
    /// inputs `dim × k` and `dim × m`), accumulated in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn tr_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "tr_matmul: row count mismatch");
        let mut out = vec![0.0f64; self.cols * other.cols];
        for r in 0..self.rows {
            let a = self.row(r);
            let b = other.row(r);
            for (i, &ai) in a.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                for (j, &bj) in b.iter().enumerate() {
                    out[i * other.cols + j] += f64::from(ai) * f64::from(bj);
                }
            }
        }
        Mat::from_vec(
            self.cols,
            other.cols,
            out.into_iter().map(|x| x as f32).collect(),
        )
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Strictly-lower-triangular copy (Algorithm 2's `tril`, excluding the
    /// diagonal, as in the Byrd–Nocedal–Schnabel compact representation).
    pub fn tril_strict(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols.min(r) {
                out.set(r, c, self.get(r, c));
            }
        }
        out
    }

    /// Diagonal copy (Algorithm 2's `diag`).
    pub fn diag(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows.min(self.cols) {
            out.set(i, i, self.get(i, i));
        }
        out
    }

    /// Assembles a 2×2 block matrix `[[a, b], [c, d]]`.
    ///
    /// Used to build the `2s × 2s` middle matrix of compact L-BFGS.
    ///
    /// # Panics
    ///
    /// Panics if block shapes are inconsistent.
    pub fn block2x2(a: &Mat, b: &Mat, c: &Mat, d: &Mat) -> Mat {
        assert_eq!(a.rows, b.rows, "block2x2: top row height mismatch");
        assert_eq!(c.rows, d.rows, "block2x2: bottom row height mismatch");
        assert_eq!(a.cols, c.cols, "block2x2: left column width mismatch");
        assert_eq!(b.cols, d.cols, "block2x2: right column width mismatch");
        let rows = a.rows + c.rows;
        let cols = a.cols + b.cols;
        let mut out = Mat::zeros(rows, cols);
        for r in 0..a.rows {
            for cc in 0..a.cols {
                out.set(r, cc, a.get(r, cc));
            }
            for cc in 0..b.cols {
                out.set(r, a.cols + cc, b.get(r, cc));
            }
        }
        for r in 0..c.rows {
            for cc in 0..c.cols {
                out.set(a.rows + r, cc, c.get(r, cc));
            }
            for cc in 0..d.cols {
                out.set(a.rows + r, a.cols + cc, d.get(r, cc));
            }
        }
        out
    }

    /// `self ← self · s` (scalar).
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute element difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: shape mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

/// One band of the fused row-dots sweep, scalar: four rows per pass so
/// the four f64 dependency chains run in parallel (each output keeps its
/// own accumulator, so per-row accumulation order — and hence the bits —
/// is untouched). The per-client `tr_matvec` interleaves its 2s chains
/// the same way; matching it here is what makes the batched sweep at
/// least as fast per column. This is the pinned reference the AVX2 band
/// must reproduce bit for bit.
fn row_dots_band_scalar(m: &Mat, v: &[f32], rows: std::ops::Range<usize>, band: &mut [f32]) {
    let mut r = rows.start;
    while r + 4 <= rows.end {
        let (a0, a1, a2, a3) = (m.row(r), m.row(r + 1), m.row(r + 2), m.row(r + 3));
        let mut acc = [0.0f64; 4];
        for ((((&vj, &x0), &x1), &x2), &x3) in v.iter().zip(a0).zip(a1).zip(a2).zip(a3) {
            if vj == 0.0 {
                continue;
            }
            let vj64 = f64::from(vj);
            acc[0] += vj64 * f64::from(x0);
            acc[1] += vj64 * f64::from(x1);
            acc[2] += vj64 * f64::from(x2);
            acc[3] += vj64 * f64::from(x3);
        }
        for (k, &a) in acc.iter().enumerate() {
            band[r - rows.start + k] = a as f32;
        }
        r += 4;
    }
    for r in r..rows.end {
        band[r - rows.start] = row_dot_scalar_from(m.row(r), v, 0, 0.0);
    }
}

/// One row's tail (or whole) dot: continues `acc` over `v[from..]` with
/// the exact scalar chain — ascending `j`, the `v[j] == 0.0` skip, one
/// `f64 → f32` rounding at the very end. The AVX2 band re-enters here for
/// column tails after extracting its lane accumulators, which is what
/// keeps every row a single unbroken chain.
fn row_dot_scalar_from(row: &[f32], v: &[f32], from: usize, mut acc: f64) -> f32 {
    for (&vj, &x) in v[from..].iter().zip(&row[from..]) {
        if vj == 0.0 {
            continue;
        }
        acc += f64::from(vj) * f64::from(x);
    }
    acc as f32
}

/// Rows of `a` handled per microkernel call; bounds `b`-tile reuse.
const MICRO_ROWS: usize = 4;
/// Columns of `out` accumulated in registers per microkernel call.
const MICRO_COLS: usize = 32;

/// Computes output rows `rows` of `a · b` into `band` (the row-major slice
/// holding exactly those rows).
///
/// Loop order is i-block → j-tile → k → i → j, which keeps the per-element
/// k-accumulation order (and the `a == 0.0` skip) of the naive i → k → j
/// loop: for a fixed `(i, j)`, contributions still arrive in ascending `k`.
/// That invariant is what makes [`Mat::matmul`] bitwise-stable across tile
/// sizes and thread counts — see DESIGN.md §5.
///
/// The tiling exists purely for memory traffic: the microkernel keeps a
/// `MICRO_ROWS × MICRO_COLS` accumulator block in registers across the whole
/// k sweep (one store per output element instead of a load+store per k) and
/// pulls each `b` tile through cache once per `MICRO_ROWS` output rows
/// instead of once per row.
fn gemm_band(
    a: &[f32],
    b: &[f32],
    inner: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    band: &mut [f32],
    simd: bool,
) {
    let row0 = rows.start;
    // One j-panel of `b` is repacked contiguously (inner × MICRO_COLS) and
    // reused by every row block in the band: the k loop then streams 64-byte
    // sequential lines instead of taking a `4·n`-byte stride per k, which is
    // what the prefetcher can actually follow on tall-n im2col GEMMs.
    let mut packed = Vec::new();
    let mut j0 = 0;
    while j0 + MICRO_COLS <= n {
        packed.resize(inner * MICRO_COLS, 0.0);
        for k in 0..inner {
            packed[k * MICRO_COLS..(k + 1) * MICRO_COLS]
                .copy_from_slice(&b[k * n + j0..][..MICRO_COLS]);
        }
        let mut i0 = rows.start;
        while i0 < rows.end {
            let i1 = (i0 + MICRO_ROWS).min(rows.end);
            let a_block = &a[i0 * inner..i1 * inner];
            let out = &mut band[(i0 - row0) * n + j0..];
            // Monomorphised per row count so the r loop fully unrolls and
            // the accumulator block stays in registers.
            match i1 - i0 {
                4 => gemm_micro_dispatch::<4>(a_block, &packed, inner, n, out, simd),
                3 => gemm_micro_dispatch::<3>(a_block, &packed, inner, n, out, simd),
                2 => gemm_micro_dispatch::<2>(a_block, &packed, inner, n, out, simd),
                _ => gemm_micro_dispatch::<1>(a_block, &packed, inner, n, out, simd),
            }
            i0 = i1;
        }
        j0 += MICRO_COLS;
    }
    if j0 < n {
        let mut i0 = rows.start;
        while i0 < rows.end {
            let i1 = (i0 + MICRO_ROWS).min(rows.end);
            gemm_tail(
                &a[i0 * inner..i1 * inner],
                b,
                inner,
                n,
                j0,
                &mut band[(i0 - row0) * n..(i1 - row0) * n],
            );
            i0 = i1;
        }
    }
}

/// Routes one packed-panel microkernel call to the AVX2 or the scalar
/// implementation. The flag is resolved once per product in
/// [`Mat::matmul`]; both paths produce identical bytes (the AVX2 kernel
/// keeps the per-element ascending-`k` accumulation and the
/// `aik == 0.0` skip), so the choice is invisible to callers.
#[inline(always)]
fn gemm_micro_dispatch<const R: usize>(
    a_block: &[f32],
    packed: &[f32],
    inner: usize,
    n: usize,
    out: &mut [f32],
    simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: the dispatcher only reports `true` when the runtime
        // AVX2 probe passed (`simd::enabled`).
        unsafe { x86::gemm_micro_avx2::<R>(a_block, packed, inner, n, out) };
        return;
    }
    let _ = simd;
    gemm_micro::<R>(a_block, packed, inner, n, out);
}

/// Full-width microkernel over the `R` rows of `a_block`: accumulators live
/// in registers for the entire k loop, so `out` is written exactly once per
/// element. `packed` is the current j-panel of `b`, laid out
/// `inner × MICRO_COLS` row-major; `out` starts at this block's first
/// output element and keeps the full row stride `n`.
#[inline(always)]
fn gemm_micro<const R: usize>(
    a_block: &[f32],
    packed: &[f32],
    inner: usize,
    n: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; MICRO_COLS]; R];
    for k in 0..inner {
        let b_tile: &[f32; MICRO_COLS] = packed[k * MICRO_COLS..(k + 1) * MICRO_COLS]
            .try_into()
            .expect("tile width is MICRO_COLS");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let aik = a_block[r * inner + k];
            if aik == 0.0 {
                continue;
            }
            for (o, &bv) in acc_row.iter_mut().zip(b_tile) {
                *o += aik * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[r * n..r * n + MICRO_COLS].copy_from_slice(acc_row);
    }
}

/// Remainder columns (`n % MICRO_COLS`) via the plain slice loop. `a_block`
/// holds the block's rows of `a`; `out` the matching full rows of the band.
fn gemm_tail(a_block: &[f32], b: &[f32], inner: usize, n: usize, j0: usize, out: &mut [f32]) {
    if inner == 0 {
        // Empty inner dimension: the product is all zeros and `out` is
        // already zeroed (also keeps `rows` below well-defined).
        return;
    }
    let rows = a_block.len() / inner;
    for k in 0..inner {
        let b_tile = &b[k * n + j0..(k + 1) * n];
        for i in 0..rows {
            let aik = a_block[i * inner + k];
            if aik == 0.0 {
                continue;
            }
            let out_tile = &mut out[i * n + j0..(i + 1) * n];
            for (o, &bv) in out_tile.iter_mut().zip(b_tile) {
                *o += aik * bv;
            }
        }
    }
}

/// AVX2 implementations of the two dense hot kernels. Only compiled on
/// `x86_64`; only *executed* when `crate::simd::enabled()` says the
/// runtime probe passed. Every function here is bound by the bitwise
/// contract of `crate::simd`: identical bytes to the scalar reference at
/// every input shape, which dictates the vectorization shapes —
///
/// * GEMM vectorizes across **output columns** `j`: each output element
///   is an independent f32 accumulator, so 8 lanes of
///   `acc += aik · b[k][j..j+8]` perform exactly the scalar per-element
///   operation sequence (ascending `k`, `aik == 0.0` skipped, separate
///   multiply and add — never an FMA, which rounds once where
///   `mul` + `add` round twice).
/// * `row_dots` vectorizes across **rows**: a row's f64 accumulation is
///   one serial dependency chain whose order defines the bits, so lanes
///   must be whole chains (lane = row), never chunks of one chain. An
///   in-register 8×8 transpose turns contiguous row loads into
///   column-major vectors so the chains still consume ascending `j`.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{row_dot_scalar_from, row_dots_band_scalar, Mat, MICRO_COLS};
    use std::arch::x86_64::*;

    /// AVX2 twin of `gemm_micro`: the full `R × MICRO_COLS` accumulator
    /// block lives across the single `k` sweep as `R × 4` ymm registers
    /// (16 for the common `R = 4` — the whole file; LLVM folds the `b`
    /// panel loads into the multiplies, so no registers are spent on `b`
    /// vectors and the broadcast + zero-test happen once per `(k, r)`
    /// instead of once per subtile). Per element the operation sequence
    /// is exactly the scalar kernel's: contributions in ascending `k`,
    /// `aik == 0.0` skipped, `mul` then `add`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available (runtime-probed by
    /// `crate::simd::caps`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_micro_avx2<const R: usize>(
        a_block: &[f32],
        packed: &[f32],
        inner: usize,
        n: usize,
        out: &mut [f32],
    ) {
        debug_assert!(R <= 4 && a_block.len() >= R * inner);
        debug_assert!(packed.len() >= inner * MICRO_COLS);
        const SUBS: usize = MICRO_COLS / 8;
        let mut acc = [[_mm256_setzero_ps(); SUBS]; R];
        for k in 0..inner {
            let b_row = packed.as_ptr().add(k * MICRO_COLS);
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let aik = *a_block.get_unchecked(r * inner + k);
                if aik == 0.0 {
                    continue;
                }
                let av = _mm256_set1_ps(aik);
                for (sub, slot) in acc_r.iter_mut().enumerate() {
                    let bv = _mm256_loadu_ps(b_row.add(sub * 8));
                    *slot = _mm256_add_ps(*slot, _mm256_mul_ps(av, bv));
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            for (sub, &slot) in acc_r.iter().enumerate() {
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + sub * 8), slot);
            }
        }
    }

    /// AVX2 twin of `row_dots_band_scalar`: eight rows per block, lane =
    /// row. Each 8×8 tile of the matrix is loaded row-major (contiguous)
    /// and transposed in registers (`unpack` / `shuffle` /
    /// `permute2f128`), giving one vector per column `j` whose lanes are
    /// rows — so the two f64 accumulator vectors advance all eight row
    /// chains by exactly one `acc += f64(vj) · f64(x)` step per column,
    /// in ascending `j`. The `vj == 0.0` skip stays a scalar branch
    /// (uniform across lanes, since `v` is shared by all rows). Column
    /// tails re-enter `row_dot_scalar_from` with the extracted lane
    /// accumulators; row tails fall back to the scalar band.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available (runtime-probed by
    /// `crate::simd::caps`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_dots_band_avx2(
        m: &Mat,
        v: &[f32],
        rows: std::ops::Range<usize>,
        band: &mut [f32],
    ) {
        let cols = m.cols;
        let mut r = rows.start;
        while r + 8 <= rows.end {
            let base = m.data.as_ptr().add(r * cols);
            let mut acc_lo = _mm256_setzero_pd();
            let mut acc_hi = _mm256_setzero_pd();
            let mut j = 0;
            while j + 8 <= cols {
                let r0 = _mm256_loadu_ps(base.add(j));
                let r1 = _mm256_loadu_ps(base.add(cols + j));
                let r2 = _mm256_loadu_ps(base.add(2 * cols + j));
                let r3 = _mm256_loadu_ps(base.add(3 * cols + j));
                let r4 = _mm256_loadu_ps(base.add(4 * cols + j));
                let r5 = _mm256_loadu_ps(base.add(5 * cols + j));
                let r6 = _mm256_loadu_ps(base.add(6 * cols + j));
                let r7 = _mm256_loadu_ps(base.add(7 * cols + j));
                // 8×8 transpose: pairs → quads → full lanes.
                let t0 = _mm256_unpacklo_ps(r0, r1);
                let t1 = _mm256_unpackhi_ps(r0, r1);
                let t2 = _mm256_unpacklo_ps(r2, r3);
                let t3 = _mm256_unpackhi_ps(r2, r3);
                let t4 = _mm256_unpacklo_ps(r4, r5);
                let t5 = _mm256_unpackhi_ps(r4, r5);
                let t6 = _mm256_unpacklo_ps(r6, r7);
                let t7 = _mm256_unpackhi_ps(r6, r7);
                let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
                let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
                let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
                let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
                let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
                let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
                let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
                let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
                let cvecs = [
                    _mm256_permute2f128_ps::<0x20>(s0, s4),
                    _mm256_permute2f128_ps::<0x20>(s1, s5),
                    _mm256_permute2f128_ps::<0x20>(s2, s6),
                    _mm256_permute2f128_ps::<0x20>(s3, s7),
                    _mm256_permute2f128_ps::<0x31>(s0, s4),
                    _mm256_permute2f128_ps::<0x31>(s1, s5),
                    _mm256_permute2f128_ps::<0x31>(s2, s6),
                    _mm256_permute2f128_ps::<0x31>(s3, s7),
                ];
                for (t, &cv) in cvecs.iter().enumerate() {
                    let vj = *v.get_unchecked(j + t);
                    if vj == 0.0 {
                        continue;
                    }
                    let vj64 = _mm256_set1_pd(f64::from(vj));
                    let x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(cv));
                    let x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(cv));
                    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(vj64, x_lo));
                    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(vj64, x_hi));
                }
                j += 8;
            }
            let mut acc = [0.0f64; 8];
            _mm256_storeu_pd(acc.as_mut_ptr(), acc_lo);
            _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc_hi);
            for (lane, &a) in acc.iter().enumerate() {
                band[r - rows.start + lane] = row_dot_scalar_from(m.row(r + lane), v, j, a);
            }
            r += 8;
        }
        let off = r - rows.start;
        row_dots_band_scalar(m, v, r..rows.end, &mut band[off..]);
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_cols_matches_from_rows_transposed() {
        let c = Mat::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = Mat::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]);
        assert_eq!(c, r);
    }

    #[test]
    fn eye_matvec_is_identity() {
        let i = Mat::eye(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tr_matmul_equals_explicit_transpose_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let fast = a.tr_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn tr_matvec_equals_transpose_matvec() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let v = [1.0, -1.0, 2.0];
        assert_eq!(a.tr_matvec(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn tril_and_diag() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.tril_strict(), Mat::from_rows(&[&[0.0, 0.0], &[3.0, 0.0]]));
        assert_eq!(a.diag(), Mat::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]));
    }

    #[test]
    fn block2x2_assembles() {
        let a = Mat::from_rows(&[&[1.0]]);
        let b = Mat::from_rows(&[&[2.0]]);
        let c = Mat::from_rows(&[&[3.0]]);
        let d = Mat::from_rows(&[&[4.0]]);
        let m = Mat::block2x2(&a, &b, &c, &d);
        assert_eq!(m, Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    /// Deterministic pseudo-random matrix (no RNG dependency in this crate's
    /// unit tests): SplitMix64-style scramble of the index, with a sprinkle
    /// of exact zeros to exercise the `a == 0.0` skip path.
    fn test_mat(rows: usize, cols: usize, salt: u64) -> Mat {
        let mut data = Vec::with_capacity(rows * cols);
        for idx in 0..rows * cols {
            let mut z = (idx as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            if z.is_multiple_of(7) {
                data.push(0.0);
            } else {
                data.push((z % 2000) as f32 / 1000.0 - 1.0);
            }
        }
        Mat::from_vec(rows, cols, data)
    }

    fn bits(m: &Mat) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        let _g = crate::pool::test_guard();
        // Shapes straddling the column-tile boundary and the parallel gate.
        for &(m, k, n) in &[(3, 5, 7), (17, 33, 259), (64, 50, 300), (1, 1, 1)] {
            let a = test_mat(m, k, 1);
            let b = test_mat(k, n, 2);
            let golden = a.matmul_naive(&b);
            for t in [1, 2, 5] {
                crate::pool::set_threads(t);
                let fast = a.matmul(&b);
                assert_eq!(
                    bits(&fast),
                    bits(&golden),
                    "blocked GEMM diverged from naive at {m}x{k}x{n}, {t} threads"
                );
            }
            crate::pool::set_threads(0);
        }
    }

    #[test]
    fn row_dots_on_transpose_match_tr_matvec_bitwise() {
        let _g = crate::pool::test_guard();
        // A tall-skinny dim × k buffer (the L-BFGS factor shape) and its
        // transposed storage: the fused per-row dots on the transpose must
        // reproduce tr_matvec on the original, bit for bit, at every
        // thread count. `test_mat` plants exact zeros so the shared
        // `v[j] == 0.0` skip is exercised.
        for &(dim, k) in &[(1usize, 1usize), (37, 4), (1024, 12), (20_000, 8)] {
            let a = test_mat(dim, k, 3);
            let v: Vec<f32> = test_mat(dim, 1, 4).as_slice().to_vec();
            let golden = a.tr_matvec(&v);
            let t = a.transpose();
            for threads in [1usize, 3, 8] {
                crate::pool::set_threads(threads);
                let mut dots = vec![0.0f32; k];
                t.row_dots_into(&v, &mut dots);
                crate::pool::set_threads(0);
                assert_eq!(
                    dots.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    golden.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "row_dots diverged from tr_matvec at {dim}x{k}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn row_dots_range_matches_full_sweep_at_any_partition() {
        let _g = crate::pool::test_guard();
        // Any partitioning of the rows into ranges must reproduce the full
        // fused sweep bit for bit — the property the cross-job batched
        // recovery round builds on.
        for &(rows, cols) in &[(1usize, 9usize), (13, 33), (64, 257)] {
            let m = test_mat(rows, cols, 5);
            let v: Vec<f32> = test_mat(cols, 1, 6).as_slice().to_vec();
            let mut golden = vec![0.0f32; rows];
            m.row_dots_into(&v, &mut golden);
            for chunk in [1usize, 3, rows] {
                let mut out = vec![0.0f32; rows];
                let mut start = 0;
                while start < rows {
                    let end = (start + chunk).min(rows);
                    m.row_dots_range_into(&v, start..end, &mut out[start..end]);
                    start = end;
                }
                assert_eq!(
                    out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    golden.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "range sweep diverged at {rows}x{cols}, chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn from_row_vecs_is_from_cols_transposed() {
        let rows = [vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = Mat::from_row_vecs(&rows);
        assert_eq!(m, Mat::from_cols(&rows).transpose());
        // Borrowed-slice columns work too (the ring-buffer call shape).
        let borrowed: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        assert_eq!(Mat::from_cols(&borrowed), Mat::from_cols(&rows));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Mat::zeros(1, 1));
        assert!(s.contains("Mat 1x1"));
    }
}
