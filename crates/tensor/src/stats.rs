//! Summary statistics used by the evaluation harness and the data
//! generators (class-balance checks, accuracy aggregation, sweeps).

/// Arithmetic mean, `0.0` for empty input.
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| f64::from(*v)).sum::<f64>() / x.len() as f64) as f32
}

/// Population variance, `0.0` for inputs with fewer than two elements.
pub fn variance(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(x));
    (x.iter()
        .map(|v| {
            let d = f64::from(*v) - m;
            d * d
        })
        .sum::<f64>()
        / x.len() as f64) as f32
}

/// Population standard deviation.
pub fn stddev(x: &[f32]) -> f32 {
    variance(x).sqrt()
}

/// Minimum element, `None` for empty input. NaNs are ignored.
pub fn min(x: &[f32]) -> Option<f32> {
    x.iter().copied().filter(|v| !v.is_nan()).reduce(f32::min)
}

/// Maximum element, `None` for empty input. NaNs are ignored.
pub fn max(x: &[f32]) -> Option<f32> {
    x.iter().copied().filter(|v| !v.is_nan()).reduce(f32::max)
}

/// Index of the largest element (first on ties), `None` for empty input.
///
/// This is the prediction rule for softmax outputs.
pub fn argmax(x: &[f32]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

/// Histogram of `x` over `bins` equal-width buckets spanning `[lo, hi)`;
/// values outside the range are clamped into the edge buckets.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(x: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram: bins must be positive");
    assert!(lo < hi, "histogram: empty range");
    let mut h = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &v in x {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1);
        h[idx as usize] += 1;
    }
    h
}

/// `p`-th percentile (0–100) via linear interpolation on the sorted data,
/// `None` for empty input.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(x: &[f32], p: f32) -> Option<f32> {
    assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
    if x.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile), `None` for empty input.
pub fn median(x: &[f32]) -> Option<f32> {
    percentile(x, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-6);
        assert!((variance(&x) - 4.0).abs() < 1e-6);
        assert!((stddev(&x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(argmax(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn min_max_skip_nan() {
        assert_eq!(min(&[f32::NAN, 2.0, 1.0]), Some(1.0));
        assert_eq!(max(&[3.0, f32::NAN]), Some(3.0));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-10.0, 0.1, 0.5, 0.9, 10.0], 0.0, 1.0, 2);
        // 0.5 lands in the upper half-open bucket; outliers clamp to edges.
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&x, 0.0), Some(1.0));
        assert_eq!(percentile(&x, 100.0), Some(4.0));
        assert_eq!(median(&x), Some(2.5));
    }
}
