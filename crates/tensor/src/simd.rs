//! Runtime-dispatched SIMD: one probe, one kill switch, bitwise-pinned
//! scalar fallbacks.
//!
//! Every vector kernel in this workspace (the GEMM microkernel, the
//! stacked-HVP `row_dots_into` sweep, the packed sign decode and the
//! delta codec in `fuiov-storage`) is written twice: a scalar reference
//! that *defines* the bits, and an AVX2 path that must reproduce them
//! exactly. This module owns the decision of which one runs:
//!
//! 1. compile-time: non-`x86_64` targets have no AVX2 path at all — the
//!    scalar reference is the only code that exists;
//! 2. run-time probe: `is_x86_feature_detected!("avx2")` (FMA presence is
//!    probed and reported too, but fused multiply-adds are **never**
//!    emitted — an FMA rounds once where `mul` + `add` round twice, which
//!    would change bits; see DESIGN.md §5);
//! 3. kill switch: `FUIOV_SIMD=0` (or `false`/`off`) forces the scalar
//!    path even on capable hosts — this is how the tier-1 gate replays
//!    the golden traces on both paths;
//! 4. programmatic override: [`set_forced`] lets tests and benches pin
//!    either path in-process (forcing SIMD on still requires the probe to
//!    succeed — the override can never select an illegal instruction).
//!
//! The contract the dispatch relies on: **both paths produce identical
//! bytes for every input**, so switching mid-run (or mixing paths across
//! threads) is observationally invisible. The per-kernel proptests pin
//! this across every tail-residue class (`crates/tensor/tests/simd_props.rs`,
//! `crates/storage/tests/simd_props.rs`).

use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// What the one-time probe found on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caps {
    /// AVX2 available (the gate for every vector kernel in the tree).
    pub avx2: bool,
    /// FMA available. Detected and reported for diagnostics only: no
    /// kernel emits fused multiply-adds, because fusing changes rounding
    /// and would break the bitwise scalar contract.
    pub fma: bool,
}

/// Probes the host once (the result never changes within a process).
pub fn caps() -> Caps {
    static CAPS: OnceLock<Caps> = OnceLock::new();
    *CAPS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            Caps {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Caps {
                avx2: false,
                fma: false,
            }
        }
    })
}

/// `FUIOV_SIMD` environment default, read once: unset or anything other
/// than `0`/`false`/`off` means "use SIMD when the host can".
fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("FUIOV_SIMD").as_deref().map(str::trim),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Programmatic override: −1 = unset (env + probe decide), 0 = force
/// scalar, 1 = force SIMD-if-capable.
static FORCED: AtomicI8 = AtomicI8::new(-1);

/// Pins the dispatch for this process: `Some(false)` forces the scalar
/// reference, `Some(true)` forces the AVX2 path (subject to the probe —
/// on a host without AVX2 this still resolves to scalar), `None` returns
/// the decision to `FUIOV_SIMD` and the probe.
///
/// The override is global; tests that toggle it and *assert on the
/// dispatch itself* should serialise on [`force_guard`]. Toggling never
/// changes output bytes — both paths are bitwise identical — so kernels
/// racing a toggle still agree.
pub fn set_forced(mode: Option<bool>) {
    FORCED.store(mode.map_or(-1, i8::from), Ordering::Relaxed);
}

/// Whether the vector path is selected right now.
#[inline]
pub fn enabled() -> bool {
    let want = match FORCED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => env_default(),
    };
    want && caps().avx2
}

/// Serialises tests/benches that flip [`set_forced`] and assert on the
/// resulting dispatch (cross-crate sibling of the pool's test guard).
pub fn force_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cache line of `f32`s — the allocation quantum of [`AVec`].
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Lane64([f32; 16]);

/// A growable `f32` buffer whose storage is 64-byte aligned: the arena
/// type for the replay scratch (`RoundScratch`), so the vectors the SIMD
/// sweeps stream — `w̄ₜ−wₜ`, the fused dots, the stacked estimate rows —
/// start on a cache-line boundary and never straddle one at offset 0.
///
/// The kernels use unaligned load/store instructions throughout (matrix
/// rows land at arbitrary offsets), so alignment is a throughput nicety,
/// not a correctness requirement; see DESIGN.md §5.
///
/// Only the small slice-like API the scratch arena needs is provided;
/// everything else goes through `Deref<Target = [f32]>`.
#[derive(Default, Clone)]
pub struct AVec {
    buf: Vec<Lane64>,
    len: usize,
}

impl AVec {
    /// An empty aligned buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resizes to `new_len`, filling any newly exposed element with
    /// `value` (matching `Vec::resize`: the retained prefix is untouched).
    pub fn resize(&mut self, new_len: usize, value: f32) {
        let lanes = new_len.div_ceil(16);
        if self.buf.len() < lanes {
            self.buf.resize(lanes, Lane64([0.0; 16]));
        }
        let old = self.len;
        self.len = new_len;
        if new_len > old {
            for slot in &mut self.as_mut_slice()[old..] {
                *slot = value;
            }
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[f32]) {
        let old = self.len;
        self.resize(old + src.len(), 0.0);
        self.as_mut_slice()[old..].copy_from_slice(src);
    }

    /// The live elements.
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `Lane64` is `repr(C)` over `[f32; 16]`, so the lane
        // buffer is a contiguous f32 array with at least `len` elements
        // (resize keeps `buf.len() * 16 >= len`).
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast::<f32>(), self.len) }
    }

    /// The live elements, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as `as_slice`, and `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.buf.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

impl std::ops::Deref for AVec {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for AVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_is_stable_and_consistent() {
        assert_eq!(caps(), caps());
        // `enabled` may be true only where the probe allows it.
        if enabled() {
            assert!(caps().avx2);
        }
    }

    #[test]
    fn forcing_scalar_disables_dispatch() {
        let _g = force_guard();
        set_forced(Some(false));
        assert!(!enabled());
        set_forced(Some(true));
        assert_eq!(enabled(), caps().avx2);
        set_forced(None);
    }

    #[test]
    fn avec_is_aligned_and_resizes_like_vec() {
        let mut a = AVec::new();
        assert!(a.is_empty());
        a.resize(5, 1.5);
        assert_eq!(a.as_slice(), &[1.5; 5]);
        assert_eq!(a.as_ptr() as usize % 64, 0, "base must be 64B aligned");
        // Prefix survives a grow; new tail takes the fill value.
        a.as_mut_slice()[0] = -2.0;
        a.resize(20, 0.25);
        assert_eq!(a[0], -2.0);
        assert_eq!(&a[5..], &[0.25; 15]);
        // Shrink then regrow: the regrown region is refilled, not stale.
        a.resize(2, 0.0);
        a.resize(8, 9.0);
        assert_eq!(&a[2..], &[9.0; 6]);
        a.clear();
        assert_eq!(a.len(), 0);
        a.extend_from_slice(&[1.0, 2.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        assert_eq!(format!("{a:?}"), "[1.0, 2.0]");
    }
}
