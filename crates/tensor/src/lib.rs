//! Dense math substrate for the FUIOV federated-unlearning stack.
//!
//! This crate provides the numerical kernels everything else is built on:
//!
//! - [`vector`]: BLAS-1 style operations on `&[f32]` slices (dot products,
//!   axpy, norms, the paper's Eq. 7 norm clipping, element-wise sign with a
//!   dead-zone threshold).
//! - [`matrix`]: a small row-major dense matrix ([`Mat`]) with the products
//!   needed by compact L-BFGS (`AᵀB` grams, mat-vec).
//! - [`solve`]: LU factorisation with partial pivoting, used to solve the
//!   `2s × 2s` linear system at the heart of Algorithm 2.
//! - [`stats`]: summary statistics used by the evaluation harness.
//! - [`rng`]: deterministic seed-derivation helpers so that every experiment
//!   in the repository is reproducible bit-for-bit.
//! - [`simd`]: the runtime CPU-feature dispatch (AVX2 probe, `FUIOV_SIMD`
//!   kill switch) behind the vector kernels, plus the 64-byte-aligned
//!   [`simd::AVec`] scratch buffer. Every SIMD path is bitwise identical
//!   to its pinned scalar reference.
//!
//! # Example
//!
//! ```
//! use fuiov_tensor::{vector, Mat, solve};
//!
//! # fn main() -> Result<(), fuiov_tensor::SolveError> {
//! let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = solve::solve(&a, &[1.0, 2.0])?;
//! let r = a.matvec(&x);
//! assert!(vector::l2_distance(&r, &[1.0, 2.0]) < 1e-5);
//! # Ok(())
//! # }
//! ```

pub mod matrix;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod solve;
pub mod stats;
pub mod vector;

pub use matrix::Mat;
pub use solve::SolveError;
