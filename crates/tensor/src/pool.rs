//! Deterministic row-parallel execution for dense kernels.
//!
//! Every parallel kernel in this workspace follows one rule: a worker owns a
//! contiguous band of *output rows* and nothing else ever writes them. Each
//! output element is therefore produced by exactly one thread running exactly
//! the same per-element accumulation loop as the serial code, so results are
//! **bitwise identical** for every thread count (see DESIGN.md §5).
//!
//! Thread count resolution, first match wins:
//!
//! 1. [`set_threads`] (programmatic override, used by tests/benches),
//! 2. the `FUIOV_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of 1 runs the kernel inline on the caller's thread — no spawns,
//! no synchronisation — which is also the fallback whenever the work is too
//! small to amortise thread startup.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent kernels (`0` clears the
/// override and returns resolution to `FUIOV_THREADS` / hardware).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Resolved worker count (always ≥ 1).
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("FUIOV_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum per-worker share of output elements before spawning is worth it
/// (thread startup is ~tens of microseconds; below this, run serial).
const MIN_ELEMS_PER_WORKER: usize = 16 * 1024;

/// Splits `out` (a row-major `rows × cols` buffer) into contiguous row
/// bands and runs `body(row_range, band)` on each, in parallel when the
/// resolved thread count and the problem size justify it.
///
/// `body` must write each output row as a pure function of the shared
/// inputs it captures — bands are disjoint, so any schedule produces the
/// same bytes.
///
/// # Panics
///
/// Panics if `out.len() != rows * cols` or a worker panics.
pub fn par_row_bands<F>(out: &mut [f32], rows: usize, cols: usize, body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    par_row_bands_weighted(out, rows, cols, cols, body);
}

/// [`par_row_bands`] with an explicit per-row work estimate, for kernels
/// whose output rows are much narrower than the data each one reads.
///
/// The spawn gate of `par_row_bands` counts *output* elements, which is the
/// right proxy for GEMM-shaped kernels but starves reductions: a fused
/// dot-product pass writes `rows × 1` outputs while streaming `rows × dim`
/// inputs. Passing `work_per_row = dim` here lets such kernels parallelise
/// by the work they actually do. Banding and determinism are unchanged.
///
/// # Panics
///
/// Panics if `out.len() != rows * cols` or a worker panics.
pub fn par_row_bands_weighted<F>(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    work_per_row: usize,
    body: F,
) where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        rows * cols,
        "par_row_bands: buffer size mismatch"
    );
    let workers = threads()
        .min(rows)
        .min((rows * work_per_row) / MIN_ELEMS_PER_WORKER)
        .max(1);
    if workers == 1 {
        body(0..rows, out);
        return;
    }
    // Contiguous banding: worker i gets base(+1) rows, earliest workers take
    // the remainder. split_at_mut keeps the bands provably disjoint.
    let base = rows / workers;
    let rem = rows % workers;
    let mut bands = Vec::with_capacity(workers);
    let mut rest = out;
    let mut start = 0usize;
    for w in 0..workers {
        let nrows = base + usize::from(w < rem);
        let (band, tail) = rest.split_at_mut(nrows * cols);
        bands.push((start..start + nrows, band));
        rest = tail;
        start += nrows;
    }
    let body = &body;
    crossbeam::scope(|scope| {
        for (range, band) in bands {
            scope.spawn(move |_| body(range, band));
        }
    })
    .expect("par_row_bands: worker panicked");
}

/// Maps `f` over `items` in parallel, returning results **in input order**
/// regardless of which worker computed what — the property that makes
/// parallel per-client recovery aggregate identically to the serial loop.
///
/// `min_per_worker` gates spawning: workers are capped at
/// `items.len() / min_per_worker`, so small batches run inline. Pass 1 when
/// each item is already expensive (e.g. a full-model HVP).
///
/// # Panics
///
/// Panics if a worker panics.
pub fn par_map<T, R, F>(items: &[T], min_per_worker: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len() / min_per_worker.max(1)).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let results: std::sync::Mutex<Vec<(usize, Vec<R>)>> =
        std::sync::Mutex::new(Vec::with_capacity(workers));
    let base = items.len() / workers;
    let rem = items.len() % workers;
    let f = &f;
    let results_ref = &results;
    crossbeam::scope(|scope| {
        let mut start = 0usize;
        for w in 0..workers {
            let n = base + usize::from(w < rem);
            let band = start..start + n;
            start += n;
            scope.spawn(move |_| {
                let out: Vec<R> = band.clone().map(|i| f(i, &items[i])).collect();
                results_ref
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((band.start, out));
            });
        }
    })
    .expect("par_map: worker panicked");
    let mut bands = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    bands.sort_by_key(|(s, _)| *s);
    bands.into_iter().flat_map(|(_, v)| v).collect()
}

/// Serialises tests that toggle the global thread override (the override
/// itself never changes output bytes, but assertions *about* it would race).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_path_covers_all_rows() {
        let _g = test_guard();
        set_threads(1);
        let mut out = vec![0.0f32; 6];
        par_row_bands(&mut out, 3, 2, |range, band| {
            for (i, r) in range.enumerate() {
                band[i * 2] = r as f32;
                band[i * 2 + 1] = r as f32 + 0.5;
            }
        });
        set_threads(0);
        assert_eq!(out, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let _g = test_guard();
        let rows = 64;
        let cols = 1024; // big enough to clear MIN_ELEMS_PER_WORKER at 4 workers
        let fill = |range: Range<usize>, band: &mut [f32]| {
            for (i, r) in range.enumerate() {
                for c in 0..cols {
                    band[i * cols + c] = (r * 31 + c) as f32 * 0.001 - 3.0;
                }
            }
        };
        set_threads(1);
        let mut serial = vec![0.0f32; rows * cols];
        par_row_bands(&mut serial, rows, cols, fill);
        set_threads(4);
        let mut parallel = vec![0.0f32; rows * cols];
        par_row_bands(&mut parallel, rows, cols, fill);
        set_threads(0);
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn tiny_work_stays_serial() {
        let _g = test_guard();
        set_threads(8);
        let mut out = vec![0.0f32; 4];
        // Would split 2 rows over 8 workers if the size gate were missing.
        par_row_bands(&mut out, 2, 2, |range, band| {
            for (i, _r) in range.enumerate() {
                band[i * 2] = 1.0;
                band[i * 2 + 1] = 2.0;
            }
        });
        set_threads(0);
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn weighted_bands_match_serial_bitwise() {
        let _g = test_guard();
        // 64 single-column output rows, each "costing" 4096 elements: the
        // weighted gate allows multiple workers where the plain gate would
        // stay serial. Output must be bitwise identical either way.
        let rows = 64;
        let work = 4096;
        let fill = |range: Range<usize>, band: &mut [f32]| {
            for (i, r) in range.enumerate() {
                band[i] = (r * 37) as f32 * 0.125 - 2.0;
            }
        };
        set_threads(1);
        let mut serial = vec![0.0f32; rows];
        par_row_bands_weighted(&mut serial, rows, 1, work, fill);
        set_threads(4);
        let mut parallel = vec![0.0f32; rows];
        par_row_bands_weighted(&mut parallel, rows, 1, work, fill);
        set_threads(0);
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn par_map_preserves_input_order() {
        let _g = test_guard();
        let items: Vec<usize> = (0..37).collect();
        set_threads(1);
        let serial = par_map(&items, 1, |i, &x| (i, x * 3));
        set_threads(5);
        let parallel = par_map(&items, 1, |i, &x| (i, x * 3));
        set_threads(0);
        assert_eq!(serial, parallel);
        assert_eq!(serial[36], (36, 108));
    }

    #[test]
    fn par_map_gates_small_batches() {
        let _g = test_guard();
        set_threads(8);
        // 3 items with min 4 per worker → inline path.
        let out = par_map(&[10, 20, 30], 4, |_i, &x| x + 1);
        set_threads(0);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn threads_respects_override() {
        let _g = test_guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
