//! BLAS-1 style operations on `f32` slices.
//!
//! All functions operate on plain slices so callers can keep parameters in
//! whatever container they like (the NN substrate uses flat `Vec<f32>`
//! parameter vectors throughout).
//!
//! # Panics
//!
//! Every binary operation panics if the two slices have different lengths;
//! mismatched lengths always indicate a bug in the caller (a model/gradient
//! shape mismatch), so failing loudly is preferable to silent truncation.

/// Dot product `xᵀy`.
///
/// Accumulates in `f64` for stability on long vectors (model parameter
/// vectors can exceed 10⁵ elements).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// ```
/// assert_eq!(fuiov_tensor::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| f64::from(*a) * f64::from(*b))
        .sum::<f64>() as f32
}

/// `y ← a·x + y` (the classic axpy update).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= a;
    }
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn add(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise difference `x − y` written into `out`, recycling its
/// allocation (the zero-allocation form of [`sub`] for replay hot loops
/// that compute `w̄ₜ − wₜ` every round).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub_into(x: &[f32], y: &[f32], out: &mut Vec<f32>) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    out.clear();
    out.extend(x.iter().zip(y).map(|(a, b)| a - b));
}

/// [`sub_into`] targeting a 64-byte-aligned scratch buffer
/// ([`crate::simd::AVec`]): the same element-wise `x[i] − y[i]`, with
/// `out` resized to fit. Used for the replay arena's `w̄ₜ − wₜ` vector so
/// the SIMD sweeps that stream it start on a cache-line boundary.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub_into_aligned(x: &[f32], y: &[f32], out: &mut crate::simd::AVec) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    out.resize(x.len(), 0.0);
    for ((o, a), b) in out.iter_mut().zip(x).zip(y) {
        *o = a - b;
    }
}

/// Euclidean norm `‖x‖₂`, accumulated in `f64`.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter()
        .map(|a| f64::from(*a) * f64::from(*a))
        .sum::<f64>()
        .sqrt() as f32
}

/// Squared Euclidean norm `‖x‖₂²`.
pub fn l2_norm_sq(x: &[f32]) -> f32 {
    x.iter().map(|a| f64::from(*a) * f64::from(*a)).sum::<f64>() as f32
}

/// Euclidean distance `‖x − y‖₂`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn l2_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "l2_distance: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = f64::from(*a) - f64::from(*b);
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Infinity norm `‖x‖∞` (largest absolute element), `0.0` for empty input.
pub fn linf_norm(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, a| m.max(a.abs()))
}

/// The paper's Eq. 7 gradient clipping:
/// `g̃ = ḡ / max(1, ‖ḡ‖₂ / L)`.
///
/// If the vector's L2 norm is at most `L` it is returned unchanged;
/// otherwise it is scaled down so its norm equals `L`. This bounds the step
/// any single estimated gradient can take during recovery, limiting the
/// damage of estimation error.
///
/// # Panics
///
/// Panics if `l` is not strictly positive and finite.
///
/// ```
/// let mut g = vec![3.0, 4.0]; // ‖g‖ = 5
/// fuiov_tensor::vector::clip_l2(&mut g, 1.0);
/// assert!((fuiov_tensor::vector::l2_norm(&g) - 1.0).abs() < 1e-6);
/// ```
pub fn clip_l2(x: &mut [f32], l: f32) {
    assert!(
        l > 0.0 && l.is_finite(),
        "clip_l2: threshold must be positive"
    );
    let norm = l2_norm(x);
    if norm > l {
        scale(l / norm, x);
    }
}

/// The paper's Eq. 7 read element-wise (its `|·|` "denotes the absolute
/// value of gradient elements"): every element is clamped to `[−L, L]`,
/// i.e. `g̃ⱼ = ḡⱼ / max(1, |ḡⱼ|/L)`.
///
/// # Panics
///
/// Panics if `l` is not strictly positive and finite.
///
/// ```
/// let mut g = vec![0.5, -3.0, 2.0];
/// fuiov_tensor::vector::clip_elementwise(&mut g, 1.0);
/// assert_eq!(g, vec![0.5, -1.0, 1.0]);
/// ```
pub fn clip_elementwise(x: &mut [f32], l: f32) {
    assert!(
        l > 0.0 && l.is_finite(),
        "clip_elementwise: threshold must be positive"
    );
    for v in x {
        *v = v.clamp(-l, l);
    }
}

/// Element-wise sign with a dead-zone threshold `δ ≥ 0` (the paper's §IV
/// direction quantisation): `+1` if `v > δ`, `-1` if `v < −δ`, else `0`.
///
/// NaN values map to `0` (they fall in neither open half-line).
///
/// # Panics
///
/// Panics if `delta` is negative or NaN.
pub fn sign_with_threshold(x: &[f32], delta: f32) -> Vec<i8> {
    assert!(delta >= 0.0, "sign_with_threshold: delta must be >= 0");
    x.iter()
        .map(|&v| {
            if v > delta {
                1
            } else if v < -delta {
                -1
            } else {
                0
            }
        })
        .collect()
}

/// Expands a sign vector back to `f32` (`i8 ∈ {−1,0,1}` → `f32`).
pub fn signs_to_f32(s: &[i8]) -> Vec<f32> {
    s.iter().map(|&v| f32::from(v)).collect()
}

/// Linear interpolation `(1−t)·x + t·y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn lerp(x: &[f32], y: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "lerp: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (1.0 - t) * a + t * b)
        .collect()
}

/// Weighted average of several vectors: `Σ wᵢ·xᵢ / Σ wᵢ`.
///
/// This is FedAvg's Eq. 1 kernel; weights are typically client dataset
/// sizes.
///
/// # Panics
///
/// Panics if `vecs` is empty, lengths differ, `weights.len() != vecs.len()`,
/// or all weights sum to zero.
pub fn weighted_mean(vecs: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vecs.is_empty(), "weighted_mean: no vectors");
    assert_eq!(
        vecs.len(),
        weights.len(),
        "weighted_mean: weight count mismatch"
    );
    let dim = vecs[0].len();
    let total: f64 = weights.iter().map(|w| f64::from(*w)).sum();
    assert!(total != 0.0, "weighted_mean: weights sum to zero");
    let mut acc = vec![0.0f64; dim];
    for (v, &w) in vecs.iter().zip(weights) {
        assert_eq!(v.len(), dim, "weighted_mean: length mismatch");
        for (a, &x) in acc.iter_mut().zip(*v) {
            *a += f64::from(w) * f64::from(x);
        }
    }
    acc.into_iter().map(|a| (a / total) as f32).collect()
}

/// [`weighted_mean`] writing into caller-owned buffers: `acc` is the `f64`
/// accumulator scratch and `out` receives the `f32` result. Both are
/// cleared and resized, so at steady state (server round loop, tree-node
/// reduction) no allocation happens. The fold order and every arithmetic
/// operation are identical to [`weighted_mean`], so the result is bitwise
/// equal by construction.
///
/// # Panics
///
/// As [`weighted_mean`].
pub fn weighted_mean_into(
    vecs: &[&[f32]],
    weights: &[f32],
    acc: &mut Vec<f64>,
    out: &mut Vec<f32>,
) {
    assert!(!vecs.is_empty(), "weighted_mean: no vectors");
    assert_eq!(
        vecs.len(),
        weights.len(),
        "weighted_mean: weight count mismatch"
    );
    let dim = vecs[0].len();
    let total: f64 = weights.iter().map(|w| f64::from(*w)).sum();
    assert!(total != 0.0, "weighted_mean: weights sum to zero");
    acc.clear();
    acc.resize(dim, 0.0);
    for (v, &w) in vecs.iter().zip(weights) {
        assert_eq!(v.len(), dim, "weighted_mean: length mismatch");
        for (a, &x) in acc.iter_mut().zip(*v) {
            *a += f64::from(w) * f64::from(x);
        }
    }
    out.clear();
    out.extend(acc.iter().map(|a| (a / total) as f32));
}

/// Number of elements on which two sign vectors agree (used by tests and
/// by the storage-fidelity diagnostics).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sign_agreement(a: &[i8], b: &[i8]) -> usize {
    assert_eq!(a.len(), b.len(), "sign_agreement: length mismatch");
    a.iter().zip(b).filter(|(x, y)| x == y).count()
}

/// Cosine similarity between two vectors, or `None` if either is the zero
/// vector (the quantity is undefined there).
pub fn cosine_similarity(x: &[f32], y: &[f32]) -> Option<f32> {
    let nx = l2_norm(x);
    let ny = l2_norm(y);
    if nx == 0.0 || ny == 0.0 {
        None
    } else {
        Some(dot(x, y) / (nx * ny))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.5, -1.0, 2.0];
        assert_eq!(sub(&add(&x, &y), &y), x);
    }

    #[test]
    fn sub_into_matches_sub_and_recycles() {
        let x = vec![1.0f32, -2.5, 0.25];
        let y = vec![0.5f32, 1.5, 0.25];
        let mut out = Vec::with_capacity(3);
        sub_into(&x, &y, &mut out);
        assert_eq!(out, sub(&x, &y));
        let ptr = out.as_ptr();
        sub_into(&y, &x, &mut out);
        assert_eq!(out, sub(&y, &x));
        assert_eq!(ptr, out.as_ptr(), "sub_into must reuse the buffer");
    }

    #[test]
    fn norms() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(linf_norm(&[-3.0, 2.0]), 3.0);
        assert_eq!(linf_norm(&[]), 0.0);
        assert_eq!(l2_distance(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
    }

    #[test]
    fn clip_l2_below_threshold_is_identity() {
        let mut g = vec![0.3, 0.4]; // norm 0.5
        clip_l2(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_l2_above_threshold_scales_to_l() {
        let mut g = vec![30.0, 40.0];
        clip_l2(&mut g, 2.5);
        assert!((l2_norm(&g) - 2.5).abs() < 1e-5);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn clip_l2_rejects_nonpositive() {
        clip_l2(&mut [1.0], 0.0);
    }

    #[test]
    fn clip_elementwise_clamps_each_element() {
        let mut g = vec![0.2, -5.0, 1.0, 3.0];
        clip_elementwise(&mut g, 1.0);
        assert_eq!(g, vec![0.2, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn clip_elementwise_identity_below_threshold() {
        let mut g = vec![0.2, -0.3];
        clip_elementwise(&mut g, 1.0);
        assert_eq!(g, vec![0.2, -0.3]);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn clip_elementwise_rejects_nan() {
        clip_elementwise(&mut [1.0], f32::NAN);
    }

    #[test]
    fn sign_threshold_dead_zone() {
        let s = sign_with_threshold(&[0.5, -0.5, 1e-7, -1e-7, 0.0], 1e-6);
        assert_eq!(s, vec![1, -1, 0, 0, 0]);
    }

    #[test]
    fn sign_threshold_zero_delta_is_plain_sign() {
        let s = sign_with_threshold(&[2.0, -3.0, 0.0], 0.0);
        assert_eq!(s, vec![1, -1, 0]);
    }

    #[test]
    fn sign_nan_maps_to_zero() {
        let s = sign_with_threshold(&[f32::NAN], 0.0);
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn signs_roundtrip_to_f32() {
        assert_eq!(signs_to_f32(&[1, 0, -1]), vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn weighted_mean_matches_fedavg() {
        // Two clients: weights 1 and 3.
        let m = weighted_mean(&[&[1.0, 0.0], &[5.0, 4.0]], &[1.0, 3.0]);
        assert_eq!(m, vec![4.0, 3.0]);
    }

    #[test]
    fn weighted_mean_single_vector_is_identity() {
        let m = weighted_mean(&[&[1.5, -2.0]], &[7.0]);
        assert_eq!(m, vec![1.5, -2.0]);
    }

    #[test]
    fn weighted_mean_into_is_bitwise_identical_and_reuses_buffers() {
        let vecs: Vec<Vec<f32>> = vec![
            vec![1.0, -2.5, 0.125, 1e-30],
            vec![3.0, 0.0, -7.25, 2.0],
            vec![-0.1, 0.3, 0.7, -1.5],
        ];
        let refs: Vec<&[f32]> = vecs.iter().map(Vec::as_slice).collect();
        let weights = [1.0f32, 3.5, 0.25];
        let baseline = weighted_mean(&refs, &weights);
        let mut acc = Vec::new();
        let mut out = Vec::new();
        // Twice through the same buffers: results identical, and the
        // second pass must not grow capacity (steady state is allocation
        // free).
        weighted_mean_into(&refs, &weights, &mut acc, &mut out);
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expected: Vec<u32> = baseline.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expected);
        let (cap_acc, cap_out) = (acc.capacity(), out.capacity());
        weighted_mean_into(&refs, &weights, &mut acc, &mut out);
        assert_eq!(acc.capacity(), cap_acc);
        assert_eq!(out.capacity(), cap_out);
        let bits2: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits2, expected);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_mean_zero_weights_panics() {
        weighted_mean(&[&[1.0]], &[0.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let x = vec![0.0, 10.0];
        let y = vec![4.0, 20.0];
        assert_eq!(lerp(&x, &y, 0.0), x);
        assert_eq!(lerp(&x, &y, 1.0), y);
        assert_eq!(lerp(&x, &y, 0.5), vec![2.0, 15.0]);
    }

    #[test]
    fn cosine_similarity_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).unwrap()).abs() < 1e-6);
        assert!(cosine_similarity(&[0.0], &[1.0]).is_none());
    }

    #[test]
    fn sign_agreement_counts() {
        assert_eq!(sign_agreement(&[1, -1, 0], &[1, 1, 0]), 2);
    }
}
