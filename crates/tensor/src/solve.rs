//! Dense linear solves via LU factorisation with partial pivoting.
//!
//! The unlearning pipeline solves one `2s × 2s` system per Hessian-vector
//! product (Algorithm 2, line 5), with `s = 2` in the paper — so these are
//! tiny systems and a textbook LU with partial pivoting is both adequate and
//! easy to verify. Singularity (which occurs when L-BFGS vector pairs are
//! linearly dependent, e.g. two identical rounds) is reported as an error so
//! the recovery loop can fall back to a diagonal Hessian approximation.

use crate::matrix::Mat;
use std::error::Error;
use std::fmt;

/// Error returned when a matrix is singular (or numerically so).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError {
    /// Pivot column at which elimination broke down.
    pub pivot: usize,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.pivot)
    }
}

impl Error for SolveError {}

/// LU factorisation with partial pivoting, stored compactly.
///
/// ```
/// use fuiov_tensor::{Mat, solve::Lu};
/// # fn main() -> Result<(), fuiov_tensor::SolveError> {
/// let a = Mat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Mat,
    /// Row permutation applied: row `i` of the factored matrix came from
    /// original row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f32,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the matrix is singular to working
    /// precision (pivot magnitude below `1e-12`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factor(a: &Mat) -> Result<Self, SolveError> {
        assert_eq!(a.rows(), a.cols(), "Lu::factor: matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0f32;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-12 {
                return Err(SolveError { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(p, c));
                    lu.set(p, c, tmp);
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for one right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f32]) -> Vec<f32> {
        let mut y = Vec::with_capacity(self.dim());
        self.solve_into(b, &mut y);
        y
    }

    /// [`Lu::solve`] into a caller-owned buffer, recycling its allocation.
    ///
    /// The recovery replay solves one tiny `2s × 2s` system per client per
    /// round; this variant lets the batched engine keep a single scratch
    /// vector alive across all of them.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // substitution indexes y and lu jointly
    pub fn solve_into(&self, b: &[f32], y: &mut Vec<f32>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        // Apply permutation, then forward substitution (L has unit diagonal).
        y.clear();
        y.extend(self.perm.iter().map(|&p| b[p]));
        for r in 1..n {
            let mut acc = f64::from(y[r]);
            for c in 0..r {
                acc -= f64::from(self.lu.get(r, c)) * f64::from(y[c]);
            }
            y[r] = acc as f32;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let mut acc = f64::from(y[r]);
            for c in (r + 1)..n {
                acc -= f64::from(self.lu.get(r, c)) * f64::from(y[c]);
            }
            y[r] = (acc / f64::from(self.lu.get(r, r))) as f32;
        }
    }

    /// Solves `A·X = B` column-by-column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.dim(), "Lu::solve_mat: row count mismatch");
        let cols: Vec<Vec<f32>> = (0..b.cols()).map(|j| self.solve(&b.col(j))).collect();
        Mat::from_cols(&cols)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f32 {
        let mut d = f64::from(self.perm_sign);
        for i in 0..self.dim() {
            d *= f64::from(self.lu.get(i, i));
        }
        d as f32
    }
}

/// Convenience: factor-and-solve for a single right-hand side.
///
/// # Errors
///
/// Returns [`SolveError`] if `a` is singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &Mat, b: &[f32]) -> Result<Vec<f32>, SolveError> {
    Ok(Lu::factor(a)?.solve(b))
}

/// Explicit inverse (used only by the dense reference implementation of
/// Algorithm 2; the production path solves systems instead).
///
/// # Errors
///
/// Returns [`SolveError`] if `a` is singular.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn inverse(a: &Mat) -> Result<Mat, SolveError> {
    let lu = Lu::factor(a)?;
    Ok(lu.solve_mat(&Mat::eye(a.rows())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::l2_distance;

    #[test]
    fn solve_identity() {
        let x = solve(&Mat::eye(3), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [0.8, 1.4]
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!(l2_distance(&x, &[0.8, 1.4]) < 1e-5);
    }

    #[test]
    fn solve_requires_pivoting() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(l2_distance(&x, &[3.0, 2.0]) < 1e-6);
    }

    #[test]
    fn singular_reports_error() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = solve(&a, &[1.0, 1.0]).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Mat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Mat::eye(2)) < 1e-5);
    }

    #[test]
    fn det_of_permuted_matrix() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn solve_into_matches_solve_and_recycles() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let mut y = Vec::with_capacity(2);
        lu.solve_into(&[3.0, 5.0], &mut y);
        assert_eq!(y, lu.solve(&[3.0, 5.0]));
        let ptr = y.as_ptr();
        lu.solve_into(&[1.0, -1.0], &mut y);
        assert_eq!(y, lu.solve(&[1.0, -1.0]));
        assert_eq!(ptr, y.as_ptr(), "solve_into must reuse the buffer");
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 6.0], &[2.0, 4.0]]);
        let x = Lu::factor(&a).unwrap().solve_mat(&b);
        assert!(x.max_abs_diff(&Mat::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]])) < 1e-5);
    }

    #[test]
    fn random_solve_residual_is_small() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1usize, 2, 4, 8] {
            let data: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let a = Mat::from_vec(n, n, data);
            let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            match solve(&a, &b) {
                Ok(x) => {
                    let r = a.matvec(&x);
                    assert!(l2_distance(&r, &b) < 1e-3, "residual too large for n={n}");
                }
                Err(_) => { /* random singular matrix: acceptable */ }
            }
        }
    }
}
