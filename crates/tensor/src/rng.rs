//! Deterministic seed derivation.
//!
//! Every stochastic component in the repository (data generation, client
//! sampling, weight initialisation, attack poisoning, churn) takes an
//! explicit seed. To avoid accidental correlation between components that
//! share a master seed, seeds are derived per-(component, stream) with
//! SplitMix64 — the standard generator-seeding mixer.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for a named stream of a master seed.
///
/// Distinct `(master, stream)` pairs produce decorrelated seeds, so e.g.
/// client 7's local shuffling never correlates with client 8's weight
/// noise even when both derive from the same experiment seed.
///
/// ```
/// use fuiov_tensor::rng::derive_seed;
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master) ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// A seeded [`StdRng`] for a `(master, stream)` pair.
pub fn rng_for(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// Stream-id helpers so call sites don't invent overlapping constants.
///
/// Each component of the stack owns a disjoint stream namespace.
pub mod streams {
    /// Data-generation streams start here.
    pub const DATA: u64 = 0x0100_0000;
    /// Model weight initialisation.
    pub const INIT: u64 = 0x0200_0000;
    /// Per-client local training (add the client id).
    pub const CLIENT: u64 = 0x0300_0000;
    /// Attack poisoning decisions.
    pub const ATTACK: u64 = 0x0400_0000;
    /// IoV churn (arrivals/departures/dropouts).
    pub const CHURN: u64 = 0x0500_0000;
    /// Baseline algorithms (noise in FedRecovery, etc.).
    pub const BASELINE: u64 = 0x0600_0000;
    /// Fault-injection plans (`fuiov-testkit`).
    pub const TESTKIT: u64 = 0x0700_0000;
    /// Networked plane (`fuiov-net`): retry/backoff jitter (add the
    /// client id so vehicles don't thunder in lockstep).
    pub const NET: u64 = 0x0800_0000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn different_streams_differ() {
        let a = derive_seed(99, streams::DATA);
        let b = derive_seed(99, streams::INIT);
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn rng_for_reproducible_sequence() {
        let mut a = rng_for(7, 3);
        let mut b = rng_for(7, 3);
        let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn adjacent_streams_decorrelated() {
        // Weak sanity check: first draws from adjacent streams differ.
        let mut seen = std::collections::HashSet::new();
        for s in 0..64u64 {
            let v: u64 = rng_for(5, s).gen();
            assert!(seen.insert(v), "collision between adjacent streams");
        }
    }
}
