//! Property suite for the scenario-matrix parser and the plan expander:
//! render/parse round-trips, strict rejection of unknown fields and
//! duplicate ids with *typed* errors, and bitwise-deterministic plan
//! expansion (the "same matrix + same seed → same trials" contract that
//! CI's fingerprint logs rely on).

use fuiov_lab::matrix::{
    parse_matrix, render_matrix, MatrixError, Method, Overrides, ScenarioRow, Task, Variant,
};
use fuiov_lab::plan::{expand, plan_fingerprint, PlanFilter};
use proptest::prelude::*;

/// A short lowercase identifier.
fn ident() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..26, 1..8)
        .prop_map(|ixs| ixs.into_iter().map(|i| (b'a' + i as u8) as char).collect())
}

/// Wraps a strategy in a coin-flipped `Option`.
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), s).prop_map(|(some, v)| if some { Some(v) } else { None })
}

/// A random subset of the override schema (every value chosen so the
/// JSON round-trip is exact: integers, f32-representable floats, enums).
fn overrides_strategy() -> impl Strategy<Value = Overrides> {
    (
        opt(1usize..200),
        opt(2usize..32),
        opt(1u32..1000),
        opt(1u32..1000),
        opt(any::<bool>()),
        opt(0usize..2),
    )
        .prop_map(
            |(rounds, n_clients, lr_m, clip_m, hessian, attack_ix)| Overrides {
                rounds,
                n_clients,
                lr: lr_m.map(|m| m as f32 / 1000.0),
                clip_threshold: clip_m.map(|m| m as f32 / 100.0),
                hessian_correction: hessian,
                attack: attack_ix.map(|i| ["label_flip", "backdoor"][i].to_string()),
                ..Overrides::default()
            },
        )
}

fn row_strategy() -> impl Strategy<Value = ScenarioRow> {
    (
        (ident(), 0usize..4, 1u32..4, any::<u32>(), any::<bool>()),
        (
            overrides_strategy(),
            prop::collection::vec((ident(), overrides_strategy()), 0..3),
        ),
    )
        .prop_map(
            |((id, task_ix, repeats, base_seed, smoke), (overrides, variants))| {
                // Variant names must be unique within the row; suffix the
                // position so collisions cannot occur.
                let variants: Vec<Variant> = variants
                    .into_iter()
                    .enumerate()
                    .map(|(i, (name, overrides))| Variant {
                        name: format!("{name}{i}"),
                        overrides,
                    })
                    .collect();
                ScenarioRow {
                    id,
                    task: Task::ALL[task_ix],
                    repeats,
                    base_seed: u64::from(base_seed),
                    smoke,
                    note: String::new(),
                    methods: Method::table1_set(),
                    evals: Vec::new(),
                    overrides,
                    variants,
                    asserts: Vec::new(),
                }
            },
        )
}

/// A whole matrix with ids made unique by position (duplicate ids are a
/// separate property).
fn matrix_strategy() -> impl Strategy<Value = Vec<ScenarioRow>> {
    prop::collection::vec(row_strategy(), 1..5).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = format!("{}-{i}", r.id);
                r
            })
            .collect()
    })
}

const ROW_FIELDS: [&str; 11] = [
    "id",
    "task",
    "repeats",
    "base_seed",
    "smoke",
    "note",
    "methods",
    "evals",
    "overrides",
    "variants",
    "asserts",
];

proptest! {
    #[test]
    fn render_parse_round_trips(rows in matrix_strategy()) {
        let rendered = render_matrix(&rows);
        let reparsed = parse_matrix(&rendered).expect("rendered matrix reparses");
        prop_assert_eq!(reparsed, rows);
    }

    #[test]
    fn unknown_fields_are_typed_errors(rows in matrix_strategy(), key in ident()) {
        prop_assume!(!ROW_FIELDS.contains(&key.as_str()));
        let rendered = render_matrix(&rows);
        // Graft the unknown key onto the first row's object.
        let line = rendered.lines().next().unwrap();
        let sabotaged = format!(
            "{},\"{key}\":1{}",
            &line[..line.len() - 1],
            &line[line.len() - 1..]
        );
        match parse_matrix(&sabotaged) {
            Err(MatrixError::UnknownField { line: 1, field }) => {
                prop_assert_eq!(field, key);
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn unknown_override_keys_are_typed_errors(key in ident()) {
        prop_assume!(!Overrides::known_keys().any(|k| k == key));
        let src = format!(r#"{{"id":"a","task":"tiny","overrides":{{"{key}":1}}}}"#);
        match parse_matrix(&src) {
            Err(MatrixError::UnknownField { line: 1, field }) => {
                prop_assert_eq!(field, format!("overrides.{key}"));
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_are_typed_errors(rows in matrix_strategy()) {
        let mut doubled = rows.clone();
        doubled.push(rows[0].clone());
        let rendered = render_matrix(&doubled);
        match parse_matrix(&rendered) {
            Err(MatrixError::DuplicateId { id, .. }) => {
                prop_assert_eq!(id, rows[0].id.clone());
            }
            other => panic!("expected DuplicateId, got {other:?}"),
        }
    }

    #[test]
    fn expansion_is_bitwise_deterministic(rows in matrix_strategy()) {
        let a = expand(&rows, &PlanFilter::default());
        let b = expand(&rows, &PlanFilter::default());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b));
        // And through a render/parse cycle: the matrix file is the
        // canonical form, so plans survive it bitwise too.
        let reparsed = parse_matrix(&render_matrix(&rows)).unwrap();
        let c = expand(&reparsed, &PlanFilter::default());
        prop_assert_eq!(plan_fingerprint(&a), plan_fingerprint(&c));
    }

    #[test]
    fn seed_override_shifts_every_trial(
        rows in matrix_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let plans = expand(
            &rows,
            &PlanFilter { seed_override: Some(seed), ..Default::default() },
        );
        for p in &plans {
            prop_assert_eq!(p.seed, seed + u64::from(p.repeat));
        }
    }
}
