//! Bitwise parity with the retired `exp_table1` / `exp_iot` code paths.
//!
//! The lab runner claims a matrix row reproduces the old experiment
//! binaries exactly — same seeds, same RNG streams, same accuracies.
//! This suite pins that claim at tiny scale against the *same library
//! recipe the binaries called* (`fuiov_bench::table1_row` and the
//! `exp_iot` sign-replay ablation), comparing as exact bit patterns,
//! not within a tolerance.

use fuiov_bench::experiments::ours_config;
use fuiov_bench::{table1_row, Scenario};
use fuiov_core::{recover_set, NoOracle};
use fuiov_lab::matrix::parse_matrix;
use fuiov_lab::plan::{expand, PlanFilter};
use fuiov_lab::runner::run_trial;

fn lab_metric(src: &str, seed: u64, metric: &str) -> f64 {
    let rows = parse_matrix(src).expect("matrix parses");
    let plans = expand(
        &rows,
        &PlanFilter {
            seed_override: Some(seed),
            ..Default::default()
        },
    );
    assert_eq!(plans.len(), 1);
    let report = run_trial(&plans[0]);
    *report
        .metrics
        .get(metric)
        .unwrap_or_else(|| panic!("metric '{metric}' missing from {:?}", report.metrics))
}

#[test]
fn lab_trial_reproduces_table1_row_bitwise() {
    for seed in [42u64, 101, 202] {
        let reference = table1_row(Scenario::tiny(seed), "tiny");
        let src = r#"{"id":"t","task":"tiny"}"#;
        for (metric, want) in [
            ("acc.original", reference.original),
            ("acc.unlearned", reference.unlearned),
            ("acc.retraining", reference.retraining),
            ("acc.fedrecover", reference.fedrecover),
            ("acc.fedrecovery", reference.fedrecovery),
            ("acc.ours", reference.ours),
        ] {
            let got = lab_metric(src, seed, metric);
            assert_eq!(
                got.to_bits(),
                f64::from(want).to_bits(),
                "seed {seed}: {metric} diverged from table1_row ({got} vs {want})"
            );
        }
    }
}

#[test]
fn lab_sign_replay_reproduces_the_exp_iot_ablation_bitwise() {
    // The exp_iot binary computed its "ours (sign replay)" column with
    // this exact recipe (at sensors scale; the recipe is scale-free).
    let seed = 42u64;
    let mut sc = Scenario::tiny(seed);
    sc.keep_full_gradients = true;
    let trained = sc.train();
    let cfg = ours_config(&trained.history, sc.lr).without_hessian();
    let out = recover_set(
        &trained.history,
        &[sc.forgotten_id()],
        &cfg,
        &mut NoOracle,
        |_, _| {},
    )
    .expect("recover");
    let reference = trained.accuracy_of(&out.params);

    let got = lab_metric(
        r#"{"id":"t","task":"tiny","methods":["sign_replay"]}"#,
        seed,
        "acc.sign_replay",
    );
    assert_eq!(
        got.to_bits(),
        f64::from(reference).to_bits(),
        "sign-replay ablation diverged ({got} vs {reference})"
    );
}
