//! `lab` — the scenario-lab CLI.
//!
//! ```text
//! lab run   [--matrix FILE] [--smoke] [--seed N] [--rows a,b] [--out DIR]
//! lab plan  [--matrix FILE] [--smoke] [--seed N] [--rows a,b] [--fingerprint]
//! lab check-bench [FILE...]
//! lab bench-smoke
//! ```
//!
//! `run` executes the selected slice of the matrix and writes three
//! artifacts under `--out` (default `target/lab`): `trials.jsonl` (one
//! PR-5-style report line per trial), `tables.md` (the aggregated
//! Table-I-style comparison), and `asserts.json` (machine-readable
//! shape-claim verdicts). The exit code is non-zero iff a claim failed —
//! that is the CI gate.
//!
//! `plan` prints the deterministic trial expansion without running
//! anything; `--fingerprint` prints only the FNV-1a fingerprint of the
//! whole plan (what the determinism tests and CI logs pin).
//!
//! `check-bench` re-validates recorded `BENCH_*.json` artifacts;
//! `bench-smoke` runs the bench suite in smoke mode (dispatcher on and
//! forced off) plus the one-cell transport sweep, then gates the
//! recorded artifacts — the single code path `scripts/tier1.sh
//! bench_smoke` now routes through.

use fuiov_lab::plan::{expand, plan_fingerprint, PlanFilter};
use fuiov_lab::{
    aggregate, bench_gate, check_asserts, outcomes_to_json, parse_matrix, render_table, run_trial,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_MATRIX: &str = "scenarios.jsonl";
const DEFAULT_OUT: &str = "target/lab";

fn usage() -> ExitCode {
    eprintln!(
        "usage: lab run [--matrix FILE] [--smoke] [--seed N] [--rows a,b] [--out DIR]\n\
         \x20      lab plan [--matrix FILE] [--smoke] [--seed N] [--rows a,b] [--fingerprint]\n\
         \x20      lab check-bench [FILE...]\n\
         \x20      lab bench-smoke"
    );
    ExitCode::from(2)
}

struct Args {
    matrix: PathBuf,
    filter: PlanFilter,
    out: PathBuf,
    fingerprint_only: bool,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let mut args = Args {
        matrix: PathBuf::from(DEFAULT_MATRIX),
        filter: PlanFilter::default(),
        out: PathBuf::from(DEFAULT_OUT),
        fingerprint_only: false,
    };
    while let Some(a) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--matrix" => args.matrix = PathBuf::from(value("--matrix")?),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--smoke" => args.filter.smoke_only = true,
            "--seed" => {
                let v = value("--seed")?;
                args.filter.seed_override =
                    Some(v.parse().map_err(|_| format!("bad --seed '{v}'"))?);
            }
            "--rows" => {
                let v = value("--rows")?;
                args.filter.row_ids = Some(v.split(',').map(str::to_string).collect());
            }
            "--fingerprint" => args.fingerprint_only = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn load_rows(path: &Path) -> Result<Vec<fuiov_lab::ScenarioRow>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_matrix(&src).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    let rows = load_rows(&args.matrix)?;
    let plans = expand(&rows, &args.filter);
    if plans.is_empty() {
        return Err("no trials selected (empty matrix or over-narrow filter)".into());
    }
    println!(
        "lab: {} trial(s), plan fingerprint {:016x}",
        plans.len(),
        plan_fingerprint(&plans)
    );
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;

    let mut jsonl = String::new();
    let mut reports = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        println!(
            "lab: [{}/{}] {} / {} (task {}, seed {})",
            i + 1,
            plans.len(),
            plan.row_id,
            plan.variant,
            plan.task.name(),
            plan.seed
        );
        let report = run_trial(plan);
        jsonl.push_str(&report.to_jsonl());
        jsonl.push('\n');
        reports.push(report);
    }

    let aggs = aggregate(&reports);
    let table = render_table(&aggs);
    let outcomes = check_asserts(&rows, &aggs);

    let write = |name: &str, contents: &str| -> Result<(), String> {
        let path = args.out.join(name);
        std::fs::write(&path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
    };
    write("trials.jsonl", &jsonl)?;
    write("tables.md", &table)?;
    write("asserts.json", &outcomes_to_json(&outcomes))?;

    println!("\n{table}");
    let mut failed = 0usize;
    for o in &outcomes {
        let mark = if o.pass { "ok  " } else { "FAIL" };
        println!(
            "assert {mark} [{} / {}] {} (lhs={:.4}, rhs={:.4})",
            o.row_id, o.variant, o.expr, o.lhs, o.rhs
        );
        failed += usize::from(!o.pass);
    }
    println!(
        "lab: {} trial(s), {} claim(s), {} failed; artifacts in {}",
        reports.len(),
        outcomes.len(),
        failed,
        args.out.display()
    );
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_plan(args: &Args) -> Result<ExitCode, String> {
    let rows = load_rows(&args.matrix)?;
    let plans = expand(&rows, &args.filter);
    if args.fingerprint_only {
        println!("{:016x}", plan_fingerprint(&plans));
    } else {
        for p in &plans {
            println!("{:016x} {}", p.fingerprint(), p.canonical());
        }
        println!(
            "lab: {} trial(s), plan fingerprint {:016x}",
            plans.len(),
            plan_fingerprint(&plans)
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn check_bench_file(path: &Path) -> Result<String, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if name.contains("micro") {
        let s = bench_gate::check_micro(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(format!(
            "{}: ok ({} epoch(s), {} benchmark(s))",
            path.display(),
            s.epochs,
            s.benchmarks
        ))
    } else if name.contains("net") {
        let s = bench_gate::check_net(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(format!(
            "{}: ok ({} row(s) byte-reconciled)",
            path.display(),
            s.rows
        ))
    } else {
        Err(format!(
            "{}: no gate for this artifact (expected a BENCH_micro or BENCH_net file)",
            path.display()
        ))
    }
}

fn cmd_check_bench(files: &[String]) -> Result<ExitCode, String> {
    let defaults = ["BENCH_micro.json".to_string(), "BENCH_net.json".to_string()];
    let files: Vec<&String> = if files.is_empty() {
        defaults.iter().collect()
    } else {
        files.iter().collect()
    };
    for f in files {
        println!("{}", check_bench_file(Path::new(f))?);
    }
    Ok(ExitCode::SUCCESS)
}

fn spawn(cmd: &str, cmd_args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    let mut c = std::process::Command::new(cmd);
    c.args(cmd_args).stdout(std::process::Stdio::null());
    for (k, v) in envs {
        c.env(k, v);
    }
    let shown = format!("{cmd} {}", cmd_args.join(" "));
    let status = c.status().map_err(|e| format!("spawn '{shown}': {e}"))?;
    if !status.success() {
        return Err(format!("'{shown}' failed with {status}"));
    }
    Ok(())
}

fn cmd_bench_smoke() -> Result<ExitCode, String> {
    // Every benchmark (including its pre-timing bitwise differential
    // assertions) once with a minimal budget, on both kernel paths.
    let micro = ["bench", "-p", "fuiov-bench", "--bench", "micro"];
    println!("lab: bench smoke (dispatcher on)");
    spawn("cargo", &micro, &[("FUIOV_BENCH_SMOKE", "1")])?;
    println!("lab: bench smoke (FUIOV_SIMD=0)");
    spawn(
        "cargo",
        &micro,
        &[("FUIOV_BENCH_SMOKE", "1"), ("FUIOV_SIMD", "0")],
    )?;
    // One-cell transport sweep: its exact byte-reconciliation asserts
    // run on every pass even though the full BENCH_net sweep does not.
    println!("lab: transport smoke (exp_net)");
    spawn(
        "cargo",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "fuiov-bench",
            "--bin",
            "exp_net",
        ],
        &[("FUIOV_BENCH_SMOKE", "1")],
    )?;
    // And the recorded artifacts must still reconcile with the model.
    cmd_check_bench(&[])
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    let _prog = argv.next();
    let Some(cmd) = argv.next() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "run" | "plan" => match parse_args(argv) {
            Ok(args) if cmd == "run" => cmd_run(&args),
            Ok(args) => cmd_plan(&args),
            Err(e) => Err(e),
        },
        "check-bench" => cmd_check_bench(&argv.collect::<Vec<_>>()),
        "bench-smoke" => cmd_bench_smoke(),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("lab: {e}");
            ExitCode::FAILURE
        }
    }
}
