//! Trial execution: one [`TrialPlan`] in, one [`TrialReport`] out.
//!
//! The runner drives the *existing* facade — [`fuiov_bench::Scenario`]
//! training, the backtrack/recover pipeline, every baseline, the job
//! service, and the loopback transport — addressed entirely through
//! scenario fields, so a matrix row can reach any knob the `exp_*`
//! binaries could. Method accuracies follow the exact recipe of
//! `fuiov_bench::experiments::table1_row` (same configs, same seed
//! streams), so a lab trial reproduces the retired `exp_table1` /
//! `exp_iot` numbers bitwise; `crates/lab/tests/parity.rs` pins this.
//!
//! Every trial emits one JSON line: metrics, FNV-1a parameter digests
//! per method (the golden-trace hash family), and the windowed
//! observability counters of the run (the PR-5 RunReport, embedded).

use crate::json::Json;
use crate::matrix::{EvalKind, Method, Task};
use crate::plan::TrialPlan;
use fuiov_attacks::{reconstruction_error, Backdoor, LabelFlip};
use fuiov_baselines::{
    fedrecover, fedrecovery, not_unlearn, retrain, FedRecoverConfig, FedRecoveryConfig,
};
use fuiov_bench::experiments::ours_config;
use fuiov_bench::{Attack, Scenario};
use fuiov_core::{
    backtrack_set, membership_advantage, recover_set, ClientPoolOracle, JobConfig, JobService,
    NoOracle, RecoveryConfig, Unlearner,
};
use fuiov_fl::comms::round_bytes;
use fuiov_fl::{Client, FlConfig, Server};
use fuiov_net::{NetAddr, NetConfig, NetServer, NetVehicle, UploadMode, VehicleConfig};
use fuiov_obs::Snapshot;
use fuiov_storage::HistoryStore;
use fuiov_testkit::digest_params;
use std::collections::BTreeMap;
use std::time::Duration;

/// The outcome of one trial: everything the aggregator (and the JSONL
/// artifact) needs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Owning row id.
    pub row_id: String,
    /// Variant label.
    pub variant: String,
    /// Task name.
    pub task: String,
    /// The trial's seed.
    pub seed: u64,
    /// Repeat index.
    pub repeat: u32,
    /// Scalar results (`acc.*`, `mia.*`, `recon.*`, `replay.*`, …).
    pub metrics: BTreeMap<String, f64>,
    /// FNV-1a digests of each method's output parameters (hex in JSONL) —
    /// the bitwise identity of the trial.
    pub digests: BTreeMap<String, String>,
    /// Observability counters recorded during the trial (windowed — the
    /// embedded RunReport).
    pub counters: BTreeMap<String, u64>,
}

impl TrialReport {
    /// One JSON line (the per-trial artifact format).
    pub fn to_jsonl(&self) -> String {
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let digests = Json::Obj(
            self.digests
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        Json::Obj(vec![
            ("row".into(), Json::Str(self.row_id.clone())),
            ("variant".into(), Json::Str(self.variant.clone())),
            ("task".into(), Json::Str(self.task.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("repeat".into(), Json::Num(f64::from(self.repeat))),
            ("metrics".into(), metrics),
            ("digests".into(), digests),
            ("counters".into(), counters),
        ])
        .render()
    }

    /// Parses a line produced by [`TrialReport::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a well-formed trial record.
    pub fn parse_jsonl(line: &str) -> Result<TrialReport, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let str_field = |k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Json::as_str)
                .ok_or(format!("missing string field '{k}'"))?
                .to_string())
        };
        let mut metrics = BTreeMap::new();
        for (k, m) in v.get("metrics").and_then(Json::as_obj).unwrap_or(&[]) {
            metrics.insert(
                k.clone(),
                m.as_f64().ok_or(format!("metric '{k}' not a number"))?,
            );
        }
        let mut digests = BTreeMap::new();
        for (k, d) in v.get("digests").and_then(Json::as_obj).unwrap_or(&[]) {
            digests.insert(
                k.clone(),
                d.as_str()
                    .ok_or(format!("digest '{k}' not a string"))?
                    .to_string(),
            );
        }
        let mut counters = BTreeMap::new();
        for (k, c) in v.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
            counters.insert(
                k.clone(),
                c.as_u64().ok_or(format!("counter '{k}' not a u64"))?,
            );
        }
        Ok(TrialReport {
            row_id: str_field("row")?,
            variant: str_field("variant")?,
            task: str_field("task")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing 'seed'")?,
            repeat: v
                .get("repeat")
                .and_then(Json::as_u64)
                .ok_or("missing 'repeat'")? as u32,
            metrics,
            digests,
            counters,
        })
    }
}

/// Builds the concrete [`Scenario`] a plan describes.
pub fn scenario_of(plan: &TrialPlan) -> Scenario {
    let mut sc = match plan.task {
        Task::Tiny => Scenario::tiny(plan.seed),
        Task::Digits => Scenario::digits(plan.seed),
        Task::Signs => Scenario::signs(plan.seed),
        Task::Sensors => Scenario::sensors(plan.seed),
    };
    let o = &plan.overrides;
    if let Some(v) = o.rounds {
        sc.rounds = v;
    }
    if let Some(v) = o.n_clients {
        sc.n_clients = v;
    }
    if let Some(v) = o.samples_per_client {
        sc.samples_per_client = v;
    }
    if let Some(v) = o.n_test {
        sc.n_test = v;
    }
    if let Some(v) = o.image_size {
        sc.image_size = v;
    }
    if let Some(v) = o.lr {
        sc.lr = v;
    }
    if let Some(v) = o.batch_size {
        sc.batch_size = v;
    }
    if let Some(v) = o.sign_delta {
        sc.sign_delta = v;
    }
    if let Some(v) = o.forgotten_join_round {
        sc.forgotten_join_round = v;
    }
    match o.attack.as_deref() {
        Some("label_flip") => sc.attack = Some(Attack::LabelFlip(LabelFlip::paper_default())),
        Some("backdoor") => sc.attack = Some(Attack::Backdoor(Backdoor::paper_default(0.5))),
        _ => {}
    }
    if let Some(v) = o.malicious_fraction {
        sc.malicious_fraction = v;
    }
    if let Some(v) = o.non_iid_alpha {
        sc.non_iid_alpha = Some(v);
    }
    if let Some(v) = o.departing_fraction {
        sc.departing_fraction = v;
    }
    if let Some(v) = o.departure_round {
        sc.departure_round = v;
    }
    if let Some(v) = o.tree_fanout {
        sc.tree_fanout = Some(v);
    }
    if let Some(v) = o.sample_frac {
        sc.sample_frac = Some(v);
    }
    // Full gradients are needed by the full-gradient baselines and the
    // re-quantisation knob; table1_row forces them on too.
    if plan.methods.contains(&Method::FedRecover)
        || plan.methods.contains(&Method::FedRecovery)
        || o.requantize_delta.is_some()
    {
        sc.keep_full_gradients = true;
    }
    sc
}

/// The "ours" recovery configuration for a plan: the calibrated paper
/// defaults of [`ours_config`] with the row's recovery knobs applied.
fn recovery_cfg(plan: &TrialPlan, history: &HistoryStore, lr: f32) -> RecoveryConfig {
    let mut cfg = ours_config(history, lr);
    if let Some(l) = plan.overrides.clip_threshold {
        cfg = cfg.clip_threshold(l);
    }
    if plan.overrides.hessian_correction == Some(false) {
        cfg = cfg.without_hessian();
    }
    if let Some(s) = plan.overrides.buffer_size {
        cfg = cfg.buffer_size(s);
    }
    if let Some(r) = plan.overrides.pair_refresh_interval {
        cfg = cfg.pair_refresh_interval(r);
    }
    cfg
}

/// A deterministic, allocation-light client for the loopback transport
/// check (the trial times nothing, so no pacing).
struct WireClient {
    id: usize,
}

impl Client for WireClient {
    fn id(&self) -> usize {
        self.id
    }

    fn weight(&self) -> f32 {
        1.0
    }

    fn gradient(&mut self, params: &[f32], round: usize) -> Vec<f32> {
        let bias = (self.id * 131 + round) as f32 * 1e-3;
        params.iter().map(|p| p * 1e-2 + bias).collect()
    }
}

/// One sign-mode loopback round at the scenario's model dimension and
/// fleet size; panics unless wire bytes reconcile exactly with
/// [`round_bytes`]. Returns `(tx_payload, rx_payload)`.
fn loopback_check(dim: usize, clients: usize) -> (u64, u64) {
    let rounds = 1usize;
    let cfg = NetConfig::new(NetAddr::parse("tcp:127.0.0.1:0"), clients)
        .with_mode(UploadMode::Sign2Bit)
        .with_deadline(Duration::from_secs(30));
    let mut net = NetServer::bind(cfg).expect("bind loopback");
    let addr = net.local_addr().clone();
    let vehicles: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let vcfg = VehicleConfig::new(addr, 7).with_sign_uploads(1e-3);
                NetVehicle::new(vcfg, Box::new(WireClient { id }), dim)
                    .run()
                    .expect("vehicle run")
            })
        })
        .collect();
    let mut fl = Server::new(FlConfig::new(rounds, 0.1), vec![0.01; dim]);
    let report = net.serve(&mut fl, rounds).expect("serve");
    for v in vehicles {
        v.join().expect("vehicle thread");
    }
    let (down, _, up_sign) = round_bytes(dim, clients);
    assert_eq!(
        report.tx_payload,
        (rounds * down) as u64,
        "lab loopback: broadcast bytes diverge from comms::round_bytes"
    );
    assert_eq!(
        report.rx_payload,
        (rounds * up_sign) as u64,
        "lab loopback: upload bytes diverge from comms::round_bytes"
    );
    assert_eq!(
        report.duplicates + report.stale + report.torn + report.timeouts,
        0,
        "lab loopback: clean run recorded wire faults"
    );
    (report.tx_payload, report.rx_payload)
}

/// Runs one trial to completion.
///
/// # Panics
///
/// Panics if a pipeline stage fails — matrix rows describe valid
/// configurations, so a failure here is a bug, not an input error.
pub fn run_trial(plan: &TrialPlan) -> TrialReport {
    let before = Snapshot::capture();
    let sc = scenario_of(plan);
    let mut trained = sc.train();
    let forgotten = sc.forgotten_id();

    // The history every replay method reads: the recorded one, or its
    // re-quantisation at the row's δ (the Fig. 3 sweep knob).
    let requant = plan
        .overrides
        .requantize_delta
        .map(|d| trained.history.requantized(&trained.full_store, d));
    let history = requant.as_ref().unwrap_or(&trained.history);

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    let mut digests: BTreeMap<String, String> = BTreeMap::new();

    // Every method whose parameters are needed: scored methods plus any
    // method an eval column points at.
    let mut wanted: Vec<Method> = plan.methods.clone();
    for e in &plan.evals {
        if !wanted.contains(&e.method) {
            wanted.push(e.method);
        }
    }

    // Parameter vectors per method, computed in table1_row's order so a
    // lab trial is bitwise-identical to the retired exp_* paths.
    let mut params: BTreeMap<Method, Vec<f32>> = BTreeMap::new();

    if wanted.contains(&Method::Original) {
        params.insert(Method::Original, trained.final_params.clone());
    }
    if wanted.contains(&Method::Unlearned) {
        let bt = backtrack_set(history, &[forgotten]).expect("backtrack");
        params.insert(Method::Unlearned, bt.params);
    }
    if wanted.contains(&Method::Ours) {
        let cfg = recovery_cfg(plan, history, sc.lr);
        let out = if plan.overrides.via_jobs == Some(true) {
            let mut svc = JobService::new(JobConfig::new(cfg));
            let id = svc.submit(history, &[forgotten]);
            svc.run_to_completion(&mut NoOracle);
            metrics.insert("jobs.used".into(), 1.0);
            svc.take_outcome(id)
                .expect("job finished")
                .expect("ours (jobs)")
        } else {
            Unlearner::new(history, cfg)
                .forget_and_recover(forgotten)
                .expect("ours")
        };
        metrics.insert("replay.rounds".into(), out.rounds_replayed as f64);
        metrics.insert("replay.fallbacks".into(), out.estimator_fallbacks as f64);
        params.insert(Method::Ours, out.params);
    }
    if wanted.contains(&Method::FedRecover) {
        let cfg = FedRecoverConfig::new(sc.lr);
        let refs: Vec<&mut Box<dyn Client>> = trained
            .clients
            .iter_mut()
            .filter(|c| c.id() != forgotten)
            .collect();
        let mut oracle = ClientPoolOracle::new(refs);
        let out = fedrecover(history, &trained.full_store, forgotten, &cfg, &mut oracle)
            .expect("fedrecover");
        params.insert(Method::FedRecover, out.params);
    }
    if wanted.contains(&Method::FedRecovery) {
        let cfg = FedRecoveryConfig::new(sc.lr).noise_sigma(1e-3);
        let out = fedrecovery(history, &trained.full_store, forgotten, &cfg, sc.seed)
            .expect("fedrecovery");
        params.insert(Method::FedRecovery, out.params);
    }
    if wanted.contains(&Method::Retraining) {
        let init = trained.spec.build(sc.seed.wrapping_add(1)).params();
        let mut clients = sc.build_clients();
        let p = retrain(
            init,
            sc.fl_config(),
            &mut clients,
            &trained.schedule,
            forgotten,
        );
        params.insert(Method::Retraining, p);
    }
    if wanted.contains(&Method::SignReplay) {
        let cfg = recovery_cfg(plan, history, sc.lr).without_hessian();
        let out = recover_set(history, &[forgotten], &cfg, &mut NoOracle, |_, _| {})
            .expect("sign replay");
        params.insert(Method::SignReplay, out.params);
    }
    if wanted.contains(&Method::Not) {
        let out = not_unlearn(
            trained.spec,
            &trained.final_params,
            history,
            &[forgotten],
            None,
        )
        .expect("not");
        params.insert(Method::Not, out.params);
    }
    if wanted.contains(&Method::NotFinetune) {
        let cfg = recovery_cfg(plan, history, sc.lr);
        let out = not_unlearn(
            trained.spec,
            &trained.final_params,
            history,
            &[forgotten],
            Some(&cfg),
        )
        .expect("not finetune");
        metrics.insert("not.finetune_rounds".into(), out.finetune_rounds as f64);
        params.insert(Method::NotFinetune, out.params);
    }

    // Accuracy columns for the scored methods.
    for m in &plan.methods {
        let p = &params[m];
        metrics.insert(
            format!("acc.{}", m.name()),
            f64::from(trained.accuracy_of(p)),
        );
    }

    // The heterogeneity diagnostic table1_row reports.
    let agreement = {
        let curve = fuiov_eval::sign_agreement_curve(&trained.history);
        let vals: Vec<f32> = curve.iter().map(|&(_, a)| a).collect();
        fuiov_tensor::stats::mean(&vals)
    };
    metrics.insert("sign_agreement".into(), f64::from(agreement));

    // Eval columns: MIA advantage and reconstruction error against each
    // requested method's parameters.
    if !plan.evals.is_empty() {
        let member = sc.client_shard(forgotten);
        let mut model = trained.spec.build(0);
        for e in &plan.evals {
            let p = &params[&e.method];
            match e.kind {
                EvalKind::Mia => {
                    let adv = membership_advantage(&mut model, p, &member, &trained.test);
                    metrics.insert(e.metric(), f64::from(adv));
                }
                EvalKind::Recon => {
                    // `None` (no comparable coordinates) is omitted, not
                    // reported as a fake number.
                    if let Some(err) =
                        reconstruction_error(history, forgotten, &trained.final_params, p)
                    {
                        metrics.insert(e.metric(), f64::from(err));
                    }
                }
            }
        }
    }

    // Transport knob: a sign-mode socket round at this scenario's shape,
    // byte-reconciled against the comms model.
    if plan.overrides.transport.as_deref() == Some("loopback") {
        let (tx, rx) = loopback_check(trained.final_params.len(), sc.n_clients);
        metrics.insert("net.tx_payload_bytes".into(), tx as f64);
        metrics.insert("net.rx_payload_bytes".into(), rx as f64);
    }

    digests.insert(
        "final".into(),
        format!("{:016x}", digest_params(&trained.final_params)),
    );
    for (m, p) in &params {
        digests.insert(m.name().to_string(), format!("{:016x}", digest_params(p)));
    }

    let report = fuiov_obs::RunReport::since(&before);
    TrialReport {
        row_id: plan.row_id.clone(),
        variant: plan.variant.clone(),
        task: plan.task.name().to_string(),
        seed: plan.seed,
        repeat: plan.repeat,
        metrics,
        digests,
        counters: report.snapshot.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::parse_matrix;
    use crate::plan::{expand, PlanFilter};

    fn tiny_plan(src: &str) -> TrialPlan {
        let rows = parse_matrix(src).unwrap();
        expand(&rows, &PlanFilter::default()).remove(0)
    }

    #[test]
    fn report_jsonl_round_trips() {
        let r = TrialReport {
            row_id: "a".into(),
            variant: "base".into(),
            task: "tiny".into(),
            seed: 7,
            repeat: 0,
            metrics: [("acc.ours".to_string(), 0.5f64)].into_iter().collect(),
            digests: [("ours".to_string(), "00ff".to_string())]
                .into_iter()
                .collect(),
            counters: [("replay.rounds".to_string(), 10u64)].into_iter().collect(),
        };
        let line = r.to_jsonl();
        assert_eq!(TrialReport::parse_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn scenario_overrides_apply() {
        let plan = tiny_plan(concat!(
            r#"{"id":"t","task":"tiny","overrides":{"rounds":5,"n_clients":4,"lr":0.2,"#,
            r#""tree_fanout":2,"sample_frac":0.5,"attack":"label_flip","malicious_fraction":0.25}}"#
        ));
        let sc = scenario_of(&plan);
        assert_eq!(sc.rounds, 5);
        assert_eq!(sc.n_clients, 4);
        assert_eq!(sc.lr, 0.2);
        assert_eq!(sc.tree_fanout, Some(2));
        assert_eq!(sc.sample_frac, Some(0.5));
        assert!(matches!(sc.attack, Some(Attack::LabelFlip(_))));
    }

    #[test]
    fn tiny_trial_runs_and_reports() {
        let plan = tiny_plan(concat!(
            r#"{"id":"t","task":"tiny","methods":["original","unlearned","ours"],"#,
            r#""evals":["mia.ours","recon.ours"],"overrides":{"rounds":8}}"#
        ));
        let r = run_trial(&plan);
        assert!(r.metrics.contains_key("acc.original"));
        assert!(r.metrics.contains_key("acc.ours"));
        assert!(r.metrics.contains_key("mia.ours"));
        assert!(r.metrics.contains_key("recon.ours"));
        assert!(r.metrics.contains_key("replay.rounds"));
        assert!(r.digests.contains_key("ours"));
        let acc = r.metrics["acc.ours"];
        assert!((0.0..=1.0).contains(&acc), "accuracy out of range: {acc}");
        let mia = r.metrics["mia.ours"];
        assert!((-1.0..=1.0).contains(&mia), "advantage out of range: {mia}");
    }

    #[test]
    fn via_jobs_matches_direct_recovery_bitwise() {
        let direct = run_trial(&tiny_plan(
            r#"{"id":"d","task":"tiny","methods":["ours"],"overrides":{"rounds":8}}"#,
        ));
        let jobs = run_trial(&tiny_plan(
            r#"{"id":"j","task":"tiny","methods":["ours"],"overrides":{"rounds":8,"via_jobs":true}}"#,
        ));
        assert_eq!(direct.digests["ours"], jobs.digests["ours"]);
        assert_eq!(jobs.metrics["jobs.used"], 1.0);
    }

    #[test]
    fn trials_are_deterministic() {
        let plan = tiny_plan(
            r#"{"id":"t","task":"tiny","methods":["ours","not"],"overrides":{"rounds":8}}"#,
        );
        let a = run_trial(&plan);
        let b = run_trial(&plan);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.digests, b.digests);
    }
}
