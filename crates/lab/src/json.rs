//! A minimal JSON value model and recursive-descent parser.
//!
//! The build container vendors no `serde`, and the scenario matrix needs
//! *strict* parsing anyway (unknown fields are hard errors, see
//! [`crate::matrix`]), so the lab carries its own ~200-line parser:
//! standard JSON — objects, arrays, strings with escapes, numbers, the
//! three literals — into a [`Json`] tree that preserves object key
//! *insertion order* (round-tripping a matrix row must not reshuffle
//! it). Rendering uses Rust's shortest-round-trip `f64` formatting, so
//! `parse → render → parse` is lossless for every value the lab emits.

use std::fmt;

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are a parse error).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed (byte offset into the source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value list, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks a key up in an `Obj` (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Compact single-line rendering (the inverse of [`Json::parse`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; the lab never emits them, but render
        // defensively rather than producing unparseable output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Lone surrogates map to U+FFFD; the matrix
                            // format never needs astral characters.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_and_preserves_key_order() {
        let v = Json::parse(r#"{"z": [1, {"a": false}], "a": "x"}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_duplicate_keys_and_trailing_garbage() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,").is_err());
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"id":"t1","seed":42,"lr":0.02,"x":[1,2.5,null,true],"s":"q\"uote"}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // And rendering is a fixed point.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
