//! # fuiov-lab — scenario lab
//!
//! Declarative experiment matrix with a CI-gated trial runner. The lab
//! replaces the one-off `exp_table1` / `exp_iot` binaries with a single
//! data-driven pipeline:
//!
//! 1. **matrix** — `scenarios.jsonl` is parsed into [`ScenarioRow`]s
//!    (strict: unknown fields, duplicate ids, and type mismatches are
//!    typed errors, not silently-ignored YAML soup);
//! 2. **plan** — rows expand deterministically into [`TrialPlan`]s
//!    (tasks × variants × repeats, seeded), pinned by an FNV-1a
//!    fingerprint so "same matrix → same plans" is checkable in CI;
//! 3. **runner** — each plan trains once and scores every requested
//!    method through the existing facade (server knobs, jobs service,
//!    loopback transport all addressable as scenario fields), emitting
//!    one [`TrialReport`] JSON-line per trial;
//! 4. **aggregate** — trials fold into Table-I-style comparison tables
//!    (mean ± spread across seeds) and machine-readable shape-claim
//!    verdicts that gate CI;
//! 5. **bench_gate** — recorded `BENCH_*.json` artifacts are re-checked
//!    against their schemas and byte-accounting invariants.
//!
//! The `lab` binary (`cargo run -p fuiov-lab --bin lab`) fronts all of
//! this; `scripts/tier1.sh lab` runs the deterministic `--smoke` slice.

pub mod aggregate;
pub mod bench_gate;
pub mod json;
pub mod matrix;
pub mod plan;
pub mod runner;

pub use aggregate::{aggregate, check_asserts, outcomes_to_json, render_table, Aggregate};
pub use bench_gate::{check_micro, check_net, BenchGateError};
pub use json::{Json, JsonError};
pub use matrix::{parse_matrix, render_matrix, MatrixError, ScenarioRow};
pub use plan::{expand, plan_fingerprint, PlanFilter, TrialPlan};
pub use runner::{run_trial, TrialReport};
