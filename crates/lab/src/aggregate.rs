//! Aggregation: trials → Table-I-style comparison tables + CI-gated
//! shape-claim verdicts.
//!
//! Trials are grouped by `(row, variant)`; each metric column gets its
//! mean and spread (min..max) across the group's seeds. A row's
//! [`ShapeAssert`]s are then evaluated against the aggregated means and
//! reported as machine-readable pass/fail outcomes — the "expected
//! shape:" footnotes of the old `exp_*` binaries, promoted to a gate.

use crate::json::Json;
use crate::matrix::{AssertOp, Operand, ScenarioRow};
use crate::runner::TrialReport;
use fuiov_eval::table::Table;
use std::collections::BTreeMap;

/// Mean and range of one metric across a group's trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Observation count.
    pub n: usize,
}

impl Stats {
    /// `max - min` — the cross-seed spread.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// All trials of one `(row, variant)` cell, aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Row id.
    pub row_id: String,
    /// Variant label.
    pub variant: String,
    /// Task name (from the trials).
    pub task: String,
    /// Trial count.
    pub n: usize,
    /// Per-metric statistics.
    pub metrics: BTreeMap<String, Stats>,
}

/// Groups trials by `(row, variant)` (insertion order preserved) and
/// computes per-metric stats.
pub fn aggregate(reports: &[TrialReport]) -> Vec<Aggregate> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut groups: BTreeMap<(String, String), Vec<&TrialReport>> = BTreeMap::new();
    for r in reports {
        let key = (r.row_id.clone(), r.variant.clone());
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(r);
    }
    order
        .into_iter()
        .map(|key| {
            let trials = &groups[&key];
            let mut metrics: BTreeMap<String, Stats> = BTreeMap::new();
            for t in trials {
                for (name, &v) in &t.metrics {
                    let s = metrics.entry(name.clone()).or_insert(Stats {
                        mean: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                        n: 0,
                    });
                    s.mean += v;
                    s.min = s.min.min(v);
                    s.max = s.max.max(v);
                    s.n += 1;
                }
            }
            for s in metrics.values_mut() {
                s.mean /= s.n as f64;
            }
            Aggregate {
                row_id: key.0,
                variant: key.1,
                task: trials[0].task.clone(),
                n: trials.len(),
                metrics,
            }
        })
        .collect()
}

/// The union of metric names across aggregates, `acc.*` first (Table-I
/// column order), then everything else alphabetically.
pub fn metric_columns(aggs: &[Aggregate]) -> Vec<String> {
    let mut acc: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    // Table-I method order for the acc columns.
    for m in crate::matrix::Method::ALL {
        let name = format!("acc.{}", m.name());
        if aggs.iter().any(|a| a.metrics.contains_key(&name)) {
            acc.push(name);
        }
    }
    for a in aggs {
        for name in a.metrics.keys() {
            if !name.starts_with("acc.") && !rest.contains(name) {
                rest.push(name.clone());
            }
        }
    }
    rest.sort();
    acc.extend(rest);
    acc
}

/// Renders the aggregates as one comparison table: `mean` per metric
/// cell, with the spread appended (`±`) when a cell has several trials.
pub fn render_table(aggs: &[Aggregate]) -> String {
    let columns = metric_columns(aggs);
    let mut headers: Vec<&str> = vec!["row", "variant", "task", "n"];
    for c in &columns {
        headers.push(c.as_str());
    }
    let mut table = Table::new(&headers);
    for a in aggs {
        let mut cells = vec![
            a.row_id.clone(),
            a.variant.clone(),
            a.task.clone(),
            a.n.to_string(),
        ];
        for c in &columns {
            cells.push(match a.metrics.get(c) {
                None => "-".to_string(),
                Some(s) if s.n > 1 => format!("{:.3} ±{:.3}", s.mean, s.spread() / 2.0),
                Some(s) => format!("{:.3}", s.mean),
            });
        }
        table.row(&cells);
    }
    table.to_markdown()
}

/// One evaluated shape claim.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertOutcome {
    /// Row id the claim belongs to.
    pub row_id: String,
    /// Variant the claim was evaluated on.
    pub variant: String,
    /// The claim, human-readable.
    pub expr: String,
    /// Evaluated left-hand mean.
    pub lhs: f64,
    /// Evaluated right-hand value.
    pub rhs: f64,
    /// Did it hold?
    pub pass: bool,
}

fn holds(lhs: f64, op: AssertOp, rhs: f64, tol: f64) -> bool {
    match op {
        AssertOp::Ge => lhs >= rhs - tol,
        AssertOp::Le => lhs <= rhs + tol,
        AssertOp::Gt => lhs > rhs - tol,
        AssertOp::Lt => lhs < rhs + tol,
        AssertOp::Approx => (lhs - rhs).abs() <= tol,
    }
}

/// Evaluates every row's asserts against the aggregated means, once per
/// variant of that row present in `aggs`. A metric missing from the
/// aggregate fails the claim (a typo'd metric name must not silently
/// pass CI).
pub fn check_asserts(rows: &[ScenarioRow], aggs: &[Aggregate]) -> Vec<AssertOutcome> {
    let mut outcomes = Vec::new();
    for row in rows {
        for agg in aggs.iter().filter(|a| a.row_id == row.id) {
            for claim in &row.asserts {
                let lhs = agg.metrics.get(&claim.lhs).map(|s| s.mean);
                let rhs = match &claim.rhs {
                    Operand::Const(c) => Some(*c),
                    Operand::Metric(m) => agg.metrics.get(m).map(|s| s.mean),
                };
                let (pass, lhs, rhs) = match (lhs, rhs) {
                    (Some(l), Some(r)) => (holds(l, claim.op, r, claim.tol), l, r),
                    (l, r) => (false, l.unwrap_or(f64::NAN), r.unwrap_or(f64::NAN)),
                };
                outcomes.push(AssertOutcome {
                    row_id: row.id.clone(),
                    variant: agg.variant.clone(),
                    expr: claim.expr(),
                    lhs,
                    rhs,
                    pass,
                });
            }
        }
    }
    outcomes
}

/// Machine-readable asserts artifact (a JSON array, one object per
/// claim). NaN operands (missing metrics) are rendered as `null`.
pub fn outcomes_to_json(outcomes: &[AssertOutcome]) -> String {
    let num = |v: f64| {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    };
    Json::Arr(
        outcomes
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("row".into(), Json::Str(o.row_id.clone())),
                    ("variant".into(), Json::Str(o.variant.clone())),
                    ("expr".into(), Json::Str(o.expr.clone())),
                    ("lhs".into(), num(o.lhs)),
                    ("rhs".into(), num(o.rhs)),
                    ("pass".into(), Json::Bool(o.pass)),
                ])
            })
            .collect(),
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::parse_matrix;
    use std::collections::BTreeMap;

    fn trial(row: &str, variant: &str, seed: u64, metrics: &[(&str, f64)]) -> TrialReport {
        TrialReport {
            row_id: row.into(),
            variant: variant.into(),
            task: "tiny".into(),
            seed,
            repeat: 0,
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            digests: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn aggregates_mean_and_spread_per_group() {
        let reports = vec![
            trial("a", "base", 1, &[("acc.ours", 0.6)]),
            trial("a", "base", 2, &[("acc.ours", 0.8)]),
            trial("a", "v1", 1, &[("acc.ours", 0.1)]),
        ];
        let aggs = aggregate(&reports);
        assert_eq!(aggs.len(), 2);
        let base = &aggs[0];
        assert_eq!(base.n, 2);
        let s = base.metrics["acc.ours"];
        assert!((s.mean - 0.7).abs() < 1e-12);
        assert!((s.spread() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn asserts_pass_fail_and_flag_missing_metrics() {
        let rows = parse_matrix(concat!(
            r#"{"id":"a","task":"tiny","asserts":["#,
            r#"{"lhs":"acc.retraining","op":">=","rhs":"acc.ours","tol":0.05},"#,
            r#"{"lhs":"acc.ours","op":">","rhs":0.9},"#,
            r#"{"lhs":"acc.typo","op":">=","rhs":0}]}"#
        ))
        .unwrap();
        let reports = vec![trial(
            "a",
            "base",
            1,
            &[("acc.retraining", 0.7), ("acc.ours", 0.72)],
        )];
        let outcomes = check_asserts(&rows, &aggregate(&reports));
        assert_eq!(outcomes.len(), 3);
        // 0.70 >= 0.72 - 0.05 holds.
        assert!(outcomes[0].pass);
        // 0.72 > 0.9 fails.
        assert!(!outcomes[1].pass);
        // Missing metric fails loudly.
        assert!(!outcomes[2].pass);
        let json = outcomes_to_json(&outcomes);
        assert!(json.contains("\"pass\":false"));
        assert!(Json::parse(&json).is_ok());
    }

    #[test]
    fn table_renders_all_columns() {
        let reports = vec![trial(
            "a",
            "base",
            1,
            &[("acc.ours", 0.5), ("mia.ours", 0.02)],
        )];
        let t = render_table(&aggregate(&reports));
        assert!(t.contains("acc.ours"));
        assert!(t.contains("mia.ours"));
        assert!(t.contains("0.500"));
    }
}
