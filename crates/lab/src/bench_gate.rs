//! Bench-regression gate: validates the recorded `BENCH_*.json`
//! artifacts against their schemas and re-checks the invariants the
//! benches asserted when the numbers were recorded.
//!
//! Timings drift with hardware, so the gate never compares nanoseconds.
//! What it *does* pin:
//!
//! - **schema** — every `BENCH_micro.json` epoch carries `meta`,
//!   `speedups`, and `results` with positive `ns_per_iter` and at least
//!   one sample, so a refresh that half-writes the file cannot land;
//! - **exact byte accounting** — every `BENCH_net.json` row's recorded
//!   payload and overhead bytes must still reconcile with
//!   [`fuiov_fl::comms::round_bytes`] and the FUSG frame cost. These
//!   were runtime asserts when the row was recorded; if the comms model
//!   or wire format changes, the recorded rows go stale and this gate —
//!   not a human reading a diff — says so.

use crate::json::Json;
use fuiov_fl::comms::round_bytes;
use fuiov_storage::segment::{HEADER_LEN, TRAILER_LEN};
use std::fmt;

/// Why a bench artifact failed the gate.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchGateError {
    /// The file is not valid JSON.
    BadJson(String),
    /// The JSON does not match the artifact's schema.
    Schema(String),
    /// A recorded invariant no longer holds.
    Invariant(String),
}

impl fmt::Display for BenchGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchGateError::BadJson(m) => write!(f, "bad JSON: {m}"),
            BenchGateError::Schema(m) => write!(f, "schema: {m}"),
            BenchGateError::Invariant(m) => write!(f, "invariant: {m}"),
        }
    }
}

impl std::error::Error for BenchGateError {}

/// Summary of a valid `BENCH_micro.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroSummary {
    /// Recorded epochs.
    pub epochs: usize,
    /// Benchmarks in the newest epoch.
    pub benchmarks: usize,
}

/// Validates `BENCH_micro.json` (an epoch array).
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn check_micro(src: &str) -> Result<MicroSummary, BenchGateError> {
    let v = Json::parse(src).map_err(|e| BenchGateError::BadJson(e.to_string()))?;
    let epochs = v
        .as_arr()
        .ok_or_else(|| BenchGateError::Schema("top level must be an epoch array".into()))?;
    if epochs.is_empty() {
        return Err(BenchGateError::Schema("no epochs recorded".into()));
    }
    let mut last_benchmarks = 0;
    for (i, epoch) in epochs.iter().enumerate() {
        let at = |msg: &str| BenchGateError::Schema(format!("epoch {i}: {msg}"));
        epoch
            .get("meta")
            .and_then(Json::as_obj)
            .ok_or_else(|| at("missing 'meta' object"))?;
        let speedups = epoch
            .get("speedups")
            .and_then(Json::as_obj)
            .ok_or_else(|| at("missing 'speedups' object"))?;
        for (name, s) in speedups {
            let s = s
                .as_f64()
                .ok_or_else(|| at(&format!("speedup '{name}' not a number")))?;
            if !s.is_finite() || s <= 0.0 {
                return Err(BenchGateError::Invariant(format!(
                    "epoch {i}: speedup '{name}' = {s} (must be finite and positive)"
                )));
            }
        }
        let results = epoch
            .get("results")
            .and_then(Json::as_obj)
            .ok_or_else(|| at("missing 'results' object"))?;
        if results.is_empty() {
            return Err(at("empty 'results'"));
        }
        for (name, r) in results {
            let ns = r
                .get("ns_per_iter")
                .and_then(Json::as_f64)
                .ok_or_else(|| at(&format!("'{name}' missing ns_per_iter")))?;
            if !ns.is_finite() || ns <= 0.0 {
                return Err(BenchGateError::Invariant(format!(
                    "epoch {i}: '{name}' ns_per_iter = {ns} (must be finite and positive)"
                )));
            }
            let samples = r
                .get("samples")
                .and_then(Json::as_u64)
                .ok_or_else(|| at(&format!("'{name}' missing samples")))?;
            if samples == 0 {
                return Err(BenchGateError::Invariant(format!(
                    "epoch {i}: '{name}' has zero samples"
                )));
            }
        }
        last_benchmarks = results.len();
    }
    Ok(MicroSummary {
        epochs: epochs.len(),
        benchmarks: last_benchmarks,
    })
}

/// Summary of a valid `BENCH_net.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSummary {
    /// Reconciled rows.
    pub rows: usize,
}

/// Bytes of FUSG framing per record (header + FNV trailer).
const FRAME_OVERHEAD: u64 = (HEADER_LEN + TRAILER_LEN) as u64;

/// Validates `BENCH_net.json` and re-checks every row's exact byte
/// reconciliation against the comms model.
///
/// # Errors
///
/// Returns the first schema violation or stale invariant found.
pub fn check_net(src: &str) -> Result<NetSummary, BenchGateError> {
    let v = Json::parse(src).map_err(|e| BenchGateError::BadJson(e.to_string()))?;
    v.get("meta")
        .and_then(Json::as_obj)
        .ok_or_else(|| BenchGateError::Schema("missing 'meta' object".into()))?;
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| BenchGateError::Schema("missing 'rows' array".into()))?;
    if rows.is_empty() {
        return Err(BenchGateError::Schema("no rows recorded".into()));
    }
    for (i, row) in rows.iter().enumerate() {
        let uint = |k: &str| -> Result<u64, BenchGateError> {
            row.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| BenchGateError::Schema(format!("row {i}: missing uint '{k}'")))
        };
        let clients = uint("clients")?;
        let dim = uint("dim")?;
        let rounds = uint("rounds")?;
        let mode = row
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| BenchGateError::Schema(format!("row {i}: missing 'mode'")))?;
        let (down, up_full, up_sign) = round_bytes(dim as usize, clients as usize);
        let up = match mode {
            "full-f32" => up_full,
            "sign-2bit" => up_sign,
            other => {
                return Err(BenchGateError::Schema(format!(
                    "row {i}: unknown mode '{other}'"
                )))
            }
        };
        let expect = |k: &str, want: u64| -> Result<(), BenchGateError> {
            let got = uint(k)?;
            if got != want {
                return Err(BenchGateError::Invariant(format!(
                    "row {i} ({clients} clients, dim {dim}, {mode}): {k} = {got}, \
                     comms model says {want}"
                )));
            }
            Ok(())
        };
        expect("tx_payload_bytes", down as u64 * rounds)?;
        expect("rx_payload_bytes", up as u64 * rounds)?;
        expect("tx_overhead_bytes", FRAME_OVERHEAD * clients * rounds)?;
        expect("rx_overhead_bytes", FRAME_OVERHEAD * clients * rounds)?;
        let wall = uint("wall_ns")?;
        if wall == 0 {
            return Err(BenchGateError::Invariant(format!(
                "row {i}: wall_ns is zero"
            )));
        }
    }
    Ok(NetSummary { rows: rows.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICRO_OK: &str = concat!(
        r#"[{"meta":{"date":"2026-08-05"},"speedups":{"gemm":2.5},"#,
        r#""results":{"gemm/256":{"ns_per_iter":1000.5,"samples":20}}}]"#
    );

    #[test]
    fn micro_accepts_wellformed_epochs() {
        let s = check_micro(MICRO_OK).unwrap();
        assert_eq!(s.epochs, 1);
        assert_eq!(s.benchmarks, 1);
    }

    #[test]
    fn micro_rejects_schema_and_invariant_violations() {
        assert!(matches!(
            check_micro("{}").unwrap_err(),
            BenchGateError::Schema(_)
        ));
        assert!(matches!(
            check_micro("[]").unwrap_err(),
            BenchGateError::Schema(_)
        ));
        let zero_ns = MICRO_OK.replace("1000.5", "0");
        assert!(matches!(
            check_micro(&zero_ns).unwrap_err(),
            BenchGateError::Invariant(_)
        ));
        let zero_samples = MICRO_OK.replace("\"samples\":20", "\"samples\":0");
        assert!(matches!(
            check_micro(&zero_samples).unwrap_err(),
            BenchGateError::Invariant(_)
        ));
    }

    fn net_row(tx: u64, rx: u64, overhead: u64) -> String {
        format!(
            concat!(
                r#"{{"meta":{{"experiment":"exp_net"}},"rows":[{{"clients":2,"dim":100,"#,
                r#""mode":"sign-2bit","hz":0,"rounds":3,"wall_ns":5,"tx_payload_bytes":{},"#,
                r#""rx_payload_bytes":{},"tx_overhead_bytes":{},"rx_overhead_bytes":{}}}]}}"#
            ),
            tx, rx, overhead, overhead
        )
    }

    #[test]
    fn net_reconciles_exact_bytes() {
        // dim 100, 2 clients, 3 rounds: down = 4·100·2·3 = 2400,
        // up(sign) = ⌈100/4⌉·2·3 = 150, overhead = 35·2·3 = 210.
        let ok = net_row(2400, 150, 210);
        assert_eq!(check_net(&ok).unwrap(), NetSummary { rows: 1 });
    }

    #[test]
    fn net_rejects_regressed_byte_accounting() {
        for bad in [
            net_row(2401, 150, 210),
            net_row(2400, 151, 210),
            net_row(2400, 150, 209),
        ] {
            assert!(
                matches!(check_net(&bad).unwrap_err(), BenchGateError::Invariant(_)),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn net_gate_accepts_the_recorded_artifact_shape() {
        // A full-f32 row mirroring BENCH_net.json's first recorded row.
        let src = concat!(
            r#"{"meta":{"experiment":"exp_net"},"rows":[{"clients":2,"dim":13692,"#,
            r#""mode":"full-f32","hz":0,"rounds":3,"wall_ns":2139924,"#,
            r#""tx_payload_bytes":328608,"rx_payload_bytes":328608,"#,
            r#""tx_overhead_bytes":210,"rx_overhead_bytes":210}]}"#
        );
        assert!(check_net(src).is_ok());
    }
}
