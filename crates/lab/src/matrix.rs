//! The declarative scenario matrix: `scenarios.jsonl`.
//!
//! One JSON object per line = one **row** of the experiment matrix. A row
//! names a base task, a seed, repeat count, the methods to compare, the
//! eval columns to attach, parameter overrides, named variants (each a
//! further override set), and machine-checkable **shape assertions** over
//! the aggregated results (Table I's "retraining ≥ fedrecover ≥ ours ≥
//! fedrecovery" ordering, CI-gated instead of eyeballed).
//!
//! Parsing is *strict*: unknown fields, duplicate row ids, wrong types,
//! and malformed asserts are typed errors ([`MatrixError`]), not silent
//! defaults — a typo'd knob must fail the matrix, never quietly run the
//! base configuration. Blank lines and `#`-prefixed comment lines are
//! skipped.

use crate::json::Json;
use std::fmt;

/// Why the matrix failed to parse. Line numbers are 1-based.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The line is not valid JSON.
    BadJson {
        /// 1-based source line.
        line: usize,
        /// Parser message.
        msg: String,
    },
    /// The line parsed but is not a JSON object.
    NotAnObject {
        /// 1-based source line.
        line: usize,
    },
    /// A field name the schema does not know (typo guard).
    UnknownField {
        /// 1-based source line.
        line: usize,
        /// The offending key (dotted for nested contexts).
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// 1-based source line.
        line: usize,
        /// The absent key.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    TypeMismatch {
        /// 1-based source line.
        line: usize,
        /// The offending key.
        field: String,
        /// What the schema wanted.
        expected: &'static str,
    },
    /// Two rows share an id.
    DuplicateId {
        /// 1-based source line of the second occurrence.
        line: usize,
        /// The repeated id.
        id: String,
    },
    /// `task` is not one of the known scenario constructors.
    UnknownTask {
        /// 1-based source line.
        line: usize,
        /// The unknown task name.
        task: String,
    },
    /// A `methods` entry is not a known method.
    UnknownMethod {
        /// 1-based source line.
        line: usize,
        /// The unknown method name.
        method: String,
    },
    /// An `evals` entry is not `kind.method` with known parts.
    UnknownEval {
        /// 1-based source line.
        line: usize,
        /// The unknown eval spec.
        eval: String,
    },
    /// An assert clause is malformed.
    BadAssert {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::BadJson { line, msg } => write!(f, "line {line}: bad JSON: {msg}"),
            MatrixError::NotAnObject { line } => {
                write!(f, "line {line}: each matrix line must be a JSON object")
            }
            MatrixError::UnknownField { line, field } => {
                write!(f, "line {line}: unknown field '{field}'")
            }
            MatrixError::MissingField { line, field } => {
                write!(f, "line {line}: missing required field '{field}'")
            }
            MatrixError::TypeMismatch {
                line,
                field,
                expected,
            } => write!(f, "line {line}: field '{field}' must be {expected}"),
            MatrixError::DuplicateId { line, id } => {
                write!(f, "line {line}: duplicate row id '{id}'")
            }
            MatrixError::UnknownTask { line, task } => {
                write!(f, "line {line}: unknown task '{task}'")
            }
            MatrixError::UnknownMethod { line, method } => {
                write!(f, "line {line}: unknown method '{method}'")
            }
            MatrixError::UnknownEval { line, eval } => {
                write!(f, "line {line}: unknown eval '{eval}'")
            }
            MatrixError::BadAssert { line, msg } => {
                write!(f, "line {line}: bad assert: {msg}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// The base scenario a row builds on (a [`fuiov_bench::Scenario`]
/// constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Task {
    /// `Scenario::tiny` — seconds, used by the `--smoke` slice.
    Tiny,
    /// `Scenario::digits` — reduced-scale MNIST substitute.
    Digits,
    /// `Scenario::signs` — reduced-scale GTSRB substitute.
    Signs,
    /// `Scenario::sensors` — the §VI IoT manoeuvre task.
    Sensors,
}

impl Task {
    /// Every task, in canonical order.
    pub const ALL: [Task; 4] = [Task::Tiny, Task::Digits, Task::Signs, Task::Sensors];

    /// The matrix-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            Task::Tiny => "tiny",
            Task::Digits => "digits",
            Task::Signs => "signs",
            Task::Sensors => "sensors",
        }
    }

    fn parse(s: &str) -> Option<Task> {
        Task::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// An unlearning method (or model stage) the runner can score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Method {
    /// The pre-unlearning global model.
    Original,
    /// Right after backtracking (unlearned, unrecovered).
    Unlearned,
    /// Retraining from scratch on the remaining clients.
    Retraining,
    /// FedRecover (full gradients + exact corrections).
    FedRecover,
    /// FedRecovery (residual removal + noise).
    FedRecovery,
    /// The paper's scheme: sign-only replay with the Eq. 6 correction.
    Ours,
    /// Ablation: sign replay without the Hessian correction.
    SignReplay,
    /// NoT weight negation (arXiv 2503.05657), no fine-tuning.
    Not,
    /// NoT negation + sign-replay fine-tune from the stored history.
    NotFinetune,
}

impl Method {
    /// Every method, in canonical (table-column) order.
    pub const ALL: [Method; 9] = [
        Method::Original,
        Method::Unlearned,
        Method::Retraining,
        Method::FedRecover,
        Method::FedRecovery,
        Method::Ours,
        Method::SignReplay,
        Method::Not,
        Method::NotFinetune,
    ];

    /// The matrix-file spelling (also the metric suffix).
    pub fn name(self) -> &'static str {
        match self {
            Method::Original => "original",
            Method::Unlearned => "unlearned",
            Method::Retraining => "retraining",
            Method::FedRecover => "fedrecover",
            Method::FedRecovery => "fedrecovery",
            Method::Ours => "ours",
            Method::SignReplay => "sign_replay",
            Method::Not => "not",
            Method::NotFinetune => "not_finetune",
        }
    }

    fn parse(s: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The Table-I comparison set (a row's default `methods`).
    pub fn table1_set() -> Vec<Method> {
        vec![
            Method::Original,
            Method::Unlearned,
            Method::Retraining,
            Method::FedRecover,
            Method::FedRecovery,
            Method::Ours,
        ]
    }
}

/// What an eval column measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvalKind {
    /// Loss-threshold membership-inference advantage against the
    /// forgotten client's shard (Halimi et al., arXiv 2207.05521).
    Mia,
    /// Gradient-difference reconstruction error against the stored sign
    /// directions ("Verifiably Forgotten?", arXiv 2505.11097).
    Recon,
}

impl EvalKind {
    /// The metric prefix ("mia" / "recon").
    pub fn name(self) -> &'static str {
        match self {
            EvalKind::Mia => "mia",
            EvalKind::Recon => "recon",
        }
    }
}

/// One eval column: a kind applied to a method's output parameters.
/// Spelled `kind.method` in the matrix (e.g. `"mia.ours"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EvalSpec {
    /// What to measure.
    pub kind: EvalKind,
    /// Whose parameters to measure it on.
    pub method: Method,
}

impl EvalSpec {
    /// The metric name this eval reports under (`kind.method`).
    pub fn metric(&self) -> String {
        format!("{}.{}", self.kind.name(), self.method.name())
    }

    fn parse(s: &str) -> Option<EvalSpec> {
        let (kind, method) = s.split_once('.')?;
        let kind = match kind {
            "mia" => EvalKind::Mia,
            "recon" => EvalKind::Recon,
            _ => return None,
        };
        Some(EvalSpec {
            kind,
            method: Method::parse(method)?,
        })
    }
}

/// Scenario and runner knobs a row (or variant) may override. Every
/// field is optional; `None` means "keep the task default". Unknown keys
/// are a [`MatrixError::UnknownField`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Overrides {
    /// Federated rounds `T`.
    pub rounds: Option<usize>,
    /// Number of vehicles.
    pub n_clients: Option<usize>,
    /// Training samples per vehicle.
    pub samples_per_client: Option<usize>,
    /// Held-out test-set size.
    pub n_test: Option<usize>,
    /// Image side length (window length for sensors).
    pub image_size: Option<usize>,
    /// Learning rate `η`.
    pub lr: Option<f32>,
    /// Client mini-batch size.
    pub batch_size: Option<usize>,
    /// Sign threshold `δ`.
    pub sign_delta: Option<f32>,
    /// The forgotten client's pinned join round `F`.
    pub forgotten_join_round: Option<usize>,
    /// Attack: `"label_flip"` or `"backdoor"`.
    pub attack: Option<String>,
    /// Fraction of malicious clients.
    pub malicious_fraction: Option<f32>,
    /// Dirichlet concentration for a non-IID split.
    pub non_iid_alpha: Option<f64>,
    /// Fraction of vehicles departing after `departure_round`.
    pub departing_fraction: Option<f32>,
    /// Round after which departing vehicles leave.
    pub departure_round: Option<usize>,
    /// Hierarchical aggregation fan-out (RSU/edge tree).
    pub tree_fanout: Option<usize>,
    /// Per-round participation fraction.
    pub sample_frac: Option<f64>,
    /// Recovery clip threshold `L`.
    pub clip_threshold: Option<f32>,
    /// `false` disables the Eq. 6 Hessian correction (sign replay).
    pub hessian_correction: Option<bool>,
    /// L-BFGS buffer size `s`.
    pub buffer_size: Option<usize>,
    /// L-BFGS pair refresh interval.
    pub pair_refresh_interval: Option<usize>,
    /// Re-quantise the stored history at this δ before recovery
    /// (requires full gradients; the Fig. 3 sweep knob).
    pub requantize_delta: Option<f32>,
    /// Route "ours" through the concurrent unlearning job service.
    pub via_jobs: Option<bool>,
    /// Transport check: `"loopback"` runs a socket round after training
    /// and reconciles wire bytes against the comms model.
    pub transport: Option<String>,
}

/// `(key, expected-type)` schema used for both parsing and rendering.
const OVERRIDE_KEYS: &[(&str, &str)] = &[
    ("rounds", "uint"),
    ("n_clients", "uint"),
    ("samples_per_client", "uint"),
    ("n_test", "uint"),
    ("image_size", "uint"),
    ("lr", "number"),
    ("batch_size", "uint"),
    ("sign_delta", "number"),
    ("forgotten_join_round", "uint"),
    ("attack", "string"),
    ("malicious_fraction", "number"),
    ("non_iid_alpha", "number"),
    ("departing_fraction", "number"),
    ("departure_round", "uint"),
    ("tree_fanout", "uint"),
    ("sample_frac", "number"),
    ("clip_threshold", "number"),
    ("hessian_correction", "bool"),
    ("buffer_size", "uint"),
    ("pair_refresh_interval", "uint"),
    ("requantize_delta", "number"),
    ("via_jobs", "bool"),
    ("transport", "string"),
];

impl Overrides {
    fn from_json(v: &Json, line: usize, ctx: &str) -> Result<Overrides, MatrixError> {
        let obj = v.as_obj().ok_or(MatrixError::TypeMismatch {
            line,
            field: ctx.to_string(),
            expected: "an object",
        })?;
        let mut o = Overrides::default();
        for (key, val) in obj {
            let mismatch = |expected| MatrixError::TypeMismatch {
                line,
                field: format!("{ctx}.{key}"),
                expected,
            };
            let uint = |val: &Json, e| -> Result<usize, MatrixError> {
                Ok(val.as_u64().ok_or(mismatch(e))? as usize)
            };
            match key.as_str() {
                "rounds" => o.rounds = Some(uint(val, "a non-negative integer")?),
                "n_clients" => o.n_clients = Some(uint(val, "a non-negative integer")?),
                "samples_per_client" => {
                    o.samples_per_client = Some(uint(val, "a non-negative integer")?);
                }
                "n_test" => o.n_test = Some(uint(val, "a non-negative integer")?),
                "image_size" => o.image_size = Some(uint(val, "a non-negative integer")?),
                "lr" => o.lr = Some(val.as_f64().ok_or(mismatch("a number"))? as f32),
                "batch_size" => o.batch_size = Some(uint(val, "a non-negative integer")?),
                "sign_delta" => {
                    o.sign_delta = Some(val.as_f64().ok_or(mismatch("a number"))? as f32);
                }
                "forgotten_join_round" => {
                    o.forgotten_join_round = Some(uint(val, "a non-negative integer")?);
                }
                "attack" => {
                    let s = val.as_str().ok_or(mismatch("a string"))?;
                    if s != "label_flip" && s != "backdoor" {
                        return Err(MatrixError::TypeMismatch {
                            line,
                            field: format!("{ctx}.attack"),
                            expected: "\"label_flip\" or \"backdoor\"",
                        });
                    }
                    o.attack = Some(s.to_string());
                }
                "malicious_fraction" => {
                    o.malicious_fraction = Some(val.as_f64().ok_or(mismatch("a number"))? as f32);
                }
                "non_iid_alpha" => {
                    o.non_iid_alpha = Some(val.as_f64().ok_or(mismatch("a number"))?);
                }
                "departing_fraction" => {
                    o.departing_fraction = Some(val.as_f64().ok_or(mismatch("a number"))? as f32);
                }
                "departure_round" => o.departure_round = Some(uint(val, "a non-negative integer")?),
                "tree_fanout" => o.tree_fanout = Some(uint(val, "a non-negative integer")?),
                "sample_frac" => o.sample_frac = Some(val.as_f64().ok_or(mismatch("a number"))?),
                "clip_threshold" => {
                    o.clip_threshold = Some(val.as_f64().ok_or(mismatch("a number"))? as f32);
                }
                "hessian_correction" => {
                    o.hessian_correction = Some(val.as_bool().ok_or(mismatch("a boolean"))?);
                }
                "buffer_size" => o.buffer_size = Some(uint(val, "a non-negative integer")?),
                "pair_refresh_interval" => {
                    o.pair_refresh_interval = Some(uint(val, "a non-negative integer")?);
                }
                "requantize_delta" => {
                    o.requantize_delta = Some(val.as_f64().ok_or(mismatch("a number"))? as f32);
                }
                "via_jobs" => o.via_jobs = Some(val.as_bool().ok_or(mismatch("a boolean"))?),
                "transport" => {
                    let s = val.as_str().ok_or(mismatch("a string"))?;
                    if s != "loopback" {
                        return Err(MatrixError::TypeMismatch {
                            line,
                            field: format!("{ctx}.transport"),
                            expected: "\"loopback\"",
                        });
                    }
                    o.transport = Some(s.to_string());
                }
                _ => {
                    return Err(MatrixError::UnknownField {
                        line,
                        field: format!("{ctx}.{key}"),
                    })
                }
            }
        }
        Ok(o)
    }

    /// Renders the set fields back to a JSON object in canonical
    /// ([`OVERRIDE_KEYS`]) order.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut push_uint = |k: &str, v: Option<usize>| {
            if let Some(v) = v {
                pairs.push((k.to_string(), Json::Num(v as f64)));
            }
        };
        push_uint("rounds", self.rounds);
        push_uint("n_clients", self.n_clients);
        push_uint("samples_per_client", self.samples_per_client);
        push_uint("n_test", self.n_test);
        push_uint("image_size", self.image_size);
        if let Some(v) = self.lr {
            pairs.push(("lr".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.batch_size {
            pairs.push(("batch_size".into(), Json::Num(v as f64)));
        }
        if let Some(v) = self.sign_delta {
            pairs.push(("sign_delta".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.forgotten_join_round {
            pairs.push(("forgotten_join_round".into(), Json::Num(v as f64)));
        }
        if let Some(v) = &self.attack {
            pairs.push(("attack".into(), Json::Str(v.clone())));
        }
        if let Some(v) = self.malicious_fraction {
            pairs.push(("malicious_fraction".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.non_iid_alpha {
            pairs.push(("non_iid_alpha".into(), Json::Num(v)));
        }
        if let Some(v) = self.departing_fraction {
            pairs.push(("departing_fraction".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.departure_round {
            pairs.push(("departure_round".into(), Json::Num(v as f64)));
        }
        if let Some(v) = self.tree_fanout {
            pairs.push(("tree_fanout".into(), Json::Num(v as f64)));
        }
        if let Some(v) = self.sample_frac {
            pairs.push(("sample_frac".into(), Json::Num(v)));
        }
        if let Some(v) = self.clip_threshold {
            pairs.push(("clip_threshold".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.hessian_correction {
            pairs.push(("hessian_correction".into(), Json::Bool(v)));
        }
        if let Some(v) = self.buffer_size {
            pairs.push(("buffer_size".into(), Json::Num(v as f64)));
        }
        if let Some(v) = self.pair_refresh_interval {
            pairs.push(("pair_refresh_interval".into(), Json::Num(v as f64)));
        }
        if let Some(v) = self.requantize_delta {
            pairs.push(("requantize_delta".into(), Json::Num(f64::from(v))));
        }
        if let Some(v) = self.via_jobs {
            pairs.push(("via_jobs".into(), Json::Bool(v)));
        }
        if let Some(v) = &self.transport {
            pairs.push(("transport".into(), Json::Str(v.clone())));
        }
        Json::Obj(pairs)
    }

    /// This override set with `other`'s set fields layered on top
    /// (variant overrides win over row overrides).
    pub fn merged(&self, other: &Overrides) -> Overrides {
        macro_rules! pick {
            ($field:ident) => {
                other.$field.clone().or_else(|| self.$field.clone())
            };
        }
        Overrides {
            rounds: pick!(rounds),
            n_clients: pick!(n_clients),
            samples_per_client: pick!(samples_per_client),
            n_test: pick!(n_test),
            image_size: pick!(image_size),
            lr: pick!(lr),
            batch_size: pick!(batch_size),
            sign_delta: pick!(sign_delta),
            forgotten_join_round: pick!(forgotten_join_round),
            attack: pick!(attack),
            malicious_fraction: pick!(malicious_fraction),
            non_iid_alpha: pick!(non_iid_alpha),
            departing_fraction: pick!(departing_fraction),
            departure_round: pick!(departure_round),
            tree_fanout: pick!(tree_fanout),
            sample_frac: pick!(sample_frac),
            clip_threshold: pick!(clip_threshold),
            hessian_correction: pick!(hessian_correction),
            buffer_size: pick!(buffer_size),
            pair_refresh_interval: pick!(pair_refresh_interval),
            requantize_delta: pick!(requantize_delta),
            via_jobs: pick!(via_jobs),
            transport: pick!(transport),
        }
    }

    /// The names of every override key the schema knows.
    pub fn known_keys() -> impl Iterator<Item = &'static str> {
        OVERRIDE_KEYS.iter().map(|&(k, _)| k)
    }
}

/// A named variant: the row re-run with extra overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Variant label (unique within the row).
    pub name: String,
    /// Overrides layered on top of the row's.
    pub overrides: Overrides,
}

/// Comparison operator of a shape assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertOp {
    /// `lhs >= rhs - tol`.
    Ge,
    /// `lhs <= rhs + tol`.
    Le,
    /// `lhs > rhs - tol`.
    Gt,
    /// `lhs < rhs + tol`.
    Lt,
    /// `|lhs - rhs| <= tol`.
    Approx,
}

impl AssertOp {
    /// The matrix-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            AssertOp::Ge => ">=",
            AssertOp::Le => "<=",
            AssertOp::Gt => ">",
            AssertOp::Lt => "<",
            AssertOp::Approx => "~=",
        }
    }

    fn parse(s: &str) -> Option<AssertOp> {
        match s {
            ">=" => Some(AssertOp::Ge),
            "<=" => Some(AssertOp::Le),
            ">" => Some(AssertOp::Gt),
            "<" => Some(AssertOp::Lt),
            "~=" => Some(AssertOp::Approx),
            _ => None,
        }
    }
}

/// Right-hand side of an assertion: another metric or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Mean of a metric column (e.g. `acc.ours`).
    Metric(String),
    /// A literal number.
    Const(f64),
}

/// A machine-checkable claim over the row's aggregated metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeAssert {
    /// Left-hand metric name.
    pub lhs: String,
    /// Comparison.
    pub op: AssertOp,
    /// Right-hand metric or constant.
    pub rhs: Operand,
    /// Slack applied in the comparison (noise allowance across seeds).
    pub tol: f64,
}

impl ShapeAssert {
    /// Human-readable form (`acc.retraining >= acc.ours ±0.05`).
    pub fn expr(&self) -> String {
        let rhs = match &self.rhs {
            Operand::Metric(m) => m.clone(),
            Operand::Const(c) => format!("{c}"),
        };
        format!("{} {} {} ±{}", self.lhs, self.op.name(), rhs, self.tol)
    }

    fn from_json(v: &Json, line: usize) -> Result<ShapeAssert, MatrixError> {
        let bad = |msg: &str| MatrixError::BadAssert {
            line,
            msg: msg.to_string(),
        };
        let obj = v.as_obj().ok_or_else(|| bad("must be an object"))?;
        let mut lhs = None;
        let mut op = None;
        let mut rhs = None;
        let mut tol = 0.0;
        for (k, val) in obj {
            match k.as_str() {
                "lhs" => {
                    lhs = Some(
                        val.as_str()
                            .ok_or_else(|| bad("'lhs' must be a metric name"))?
                            .to_string(),
                    );
                }
                "op" => {
                    let s = val.as_str().ok_or_else(|| bad("'op' must be a string"))?;
                    op = Some(
                        AssertOp::parse(s)
                            .ok_or_else(|| bad("'op' must be one of >=, <=, >, <, ~="))?,
                    );
                }
                "rhs" => {
                    rhs = Some(match val {
                        Json::Str(s) => Operand::Metric(s.clone()),
                        Json::Num(n) => Operand::Const(*n),
                        _ => return Err(bad("'rhs' must be a metric name or a number")),
                    });
                }
                "tol" => {
                    tol = val.as_f64().ok_or_else(|| bad("'tol' must be a number"))?;
                }
                other => {
                    return Err(MatrixError::UnknownField {
                        line,
                        field: format!("asserts.{other}"),
                    })
                }
            }
        }
        Ok(ShapeAssert {
            lhs: lhs.ok_or_else(|| bad("missing 'lhs'"))?,
            op: op.ok_or_else(|| bad("missing 'op'"))?,
            rhs: rhs.ok_or_else(|| bad("missing 'rhs'"))?,
            tol,
        })
    }

    /// Renders back to the matrix-file object form.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("lhs".to_string(), Json::Str(self.lhs.clone())),
            ("op".to_string(), Json::Str(self.op.name().to_string())),
        ];
        pairs.push((
            "rhs".to_string(),
            match &self.rhs {
                Operand::Metric(m) => Json::Str(m.clone()),
                Operand::Const(c) => Json::Num(*c),
            },
        ));
        if self.tol != 0.0 {
            pairs.push(("tol".to_string(), Json::Num(self.tol)));
        }
        Json::Obj(pairs)
    }
}

/// One row of the scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Unique row id (the table/report key).
    pub id: String,
    /// Base scenario constructor.
    pub task: Task,
    /// Trials per variant (seeds `base_seed..base_seed+repeats`).
    pub repeats: u32,
    /// First seed of the repeat range.
    pub base_seed: u64,
    /// Whether the row is part of the CI `--smoke` slice.
    pub smoke: bool,
    /// Free-text note (carried through, never interpreted).
    pub note: String,
    /// Methods to score (defaults to the Table-I set).
    pub methods: Vec<Method>,
    /// Extra eval columns.
    pub evals: Vec<EvalSpec>,
    /// Row-level overrides.
    pub overrides: Overrides,
    /// Variants (empty = just the base configuration).
    pub variants: Vec<Variant>,
    /// CI-gated shape claims over the aggregated metrics.
    pub asserts: Vec<ShapeAssert>,
}

impl ScenarioRow {
    /// Renders the row back to its matrix-file line (canonical field
    /// order; defaults omitted).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("task".into(), Json::Str(self.task.name().into())),
        ];
        if self.repeats != 1 {
            pairs.push(("repeats".into(), Json::Num(f64::from(self.repeats))));
        }
        if self.base_seed != DEFAULT_SEED {
            pairs.push(("base_seed".into(), Json::Num(self.base_seed as f64)));
        }
        if self.smoke {
            pairs.push(("smoke".into(), Json::Bool(true)));
        }
        if !self.note.is_empty() {
            pairs.push(("note".into(), Json::Str(self.note.clone())));
        }
        if self.methods != Method::table1_set() {
            pairs.push((
                "methods".into(),
                Json::Arr(
                    self.methods
                        .iter()
                        .map(|m| Json::Str(m.name().into()))
                        .collect(),
                ),
            ));
        }
        if !self.evals.is_empty() {
            pairs.push((
                "evals".into(),
                Json::Arr(self.evals.iter().map(|e| Json::Str(e.metric())).collect()),
            ));
        }
        if self.overrides != Overrides::default() {
            pairs.push(("overrides".into(), self.overrides.to_json()));
        }
        if !self.variants.is_empty() {
            pairs.push((
                "variants".into(),
                Json::Arr(
                    self.variants
                        .iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(v.name.clone())),
                                ("overrides".into(), v.overrides.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.asserts.is_empty() {
            pairs.push((
                "asserts".into(),
                Json::Arr(self.asserts.iter().map(ShapeAssert::to_json).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Default `base_seed` when a row omits it (the exp_* binaries' default).
pub const DEFAULT_SEED: u64 = 42;

fn parse_row(v: &Json, line: usize) -> Result<ScenarioRow, MatrixError> {
    let obj = v.as_obj().ok_or(MatrixError::NotAnObject { line })?;
    let mut id = None;
    let mut task = None;
    let mut repeats = 1u32;
    let mut base_seed = DEFAULT_SEED;
    let mut smoke = false;
    let mut note = String::new();
    let mut methods = Method::table1_set();
    let mut evals = Vec::new();
    let mut overrides = Overrides::default();
    let mut variants = Vec::new();
    let mut asserts = Vec::new();

    for (key, val) in obj {
        let mismatch = |expected| MatrixError::TypeMismatch {
            line,
            field: key.clone(),
            expected,
        };
        match key.as_str() {
            "id" => id = Some(val.as_str().ok_or(mismatch("a string"))?.to_string()),
            "task" => {
                let s = val.as_str().ok_or(mismatch("a string"))?;
                task = Some(Task::parse(s).ok_or(MatrixError::UnknownTask {
                    line,
                    task: s.to_string(),
                })?);
            }
            "repeats" => {
                let n = val.as_u64().ok_or(mismatch("a positive integer"))?;
                if n == 0 || n > u64::from(u32::MAX) {
                    return Err(mismatch("a positive integer"));
                }
                repeats = n as u32;
            }
            "base_seed" => base_seed = val.as_u64().ok_or(mismatch("a non-negative integer"))?,
            "smoke" => smoke = val.as_bool().ok_or(mismatch("a boolean"))?,
            "note" => note = val.as_str().ok_or(mismatch("a string"))?.to_string(),
            "methods" => {
                let arr = val.as_arr().ok_or(mismatch("an array of method names"))?;
                methods = arr
                    .iter()
                    .map(|m| {
                        let s = m.as_str().ok_or(MatrixError::TypeMismatch {
                            line,
                            field: "methods[]".to_string(),
                            expected: "a string",
                        })?;
                        Method::parse(s).ok_or(MatrixError::UnknownMethod {
                            line,
                            method: s.to_string(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "evals" => {
                let arr = val.as_arr().ok_or(mismatch("an array of eval names"))?;
                evals = arr
                    .iter()
                    .map(|e| {
                        let s = e.as_str().ok_or(MatrixError::TypeMismatch {
                            line,
                            field: "evals[]".to_string(),
                            expected: "a string",
                        })?;
                        EvalSpec::parse(s).ok_or(MatrixError::UnknownEval {
                            line,
                            eval: s.to_string(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "overrides" => overrides = Overrides::from_json(val, line, "overrides")?,
            "variants" => {
                let arr = val
                    .as_arr()
                    .ok_or(mismatch("an array of variant objects"))?;
                for (i, item) in arr.iter().enumerate() {
                    let vobj = item.as_obj().ok_or(MatrixError::TypeMismatch {
                        line,
                        field: format!("variants[{i}]"),
                        expected: "an object",
                    })?;
                    let mut name = None;
                    let mut v_over = Overrides::default();
                    for (vk, vv) in vobj {
                        match vk.as_str() {
                            "name" => {
                                name = Some(
                                    vv.as_str()
                                        .ok_or(MatrixError::TypeMismatch {
                                            line,
                                            field: format!("variants[{i}].name"),
                                            expected: "a string",
                                        })?
                                        .to_string(),
                                );
                            }
                            "overrides" => {
                                v_over = Overrides::from_json(vv, line, &format!("variants[{i}]"))?;
                            }
                            other => {
                                return Err(MatrixError::UnknownField {
                                    line,
                                    field: format!("variants[{i}].{other}"),
                                })
                            }
                        }
                    }
                    let name = name.ok_or(MatrixError::MissingField {
                        line,
                        field: "variants[].name",
                    })?;
                    if variants.iter().any(|v: &Variant| v.name == name) {
                        return Err(MatrixError::BadAssert {
                            line,
                            msg: format!("duplicate variant name '{name}'"),
                        });
                    }
                    variants.push(Variant {
                        name,
                        overrides: v_over,
                    });
                }
            }
            "asserts" => {
                let arr = val.as_arr().ok_or(mismatch("an array of assert objects"))?;
                asserts = arr
                    .iter()
                    .map(|a| ShapeAssert::from_json(a, line))
                    .collect::<Result<_, _>>()?;
            }
            other => {
                return Err(MatrixError::UnknownField {
                    line,
                    field: other.to_string(),
                })
            }
        }
    }

    Ok(ScenarioRow {
        id: id.ok_or(MatrixError::MissingField { line, field: "id" })?,
        task: task.ok_or(MatrixError::MissingField {
            line,
            field: "task",
        })?,
        repeats,
        base_seed,
        smoke,
        note,
        methods,
        evals,
        overrides,
        variants,
        asserts,
    })
}

/// Parses a complete `scenarios.jsonl` matrix. Blank lines and lines
/// starting with `#` are skipped.
///
/// # Errors
///
/// Returns the first [`MatrixError`] encountered, with its 1-based line.
pub fn parse_matrix(src: &str) -> Result<Vec<ScenarioRow>, MatrixError> {
    let mut rows: Vec<ScenarioRow> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v = Json::parse(trimmed).map_err(|e| MatrixError::BadJson {
            line,
            msg: e.to_string(),
        })?;
        let row = parse_row(&v, line)?;
        if rows.iter().any(|r| r.id == row.id) {
            return Err(MatrixError::DuplicateId { line, id: row.id });
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Renders rows back to matrix-file text (one canonical JSON line each).
pub fn render_matrix(rows: &[ScenarioRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_row_gets_defaults() {
        let rows = parse_matrix(r#"{"id": "t", "task": "tiny"}"#).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.repeats, 1);
        assert_eq!(r.base_seed, DEFAULT_SEED);
        assert!(!r.smoke);
        assert_eq!(r.methods, Method::table1_set());
        assert!(r.variants.is_empty());
    }

    #[test]
    fn unknown_field_is_a_typed_error() {
        let err = parse_matrix(r#"{"id": "t", "task": "tiny", "sede": 1}"#).unwrap_err();
        assert_eq!(
            err,
            MatrixError::UnknownField {
                line: 1,
                field: "sede".into()
            }
        );
    }

    #[test]
    fn unknown_override_is_a_typed_error_with_context() {
        let err =
            parse_matrix(r#"{"id": "t", "task": "tiny", "overrides": {"runds": 3}}"#).unwrap_err();
        assert_eq!(
            err,
            MatrixError::UnknownField {
                line: 1,
                field: "overrides.runds".into()
            }
        );
    }

    #[test]
    fn duplicate_ids_are_rejected_with_the_second_line() {
        let src =
            "{\"id\": \"a\", \"task\": \"tiny\"}\n# comment\n{\"id\": \"a\", \"task\": \"digits\"}";
        let err = parse_matrix(src).unwrap_err();
        assert_eq!(
            err,
            MatrixError::DuplicateId {
                line: 3,
                id: "a".into()
            }
        );
    }

    #[test]
    fn full_row_round_trips() {
        let src = concat!(
            r#"{"id":"table1_digits","task":"digits","repeats":3,"base_seed":7,"smoke":true,"#,
            r#""methods":["ours","sign_replay","not"],"evals":["mia.ours","recon.ours"],"#,
            r#""overrides":{"rounds":20,"lr":0.05,"hessian_correction":false},"#,
            r#""variants":[{"name":"fanout4","overrides":{"tree_fanout":4}}],"#,
            r#""asserts":[{"lhs":"acc.ours","op":">=","rhs":"acc.unlearned","tol":0.05}]}"#
        );
        let rows = parse_matrix(src).unwrap();
        let rendered = render_matrix(&rows);
        let reparsed = parse_matrix(&rendered).unwrap();
        assert_eq!(rows, reparsed);
    }

    #[test]
    fn bad_types_are_type_mismatches() {
        let err = parse_matrix(r#"{"id": "t", "task": "tiny", "repeats": "two"}"#).unwrap_err();
        assert!(matches!(err, MatrixError::TypeMismatch { .. }), "{err}");
        let err =
            parse_matrix(r#"{"id": "t", "task": "tiny", "overrides": {"lr": true}}"#).unwrap_err();
        assert!(matches!(err, MatrixError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_task_method_eval_are_typed() {
        assert!(matches!(
            parse_matrix(r#"{"id":"t","task":"mnist"}"#).unwrap_err(),
            MatrixError::UnknownTask { .. }
        ));
        assert!(matches!(
            parse_matrix(r#"{"id":"t","task":"tiny","methods":["sgd"]}"#).unwrap_err(),
            MatrixError::UnknownMethod { .. }
        ));
        assert!(matches!(
            parse_matrix(r#"{"id":"t","task":"tiny","evals":["mia"]}"#).unwrap_err(),
            MatrixError::UnknownEval { .. }
        ));
    }
}
