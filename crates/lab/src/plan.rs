//! Deterministic expansion of matrix rows into trial plans.
//!
//! A row with `v` variants and `r` repeats expands into `(1 + v) · r`
//! trials: the base configuration plus each variant, each at seeds
//! `base_seed .. base_seed + r`. Expansion is pure — same matrix, same
//! filter → byte-identical plan list, pinned by an FNV-1a fingerprint
//! over the canonical encoding (the same hash family as the golden
//! traces, so a fingerprint in a CI log identifies a plan forever).

use crate::matrix::{EvalSpec, Method, Overrides, ScenarioRow, Task};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One fully-resolved trial: a scenario configuration plus a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPlan {
    /// Owning row id.
    pub row_id: String,
    /// Variant label (`"base"` for the row's own configuration).
    pub variant: String,
    /// Base task.
    pub task: Task,
    /// Repeat index (`0..repeats`).
    pub repeat: u32,
    /// The trial's seed (`base_seed + repeat`).
    pub seed: u64,
    /// Whether the owning row is smoke-tagged.
    pub smoke: bool,
    /// Methods to score.
    pub methods: Vec<Method>,
    /// Eval columns to attach.
    pub evals: Vec<EvalSpec>,
    /// Row overrides merged with variant overrides (variant wins).
    pub overrides: Overrides,
}

impl TrialPlan {
    /// Canonical single-line encoding (the fingerprint input and the
    /// `lab plan` output format).
    pub fn canonical(&self) -> String {
        let methods: Vec<&str> = self.methods.iter().map(|m| m.name()).collect();
        let evals: Vec<String> = self.evals.iter().map(EvalSpec::metric).collect();
        format!(
            "row={} variant={} task={} repeat={} seed={} smoke={} methods=[{}] evals=[{}] overrides={}",
            self.row_id,
            self.variant,
            self.task.name(),
            self.repeat,
            self.seed,
            self.smoke,
            methods.join(","),
            evals.join(","),
            self.overrides.to_json().render(),
        )
    }

    /// FNV-1a fingerprint of this plan alone.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// Which slice of the matrix to expand.
#[derive(Debug, Clone, Default)]
pub struct PlanFilter {
    /// Keep only smoke-tagged rows (the CI slice).
    pub smoke_only: bool,
    /// Replace every row's `base_seed` (the CI fault-seed matrix).
    pub seed_override: Option<u64>,
    /// Keep only these row ids (`None` = all).
    pub row_ids: Option<Vec<String>>,
}

/// Expands matrix rows into the ordered trial list.
pub fn expand(rows: &[ScenarioRow], filter: &PlanFilter) -> Vec<TrialPlan> {
    let mut plans = Vec::new();
    for row in rows {
        if filter.smoke_only && !row.smoke {
            continue;
        }
        if let Some(ids) = &filter.row_ids {
            if !ids.contains(&row.id) {
                continue;
            }
        }
        let base_seed = filter.seed_override.unwrap_or(row.base_seed);
        // The base configuration, then each variant, each × repeats.
        let mut configs: Vec<(String, Overrides)> =
            vec![("base".to_string(), row.overrides.clone())];
        for v in &row.variants {
            configs.push((v.name.clone(), row.overrides.merged(&v.overrides)));
        }
        for (variant, overrides) in configs {
            for repeat in 0..row.repeats {
                plans.push(TrialPlan {
                    row_id: row.id.clone(),
                    variant: variant.clone(),
                    task: row.task,
                    repeat,
                    seed: base_seed + u64::from(repeat),
                    smoke: row.smoke,
                    methods: row.methods.clone(),
                    evals: row.evals.clone(),
                    overrides: overrides.clone(),
                });
            }
        }
    }
    plans
}

/// Fingerprint of a whole plan list (order-sensitive — the plan order
/// *is* part of the contract).
pub fn plan_fingerprint(plans: &[TrialPlan]) -> u64 {
    let mut joined = String::new();
    for p in plans {
        joined.push_str(&p.canonical());
        joined.push('\n');
    }
    fnv1a(joined.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::parse_matrix;

    const SRC: &str = concat!(
        "{\"id\":\"a\",\"task\":\"tiny\",\"repeats\":2,\"base_seed\":10,\"smoke\":true,",
        "\"variants\":[{\"name\":\"v1\",\"overrides\":{\"rounds\":5}}]}\n",
        "{\"id\":\"b\",\"task\":\"digits\"}\n",
    );

    #[test]
    fn expansion_is_rows_times_variants_times_repeats() {
        let rows = parse_matrix(SRC).unwrap();
        let plans = expand(&rows, &PlanFilter::default());
        // Row a: (base + v1) × 2 repeats = 4; row b: 1.
        assert_eq!(plans.len(), 5);
        assert_eq!(plans[0].variant, "base");
        assert_eq!(plans[0].seed, 10);
        assert_eq!(plans[1].seed, 11);
        assert_eq!(plans[2].variant, "v1");
        assert_eq!(plans[2].overrides.rounds, Some(5));
        assert_eq!(plans[4].row_id, "b");
        assert_eq!(plans[4].seed, crate::matrix::DEFAULT_SEED);
    }

    #[test]
    fn smoke_filter_and_seed_override() {
        let rows = parse_matrix(SRC).unwrap();
        let plans = expand(
            &rows,
            &PlanFilter {
                smoke_only: true,
                seed_override: Some(101),
                row_ids: None,
            },
        );
        assert_eq!(plans.len(), 4);
        assert!(plans.iter().all(|p| p.row_id == "a"));
        assert_eq!(plans[0].seed, 101);
        assert_eq!(plans[1].seed, 102);
    }

    #[test]
    fn fingerprints_are_deterministic_and_sensitive() {
        let rows = parse_matrix(SRC).unwrap();
        let p1 = expand(&rows, &PlanFilter::default());
        let p2 = expand(&rows, &PlanFilter::default());
        assert_eq!(plan_fingerprint(&p1), plan_fingerprint(&p2));
        // Bitwise-identical plans, element by element.
        assert_eq!(p1, p2);
        let shifted = expand(
            &rows,
            &PlanFilter {
                seed_override: Some(7),
                ..Default::default()
            },
        );
        assert_ne!(plan_fingerprint(&p1), plan_fingerprint(&shifted));
    }
}
