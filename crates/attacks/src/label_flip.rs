//! Label-flip poisoning (§V-A2).
//!
//! The adversary relabels training samples of a source class to a target
//! class — the paper flips images of digit '7' to label '1'.

use fuiov_data::Dataset;
use fuiov_tensor::rng::{rng_for, streams};
use rand::seq::SliceRandom;

/// Specification of a label-flip attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelFlip {
    /// Class whose samples are relabelled (paper: 7).
    pub source_class: usize,
    /// The malicious target label (paper: 1).
    pub target_class: usize,
    /// Fraction of the attacker's source-class samples flipped.
    pub fraction: f32,
}

impl LabelFlip {
    /// The paper's MNIST configuration: all '7's relabelled to '1'.
    pub fn paper_default() -> Self {
        LabelFlip {
            source_class: 7,
            target_class: 1,
            fraction: 1.0,
        }
    }

    /// Poisons `data` in place; returns the indices that were flipped.
    ///
    /// # Panics
    ///
    /// Panics if the classes are out of range, equal, or `fraction` is
    /// outside `[0, 1]`.
    pub fn poison(&self, data: &mut Dataset, seed: u64) -> Vec<usize> {
        assert!(
            self.source_class < data.num_classes() && self.target_class < data.num_classes(),
            "LabelFlip: class out of range"
        );
        assert_ne!(
            self.source_class, self.target_class,
            "LabelFlip: source == target"
        );
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "LabelFlip: fraction must be in [0, 1]"
        );
        let mut candidates = data.indices_of_class(self.source_class);
        candidates.shuffle(&mut rng_for(seed, streams::ATTACK));
        let n = ((candidates.len() as f32) * self.fraction).round() as usize;
        let chosen = &candidates[..n.min(candidates.len())];
        for &i in chosen {
            data.set_label(i, self.target_class);
        }
        chosen.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;

    fn data() -> Dataset {
        Dataset::digits(50, &DigitStyle::small(), 1)
    }

    #[test]
    fn full_flip_relabels_every_source_sample() {
        let mut d = data();
        let flip = LabelFlip::paper_default();
        let flipped = flip.poison(&mut d, 0);
        assert_eq!(flipped.len(), 5); // 50 samples balanced over 10 classes
        assert!(d.indices_of_class(7).is_empty());
        assert_eq!(d.indices_of_class(1).len(), 10); // 5 original + 5 flipped
    }

    #[test]
    fn partial_flip_respects_fraction() {
        let mut d = data();
        let flip = LabelFlip {
            source_class: 3,
            target_class: 0,
            fraction: 0.4,
        };
        let flipped = flip.poison(&mut d, 0);
        assert_eq!(flipped.len(), 2);
        assert_eq!(d.indices_of_class(3).len(), 3);
    }

    #[test]
    fn poison_is_deterministic() {
        let mut a = data();
        let mut b = data();
        let flip = LabelFlip {
            source_class: 2,
            target_class: 9,
            fraction: 0.5,
        };
        assert_eq!(flip.poison(&mut a, 5), flip.poison(&mut b, 5));
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut d = data();
        let flip = LabelFlip {
            source_class: 2,
            target_class: 9,
            fraction: 0.0,
        };
        assert!(flip.poison(&mut d, 0).is_empty());
        assert_eq!(d.indices_of_class(2).len(), 5);
    }

    #[test]
    #[should_panic(expected = "source == target")]
    fn rejects_equal_classes() {
        let mut d = data();
        let _ = LabelFlip {
            source_class: 1,
            target_class: 1,
            fraction: 1.0,
        }
        .poison(&mut d, 0);
    }
}
