//! Poisoning attacks and attack-success evaluation (§V-A2).
//!
//! The paper samples 20 % of clients as malicious and runs two data
//! poisoning attacks on the MNIST task:
//!
//! - [`label_flip`]: relabel digit '7' training images to '1';
//! - [`backdoor`]: stamp a 3×3 pixel trigger and relabel to class '2'.
//!
//! Attackers are ordinary FL clients over poisoned datasets — see
//! [`client::label_flip_client`] / [`client::backdoor_client`] — plus a
//! gradient-[`client::ScalingAttacker`] extension for model-poisoning
//! ablations. [`eval`] computes the attack success rate metric used in
//! Fig. 1, and [`reconstruction`] mounts the gradient-difference probe
//! ("Verifiably Forgotten?", arXiv 2505.11097) against the stored 2-bit
//! sign history — the scenario lab's `recon.*` eval column.

pub mod backdoor;
pub mod client;
pub mod eval;
pub mod label_flip;
pub mod reconstruction;
pub mod replacement;

pub use backdoor::{Backdoor, Corner, Trigger};
pub use client::{backdoor_client, label_flip_client, ScalingAttacker};
pub use eval::{backdoor_asr, label_flip_asr};
pub use label_flip::LabelFlip;
pub use reconstruction::{
    direction_agreement, majority_direction, reconstruct_update, reconstruction_error,
};
pub use replacement::ModelReplacement;
