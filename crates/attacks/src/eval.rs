//! Attack-success-rate evaluation (§V-A3).
//!
//! *Attack success rate* (ASR) is "the probability that the model
//! recognizes the poisoned image as the target label of the malicious
//! attacker".

use crate::backdoor::Backdoor;
use crate::label_flip::LabelFlip;
use fuiov_data::Dataset;
use fuiov_nn::Sequential;

/// ASR of a label-flip attack: fraction of clean source-class test images
/// the model classifies as the attack's target class.
///
/// Returns `0.0` when the test set has no source-class samples.
pub fn label_flip_asr(model: &mut Sequential, clean_test: &Dataset, attack: &LabelFlip) -> f32 {
    let idx = clean_test.indices_of_class(attack.source_class);
    if idx.is_empty() {
        return 0.0;
    }
    let (x, _) = clean_test.gather(&idx);
    let preds = model.predict(&x);
    let hits = preds.iter().filter(|&&p| p == attack.target_class).count();
    hits as f32 / idx.len() as f32
}

/// ASR of a backdoor attack: fraction of *triggered* non-target-class test
/// images the model classifies as the target class.
///
/// Returns `0.0` when the triggered set is empty.
pub fn backdoor_asr(model: &mut Sequential, clean_test: &Dataset, attack: &Backdoor) -> f32 {
    let triggered = attack.triggered_test_set(clean_test);
    if triggered.is_empty() {
        return 0.0;
    }
    let (x, _) = triggered.full();
    let preds = model.predict(&x);
    let hits = preds.iter().filter(|&&p| p == attack.target_class).count();
    hits as f32 / triggered.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;
    use fuiov_nn::ModelSpec;

    fn setup() -> (Sequential, Dataset) {
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        (spec.build(1), Dataset::digits(50, &DigitStyle::small(), 4))
    }

    /// A model rigged to always predict `class` via an output bias.
    fn constant_model(class: usize) -> Sequential {
        let spec = ModelSpec::Linear {
            inputs: 144,
            classes: 10,
        };
        let mut m = spec.build(0);
        let mut p = vec![0.0; m.param_count()];
        // Last 10 entries are the output bias.
        let off = p.len() - 10;
        p[off + class] = 100.0;
        m.set_params(&p);
        m
    }

    #[test]
    fn constant_target_model_has_full_asr() {
        let (_, test) = setup();
        let mut m = constant_model(1);
        let asr = label_flip_asr(&mut m, &test, &LabelFlip::paper_default());
        assert_eq!(asr, 1.0);
        let asr_bd = backdoor_asr(&mut m, &test, &Backdoor::paper_default(1.0));
        // Backdoor target is class 2, model predicts 1 → ASR 0.
        assert_eq!(asr_bd, 0.0);
        let mut m2 = constant_model(2);
        assert_eq!(
            backdoor_asr(&mut m2, &test, &Backdoor::paper_default(1.0)),
            1.0
        );
    }

    #[test]
    fn constant_other_model_has_zero_asr() {
        let (_, test) = setup();
        let mut m = constant_model(5);
        assert_eq!(
            label_flip_asr(&mut m, &test, &LabelFlip::paper_default()),
            0.0
        );
        assert_eq!(
            backdoor_asr(&mut m, &test, &Backdoor::paper_default(1.0)),
            0.0
        );
    }

    #[test]
    fn empty_source_class_gives_zero() {
        let (mut m, test) = setup();
        // Remove all 7s.
        let keep: Vec<usize> = (0..test.len()).filter(|&i| test.label(i) != 7).collect();
        let test = test.subset(&keep);
        assert_eq!(
            label_flip_asr(&mut m, &test, &LabelFlip::paper_default()),
            0.0
        );
    }

    #[test]
    fn untrained_model_asr_is_moderate() {
        let (mut m, test) = setup();
        let asr = label_flip_asr(&mut m, &test, &LabelFlip::paper_default());
        assert!((0.0..=1.0).contains(&asr));
    }
}
