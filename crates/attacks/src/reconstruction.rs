//! Gradient-difference reconstruction against the stored sign history.
//!
//! "Verifiably Forgotten?" (arXiv 2505.11097) shows that an unlearning
//! *update* can itself leak the forgotten client's data: the difference
//! between the model before and after unlearning is dominated by the
//! erased client's accumulated contribution, so an attacker who observes
//! both models can reconstruct that client's gradient direction — and
//! check it against anything the server still stores.
//!
//! This module mounts exactly that probe against FUIOV's 2-bit sign
//! history: quantise the parameter difference `w_before − w_after` with
//! the history's own threshold δ and compare the resulting ±1 pattern
//! coordinate-by-coordinate with the client's *stored* sign directions
//! (majority vote over its membership window). The agreement is the leak:
//!
//! - agreement ≈ 1 → the unlearning update points straight along the
//!   forgotten client's recorded directions — an observer holding the old
//!   model learns which coordinates the client pushed, i.e. the paper's
//!   privacy goal is only as strong as access control on `w_before`;
//! - agreement ≈ ½ (chance for the non-zero sign coordinates) → nothing
//!   about the client's directions survives in the visible update.
//!
//! The scenario-lab reports `1 − agreement` as the **reconstruction
//! error** eval column: *low* error flags a reconstructable (leaky)
//! update, *high* error means the gradient-difference attack failed.

use fuiov_storage::{ClientId, GradientDirection, HistoryStore};

/// The attacker's view: the sign-quantised parameter difference
/// `before − after`, using threshold `delta` (pass the history's own δ to
/// model the strongest attacker — one who knows the server's quantiser).
pub fn reconstruct_update(before: &[f32], after: &[f32], delta: f32) -> GradientDirection {
    assert_eq!(
        before.len(),
        after.len(),
        "reconstruct_update: dimension mismatch"
    );
    let diff: Vec<f32> = before.iter().zip(after).map(|(b, a)| b - a).collect();
    GradientDirection::quantize(&diff, delta)
}

/// The client's per-coordinate majority sign over every round it appears
/// in `history` (`0` where the votes tie or the client never stored a
/// non-zero sign). Returns `None` for a client with no stored directions.
pub fn majority_direction(history: &HistoryStore, client: ClientId) -> Option<Vec<i8>> {
    let dim = history.dim()?;
    let mut votes = vec![0i32; dim];
    let mut seen = false;
    for round in history.rounds_iter() {
        let Some(dir) = history.direction(round, client) else {
            continue;
        };
        seen = true;
        for (v, s) in votes.iter_mut().zip(dir.to_signs()) {
            *v += i32::from(s);
        }
    }
    if !seen {
        return None;
    }
    Some(votes.iter().map(|&v| v.signum() as i8).collect())
}

/// Fraction of coordinates on which the reconstruction agrees with the
/// reference signs, over the coordinates where **both** are non-zero
/// (zeros carry no sign information on either side). `None` when no
/// coordinate is non-zero in both.
pub fn direction_agreement(reconstructed: &GradientDirection, reference: &[i8]) -> Option<f32> {
    assert_eq!(
        reconstructed.len(),
        reference.len(),
        "direction_agreement: dimension mismatch"
    );
    let mut compared = 0usize;
    let mut agreed = 0usize;
    for (i, &r) in reference.iter().enumerate() {
        let e = reconstructed.sign(i);
        if e != 0 && r != 0 {
            compared += 1;
            if e == r {
                agreed += 1;
            }
        }
    }
    (compared > 0).then(|| agreed as f32 / compared as f32)
}

/// The full probe: reconstruction error of the gradient-difference attack
/// against `client`'s stored sign directions.
///
/// `before`/`after` are the global parameters the attacker observes
/// around the unlearning operation (original vs recovered model). Returns
/// `1 − agreement ∈ [0, 1]`; `None` when the client stored no directions
/// or the quantised difference shares no non-zero coordinate with them.
///
/// Interpretation is inverted relative to most error metrics: **low**
/// error means the attack *worked* (the update leaks the forgotten
/// directions); error near `0.5` is chance-level — nothing reconstructed.
pub fn reconstruction_error(
    history: &HistoryStore,
    client: ClientId,
    before: &[f32],
    after: &[f32],
) -> Option<f32> {
    let reference = majority_direction(history, client)?;
    let est = reconstruct_update(before, after, history.delta());
    direction_agreement(&est, &reference).map(|a| 1.0 - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_tensor::rng::rng_for;
    use rand::Rng;

    /// A history holding one client whose stored direction is `signs`.
    fn history_with(signs: &[i8]) -> HistoryStore {
        let mut h = HistoryStore::new(1e-6);
        let grad: Vec<f32> = signs.iter().map(|&s| f32::from(s) * 0.01).collect();
        h.record_join(0, 0);
        h.record_model(0, vec![0.0; signs.len()]);
        h.record_gradient(0, 0, &grad);
        h
    }

    fn random_signs(n: usize, seed: u64) -> Vec<i8> {
        let mut rng = rng_for(seed, 0x7EC0);
        (0..n)
            .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn exact_leak_reconstructs_with_zero_error() {
        let signs = random_signs(512, 1);
        let h = history_with(&signs);
        // The visible update is exactly a step along the stored direction.
        let after = vec![0.0f32; signs.len()];
        let before: Vec<f32> = signs.iter().map(|&s| f32::from(s) * 0.02).collect();
        let err = reconstruction_error(&h, 0, &before, &after).expect("comparable");
        assert_eq!(err, 0.0, "a pure direction step must reconstruct exactly");
    }

    #[test]
    fn unrelated_update_reconstructs_at_chance() {
        let signs = random_signs(4096, 2);
        let h = history_with(&signs);
        // The visible update is an independent random direction.
        let other = random_signs(4096, 99);
        let after = vec![0.0f32; signs.len()];
        let before: Vec<f32> = other.iter().map(|&s| f32::from(s) * 0.02).collect();
        let err = reconstruction_error(&h, 0, &before, &after).expect("comparable");
        assert!(
            (err - 0.5).abs() < 0.05,
            "independent updates must sit at chance, got {err}"
        );
    }

    #[test]
    fn majority_vote_spans_the_window() {
        let mut h = HistoryStore::new(1e-6);
        h.record_join(0, 0);
        for round in 0..3 {
            h.record_model(round, vec![0.0; 4]);
        }
        // Coordinate 0: +, +, − → +. Coordinate 1: −, −, + → −.
        // Coordinate 2: +, −, 0 → tie → 0. Coordinate 3: always 0.
        h.record_gradient(0, 0, &[0.01, -0.01, 0.01, 0.0]);
        h.record_gradient(1, 0, &[0.01, -0.01, -0.01, 0.0]);
        h.record_gradient(2, 0, &[-0.01, 0.01, 0.0, 0.0]);
        let maj = majority_direction(&h, 0).expect("client 0 stored");
        assert_eq!(maj, vec![1, -1, 0, 0]);
    }

    #[test]
    fn absent_client_and_all_zero_overlap_are_none() {
        let h = history_with(&[1, -1, 1, -1]);
        assert!(majority_direction(&h, 7).is_none());
        assert!(reconstruction_error(&h, 7, &[0.0; 4], &[0.0; 4]).is_none());
        // A zero visible update has no non-zero coordinates to compare.
        assert!(reconstruction_error(&h, 0, &[0.0; 4], &[0.0; 4]).is_none());
    }

    #[test]
    fn agreement_ignores_zero_coordinates() {
        let est = GradientDirection::from_signs(&[1, 0, -1, 1]);
        // Reference zeros at 0 and 3 drop those coordinates; only index 2
        // is comparable and it agrees.
        let agreement = direction_agreement(&est, &[0, 0, -1, 0]).expect("one overlap");
        assert_eq!(agreement, 1.0);
    }
}
