//! Malicious client wrappers.
//!
//! Data-poisoning attackers (label flip, backdoor) are honest *clients*
//! with poisoned *datasets*, so they are built by poisoning a dataset and
//! handing it to [`fuiov_fl::HonestClient`] — see the constructors here.
//! Model-poisoning attackers manipulate the reported gradient itself; the
//! [`ScalingAttacker`] wrapper implements the classic gradient-scaling
//! attack as an extension for the robust-aggregation ablations.

use crate::backdoor::Backdoor;
use crate::label_flip::LabelFlip;
use fuiov_data::Dataset;
use fuiov_fl::{Client, HonestClient};
use fuiov_nn::ModelSpec;
use fuiov_storage::{ClientId, Round};
use fuiov_tensor::vector;

/// Builds a label-flip attacker: an honest client over a flipped dataset.
pub fn label_flip_client(
    id: ClientId,
    spec: ModelSpec,
    mut data: Dataset,
    attack: &LabelFlip,
    batch_size: usize,
    seed: u64,
) -> HonestClient {
    attack.poison(&mut data, seed.wrapping_add(id as u64));
    HonestClient::new(id, spec, data, batch_size, seed)
}

/// Builds a backdoor attacker: an honest client over a triggered dataset.
pub fn backdoor_client(
    id: ClientId,
    spec: ModelSpec,
    mut data: Dataset,
    attack: &Backdoor,
    batch_size: usize,
    seed: u64,
) -> HonestClient {
    attack.poison(&mut data, seed.wrapping_add(id as u64));
    HonestClient::new(id, spec, data, batch_size, seed)
}

/// A model-poisoning wrapper that scales the inner client's gradient by a
/// constant factor (e.g. `−10` to push the model away from convergence).
pub struct ScalingAttacker<C> {
    inner: C,
    factor: f32,
}

impl<C: Client> ScalingAttacker<C> {
    /// Wraps `inner`, scaling its reported gradients by `factor`.
    pub fn new(inner: C, factor: f32) -> Self {
        ScalingAttacker { inner, factor }
    }
}

impl<C: Client> std::fmt::Debug for ScalingAttacker<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalingAttacker")
            .field("id", &self.inner.id())
            .field("factor", &self.factor)
            .finish()
    }
}

impl<C: Client> Client for ScalingAttacker<C> {
    fn id(&self) -> ClientId {
        self.inner.id()
    }

    fn weight(&self) -> f32 {
        self.inner.weight()
    }

    fn gradient(&mut self, params: &[f32], round: Round) -> Vec<f32> {
        let mut g = self.inner.gradient(params, round);
        vector::scale(self.factor, &mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;

    fn spec() -> ModelSpec {
        ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        }
    }

    #[test]
    fn label_flip_client_has_flipped_data() {
        let data = Dataset::digits(50, &DigitStyle::small(), 1);
        let c = label_flip_client(0, spec(), data, &LabelFlip::paper_default(), 10, 1);
        assert!(c.data().indices_of_class(7).is_empty());
    }

    #[test]
    fn backdoor_client_has_triggered_data() {
        let data = Dataset::digits(50, &DigitStyle::small(), 1);
        let c = backdoor_client(3, spec(), data, &Backdoor::paper_default(1.0), 10, 1);
        // All samples relabelled to target 2.
        assert_eq!(c.data().indices_of_class(2).len(), 50);
    }

    #[test]
    fn scaling_attacker_scales_gradient() {
        let data = Dataset::digits(20, &DigitStyle::small(), 1);
        let honest = HonestClient::new(5, spec(), data.clone(), 10, 1);
        let mut attacker = ScalingAttacker::new(HonestClient::new(5, spec(), data, 10, 1), -2.0);
        let mut honest = honest;
        let params = vec![0.01; spec().param_count()];
        let g_honest = honest.gradient(&params, 0);
        let g_attack = attacker.gradient(&params, 0);
        for (a, h) in g_attack.iter().zip(&g_honest) {
            assert!((a + 2.0 * h).abs() < 1e-6);
        }
        assert_eq!(attacker.id(), 5);
        assert_eq!(attacker.weight(), 20.0);
    }
}
