//! Backdoor (trigger) poisoning (§V-A2).
//!
//! The adversary stamps a small pixel trigger — the paper uses a 3×3 black
//! square — onto a fraction of its training images and relabels them to a
//! target class. A backdoored model behaves normally on clean inputs but
//! predicts the target class whenever the trigger appears.

use fuiov_data::Dataset;
use fuiov_tensor::rng::{rng_for, streams};
use rand::seq::SliceRandom;

/// Where the trigger patch is stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    /// Top-left corner of the image.
    TopLeft,
    /// Bottom-right corner of the image.
    BottomRight,
}

/// A square pixel-patch trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trigger {
    /// Patch side length in pixels (paper: 3).
    pub size: usize,
    /// Pixel value written into every channel (paper: black = 0; we use
    /// an explicit value so light-background datasets can use 1.0).
    pub value: f32,
    /// Placement corner.
    pub corner: Corner,
}

impl Trigger {
    /// The paper's 3×3 black-square trigger in the bottom-right corner.
    pub fn paper_default() -> Self {
        Trigger {
            size: 3,
            value: 0.0,
            corner: Corner::BottomRight,
        }
    }

    /// Stamps the trigger onto one flat CHW sample.
    ///
    /// # Panics
    ///
    /// Panics if the trigger is larger than the image or the feature
    /// length is inconsistent with `(c, h, w)`.
    pub fn stamp(&self, features: &mut [f32], shape: (usize, usize, usize)) {
        let (c, h, w) = shape;
        assert_eq!(
            features.len(),
            c * h * w,
            "Trigger::stamp: feature length mismatch"
        );
        assert!(
            self.size <= h && self.size <= w,
            "Trigger::stamp: trigger exceeds image"
        );
        let (y0, x0) = match self.corner {
            Corner::TopLeft => (0, 0),
            Corner::BottomRight => (h - self.size, w - self.size),
        };
        for ch in 0..c {
            for dy in 0..self.size {
                for dx in 0..self.size {
                    features[(ch * h + y0 + dy) * w + x0 + dx] = self.value;
                }
            }
        }
    }
}

/// Specification of a backdoor attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backdoor {
    /// The trigger patch.
    pub trigger: Trigger,
    /// Class the trigger should elicit (paper: 2).
    pub target_class: usize,
    /// Fraction of the attacker's samples poisoned.
    pub fraction: f32,
}

impl Backdoor {
    /// The paper's configuration: 3×3 trigger, target class 2, with the
    /// poison fraction as a parameter (the paper poisons "a random
    /// selection").
    pub fn paper_default(fraction: f32) -> Self {
        Backdoor {
            trigger: Trigger::paper_default(),
            target_class: 2,
            fraction,
        }
    }

    /// Poisons `data` in place (stamp + relabel); returns poisoned indices.
    ///
    /// # Panics
    ///
    /// Panics if the target class is out of range or `fraction` is outside
    /// `[0, 1]`.
    pub fn poison(&self, data: &mut Dataset, seed: u64) -> Vec<usize> {
        assert!(
            self.target_class < data.num_classes(),
            "Backdoor: target class out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "Backdoor: fraction must be in [0, 1]"
        );
        let shape = data.shape();
        let mut candidates: Vec<usize> = (0..data.len()).collect();
        candidates.shuffle(&mut rng_for(seed, streams::ATTACK + 1));
        let n = ((candidates.len() as f32) * self.fraction).round() as usize;
        let chosen = &candidates[..n.min(candidates.len())];
        for &i in chosen {
            self.trigger.stamp(data.features_mut(i), shape);
            data.set_label(i, self.target_class);
        }
        chosen.to_vec()
    }

    /// Builds the triggered test set used to measure attack success:
    /// every sample *not already* of the target class gets the trigger,
    /// keeping its true label (the attack succeeds when the model predicts
    /// `target_class` anyway).
    pub fn triggered_test_set(&self, clean: &Dataset) -> Dataset {
        let shape = clean.shape();
        let keep: Vec<usize> = (0..clean.len())
            .filter(|&i| clean.label(i) != self.target_class)
            .collect();
        let mut out = clean.subset(&keep);
        for i in 0..out.len() {
            self.trigger.stamp(out.features_mut(i), shape);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;

    fn data() -> Dataset {
        Dataset::digits(40, &DigitStyle::small(), 2)
    }

    #[test]
    fn stamp_writes_patch_bottom_right() {
        let mut features = vec![0.5f32; 12 * 12];
        let t = Trigger {
            size: 3,
            value: 1.0,
            corner: Corner::BottomRight,
        };
        t.stamp(&mut features, (1, 12, 12));
        assert_eq!(features[12 * 12 - 1], 1.0); // bottom-right pixel
        assert_eq!(features[(9) * 12 + 9], 1.0); // patch corner
        assert_eq!(features[0], 0.5); // far corner untouched
    }

    #[test]
    fn stamp_top_left_multichannel() {
        let mut features = vec![0.5f32; 2 * 4 * 4];
        let t = Trigger {
            size: 2,
            value: 0.0,
            corner: Corner::TopLeft,
        };
        t.stamp(&mut features, (2, 4, 4));
        assert_eq!(features[0], 0.0);
        assert_eq!(features[16], 0.0); // second channel
        assert_eq!(features[3], 0.5);
    }

    #[test]
    fn poison_relabels_and_stamps() {
        let mut d = data();
        let attack = Backdoor::paper_default(0.5);
        let poisoned = attack.poison(&mut d, 0);
        assert_eq!(poisoned.len(), 20);
        for &i in &poisoned {
            assert_eq!(d.label(i), 2);
            // Bottom-right pixel is the trigger value.
            assert_eq!(*d.features(i).last().unwrap(), 0.0);
        }
    }

    #[test]
    fn triggered_test_set_excludes_target_class() {
        let d = data();
        let attack = Backdoor::paper_default(1.0);
        let test = attack.triggered_test_set(&d);
        assert_eq!(test.len(), 36); // 40 − 4 samples of class 2
        for i in 0..test.len() {
            assert_ne!(test.label(i), 2);
            assert_eq!(*test.features(i).last().unwrap(), 0.0);
        }
    }

    #[test]
    fn poison_is_deterministic() {
        let mut a = data();
        let mut b = data();
        let attack = Backdoor::paper_default(0.3);
        assert_eq!(attack.poison(&mut a, 9), attack.poison(&mut b, 9));
    }

    #[test]
    #[should_panic(expected = "trigger exceeds image")]
    fn oversized_trigger_rejected() {
        let mut features = vec![0.0f32; 4];
        Trigger {
            size: 3,
            value: 0.0,
            corner: Corner::TopLeft,
        }
        .stamp(&mut features, (1, 2, 2));
    }
}
