//! Model-replacement attack (Bagdasaryan et al., 2020).
//!
//! The strongest classical model-poisoning attacker: instead of nudging
//! the global model, it reports the gradient that — after FedAvg — moves
//! the global model *directly onto* an attacker-chosen target:
//!
//! ```text
//! g = boost · (w_global − w_target) / η
//! ```
//!
//! With `boost` equal to the inverse of the attacker's aggregation share,
//! one round suffices to replace the global model. Against this attacker,
//! detection-based defences often fail, which is the paper's §I argument
//! for unlearning as the *post-hoc* defence: once detected — however late
//! — every one of its updates can be erased by backtracking.

use fuiov_fl::Client;
use fuiov_storage::{ClientId, Round};
use fuiov_tensor::vector;

/// A client that executes the model-replacement attack.
pub struct ModelReplacement {
    id: ClientId,
    weight: f32,
    target: Vec<f32>,
    boost: f32,
    lr: f32,
}

impl std::fmt::Debug for ModelReplacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelReplacement")
            .field("id", &self.id)
            .field("boost", &self.boost)
            .field("target_dim", &self.target.len())
            .finish()
    }
}

impl ModelReplacement {
    /// Creates the attacker.
    ///
    /// - `weight`: the dataset size it *claims* (its FedAvg share);
    /// - `target`: the model it wants installed;
    /// - `boost`: scaling factor (set to `total_weight / weight` for
    ///   single-round replacement);
    /// - `lr`: the server's learning rate (assumed known, as in the
    ///   original attack).
    ///
    /// # Panics
    ///
    /// Panics if `weight`, `boost` or `lr` are not strictly positive, or
    /// the target is empty.
    pub fn new(id: ClientId, weight: f32, target: Vec<f32>, boost: f32, lr: f32) -> Self {
        assert!(weight > 0.0, "ModelReplacement: weight must be positive");
        assert!(boost > 0.0, "ModelReplacement: boost must be positive");
        assert!(lr > 0.0, "ModelReplacement: lr must be positive");
        assert!(!target.is_empty(), "ModelReplacement: empty target");
        ModelReplacement {
            id,
            weight,
            target,
            boost,
            lr,
        }
    }
}

impl Client for ModelReplacement {
    fn id(&self) -> ClientId {
        self.id
    }

    fn weight(&self) -> f32 {
        self.weight
    }

    fn gradient(&mut self, params: &[f32], _round: Round) -> Vec<f32> {
        assert_eq!(
            params.len(),
            self.target.len(),
            "ModelReplacement: dimension mismatch"
        );
        // w_next = w − η·(share·g) should equal target when g is scaled by
        // the inverse share: g = boost·(w − target)/η.
        let mut g = vector::sub(params, &self.target);
        vector::scale(self.boost / self.lr, &mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_fl::aggregate::aggregate;
    use fuiov_fl::AggregationRule;

    #[test]
    fn single_round_replacement_under_fedavg() {
        let lr = 0.1f32;
        let w = vec![0.0f32; 4];
        let target = vec![1.0f32, -1.0, 2.0, 0.5];
        // Honest clients report zero gradients; attacker has share 1/5.
        let honest: Vec<Vec<f32>> = vec![vec![0.0; 4]; 4];
        let mut attacker = ModelReplacement::new(9, 1.0, target.clone(), 5.0, lr);
        let g_attack = attacker.gradient(&w, 0);

        let mut grads = honest;
        grads.push(g_attack);
        let weights = vec![1.0f32; 5];
        let agg = aggregate(AggregationRule::FedAvg, &grads, &weights);
        let mut w_next = w;
        vector::axpy(-lr, &agg, &mut w_next);
        assert!(
            vector::l2_distance(&w_next, &target) < 1e-4,
            "global model should be replaced: {w_next:?}"
        );
    }

    #[test]
    fn median_blunts_the_replacement() {
        let lr = 0.1f32;
        let w = vec![0.0f32; 4];
        let target = vec![10.0f32; 4];
        let honest: Vec<Vec<f32>> = vec![vec![0.0; 4]; 4];
        let mut attacker = ModelReplacement::new(9, 1.0, target, 5.0, lr);
        let g_attack = attacker.gradient(&w, 0);
        let mut grads = honest;
        grads.push(g_attack);
        let agg = aggregate(AggregationRule::CoordinateMedian, &grads, &[1.0; 5]);
        // Median of {0,0,0,0,huge} is 0 → model unmoved.
        assert!(vector::l2_norm(&agg) < 1e-6);
    }

    #[test]
    fn attacker_metadata() {
        let a = ModelReplacement::new(3, 7.0, vec![0.0], 2.0, 0.1);
        assert_eq!(a.id(), 3);
        assert_eq!(a.weight(), 7.0);
        assert!(format!("{a:?}").contains("boost"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let mut a = ModelReplacement::new(0, 1.0, vec![0.0; 2], 1.0, 0.1);
        let _ = a.gradient(&[0.0; 3], 0);
    }
}
