//! Binary serialisation of the training history.
//!
//! An RSU must survive restarts without losing the record that makes
//! unlearning possible. This module gives [`HistoryStore`] a compact,
//! versioned binary encoding: models as little-endian `f32`, gradient
//! directions in their packed 2-bit form (so the on-disk format keeps the
//! paper's storage savings).

use crate::direction::GradientDirection;
use crate::history::{DirectionRef, HistoryStore, Participation};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x4655_4853; // "FUHS"
const VERSION: u16 = 1;

/// Error decoding a serialised history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryDecodeError {
    /// Buffer ended before the declared contents.
    Truncated,
    /// Magic mismatch — not a FUIOV history blob.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
}

impl fmt::Display for HistoryDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryDecodeError::Truncated => write!(f, "history blob truncated"),
            HistoryDecodeError::BadMagic(m) => write!(f, "bad history magic {m:#010x}"),
            HistoryDecodeError::BadVersion(v) => write!(f, "unsupported history version {v}"),
        }
    }
}

impl Error for HistoryDecodeError {}

fn need(buf: &[u8], n: usize) -> Result<(), HistoryDecodeError> {
    if buf.len() < n {
        Err(HistoryDecodeError::Truncated)
    } else {
        Ok(())
    }
}

/// Serialises a history store to a self-describing byte buffer.
///
/// ```
/// use fuiov_storage::{HistoryStore, serialize};
///
/// let mut h = HistoryStore::new(1e-6);
/// h.record_model(0, vec![1.0, 2.0]);
/// h.record_join(3, 0);
/// h.record_gradient(0, 3, &[0.5, -0.5]);
/// let blob = serialize::encode_history(&h);
/// let back = serialize::decode_history(&blob)?;
/// assert_eq!(back.model(0), h.model(0));
/// assert_eq!(back.direction(0, 3), h.direction(0, 3));
/// # Ok::<(), fuiov_storage::serialize::HistoryDecodeError>(())
/// ```
pub fn encode_history(h: &HistoryStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_f32_le(h.delta());

    // Models.
    let rounds = h.rounds();
    buf.put_u32_le(rounds.len() as u32);
    for r in &rounds {
        let m = h.model(*r).expect("round listed");
        buf.put_u64_le(*r as u64);
        buf.put_u32_le(m.len() as u32);
        for v in m.iter() {
            buf.put_f32_le(*v);
        }
    }

    // Directions (packed form, per round × client).
    let mut entries: Vec<(usize, usize, DirectionRef)> = Vec::new();
    for r in &rounds {
        for c in h.clients_in_round(*r) {
            if let Some(d) = h.direction(*r, c) {
                entries.push((*r, c, d));
            }
        }
    }
    buf.put_u32_le(entries.len() as u32);
    for (r, c, d) in entries {
        buf.put_u64_le(r as u64);
        buf.put_u64_le(c as u64);
        buf.put_u32_le(d.len() as u32);
        let signs = d.to_signs();
        // Re-pack through the canonical constructor to stay format-stable.
        let packed = GradientDirection::from_signs(&signs);
        buf.put_u32_le(packed.byte_size() as u32);
        buf.put_slice(&packed_bytes(&packed, &signs));
    }

    // Participation + weights.
    let clients = h.clients();
    buf.put_u32_le(clients.len() as u32);
    for c in clients {
        let p = h.participation(c).expect("client listed");
        buf.put_u64_le(c as u64);
        buf.put_u64_le(p.joined as u64);
        match p.left {
            Some(l) => {
                buf.put_u8(1);
                buf.put_u64_le(l as u64);
            }
            None => buf.put_u8(0),
        }
        buf.put_f32_le(h.weight(c));
    }

    buf.freeze()
}

/// The 2-bit packed byte image of a direction vector.
fn packed_bytes(_d: &GradientDirection, signs: &[i8]) -> Vec<u8> {
    // The packing layout is an implementation detail of `direction`; we
    // re-derive it here from the public sign interface so the wire format
    // is defined by this module alone: 2 bits/element, 4 per byte,
    // little-bit-endian, 00=0 01=+1 10=−1.
    let mut out = vec![0u8; signs.len().div_ceil(4)];
    for (i, &s) in signs.iter().enumerate() {
        let code: u8 = match s {
            0 => 0b00,
            1 => 0b01,
            -1 => 0b10,
            other => unreachable!("invalid sign {other}"),
        };
        out[i / 4] |= code << ((i % 4) * 2);
    }
    out
}

fn unpack_bytes(bytes: &[u8], len: usize) -> Vec<i8> {
    (0..len)
        .map(|i| match (bytes[i / 4] >> ((i % 4) * 2)) & 0b11 {
            0b00 => 0,
            0b01 => 1,
            0b10 => -1,
            _ => 0,
        })
        .collect()
}

/// Decodes a history serialised by [`encode_history`].
///
/// # Errors
///
/// Returns [`HistoryDecodeError`] on truncation, bad magic or version.
pub fn decode_history(mut buf: &[u8]) -> Result<HistoryStore, HistoryDecodeError> {
    need(buf, 10)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(HistoryDecodeError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(HistoryDecodeError::BadVersion(version));
    }
    let delta = buf.get_f32_le();
    let mut h = HistoryStore::new(delta);

    need(buf, 4)?;
    let n_models = buf.get_u32_le() as usize;
    for _ in 0..n_models {
        need(buf, 12)?;
        let round = buf.get_u64_le() as usize;
        let len = buf.get_u32_le() as usize;
        need(buf, len * 4)?;
        let params: Vec<f32> = (0..len).map(|_| buf.get_f32_le()).collect();
        h.record_model(round, params);
    }

    need(buf, 4)?;
    let n_dirs = buf.get_u32_le() as usize;
    let mut raw_dirs: Vec<(usize, usize, Vec<i8>)> = Vec::with_capacity(n_dirs);
    for _ in 0..n_dirs {
        need(buf, 24)?;
        let round = buf.get_u64_le() as usize;
        let client = buf.get_u64_le() as usize;
        let len = buf.get_u32_le() as usize;
        let nbytes = buf.get_u32_le() as usize;
        need(buf, nbytes)?;
        let bytes = &buf[..nbytes];
        let signs = unpack_bytes(bytes, len);
        buf.advance(nbytes);
        raw_dirs.push((round, client, signs));
    }

    need(buf, 4)?;
    let n_clients = buf.get_u32_le() as usize;
    for _ in 0..n_clients {
        need(buf, 17)?;
        let client = buf.get_u64_le() as usize;
        let joined = buf.get_u64_le() as usize;
        let has_left = buf.get_u8() == 1;
        h.record_join(client, joined);
        if has_left {
            need(buf, 8)?;
            let left = buf.get_u64_le() as usize;
            h.record_leave(client, left);
        }
        need(buf, 4)?;
        let weight = buf.get_f32_le();
        if weight > 0.0 && weight.is_finite() {
            h.set_weight(client, weight);
        }
    }

    // Record directions after participation so join rounds reflect the
    // recorded participation, not first-gradient order. Signs are restored
    // verbatim (no re-quantisation), so any δ round-trips losslessly.
    for (round, client, signs) in raw_dirs {
        h.record_direction(round, client, GradientDirection::from_signs(&signs));
    }

    Ok(h)
}

/// Round-trip description of a participation record, used by tests and
/// diagnostics.
pub fn participation_summary(p: Participation) -> String {
    match p.left {
        Some(l) => format!("joined {} left {}", p.joined, l),
        None => format!("joined {}", p.joined),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_history() -> HistoryStore {
        let mut h = HistoryStore::new(1e-6);
        h.record_model(0, vec![0.0, 1.0, -1.0]);
        h.record_model(1, vec![0.5, 0.5, 0.5]);
        h.record_join(2, 0);
        h.record_join(7, 1);
        h.record_leave(7, 1);
        h.set_weight(2, 30.0);
        h.record_gradient(0, 2, &[0.5, -0.5, 0.0]);
        h.record_gradient(1, 2, &[0.1, 0.0, -0.1]);
        h.record_gradient(1, 7, &[-0.3, 0.3, 0.0]);
        h
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = sample_history();
        let blob = encode_history(&h);
        let back = decode_history(&blob).unwrap();
        assert_eq!(back.delta(), h.delta());
        assert_eq!(back.rounds(), h.rounds());
        for r in h.rounds() {
            assert_eq!(back.model(r), h.model(r));
        }
        assert_eq!(back.clients(), h.clients());
        for c in h.clients() {
            assert_eq!(back.participation(c), h.participation(c));
            assert_eq!(back.weight(c), h.weight(c));
        }
        assert_eq!(
            back.direction(1, 7).unwrap().to_signs(),
            h.direction(1, 7).unwrap().to_signs()
        );
        assert_eq!(back.direction_bytes(), h.direction_bytes());
    }

    #[test]
    fn empty_history_roundtrips() {
        let h = HistoryStore::new(0.5);
        let back = decode_history(&encode_history(&h)).unwrap();
        assert_eq!(back.delta(), 0.5);
        assert!(back.rounds().is_empty());
        assert!(back.clients().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_history(&[1, 2, 3]).unwrap_err(),
            HistoryDecodeError::Truncated
        );
        let mut blob = encode_history(&sample_history()).to_vec();
        blob[0] ^= 0xFF;
        assert!(matches!(
            decode_history(&blob),
            Err(HistoryDecodeError::BadMagic(_))
        ));
        let mut blob2 = encode_history(&sample_history()).to_vec();
        blob2[4] = 0xEE;
        assert!(matches!(
            decode_history(&blob2),
            Err(HistoryDecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let blob = encode_history(&sample_history());
        for cut in [5usize, 11, 20, blob.len() - 1] {
            assert_eq!(
                decode_history(&blob[..cut]).unwrap_err(),
                HistoryDecodeError::Truncated,
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn participation_summary_formats() {
        assert_eq!(
            participation_summary(Participation {
                joined: 3,
                left: None
            }),
            "joined 3"
        );
        assert_eq!(
            participation_summary(Participation {
                joined: 3,
                left: Some(9)
            }),
            "joined 3 left 9"
        );
    }
}
