//! Server-side training history.
//!
//! The paper's server records, during normal FL training (§IV):
//!
//! 1. the global model parameters `w_t` of every round,
//! 2. the *direction* of every client's gradient in every round
//!    (quantised with threshold `δ`, packed 2 bits/element), and
//! 3. which rounds each vehicle participated in (its join round `F` is
//!    what unlearning backtracks to).
//!
//! [`HistoryStore`] is that record. [`FullGradientStore`] is the same
//! record with *full* `f32` gradients — what FedRecover-style baselines
//! need — and exists mainly so the storage-overhead experiment can compare
//! the two byte-for-byte.

use crate::direction::GradientDirection;
use std::collections::BTreeMap;

/// Identifier of a client (vehicle).
pub type ClientId = usize;

/// Federated round number (0-based).
pub type Round = usize;

/// A client's membership interval in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participation {
    /// Round in which the client first participated.
    pub joined: Round,
    /// Round after which the client left, if it has left.
    pub left: Option<Round>,
}

/// History of models, gradient directions and participation.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    delta: f32,
    dim: Option<usize>,
    models: BTreeMap<Round, Vec<f32>>,
    directions: BTreeMap<Round, BTreeMap<ClientId, GradientDirection>>,
    participation: BTreeMap<ClientId, Participation>,
    weights: BTreeMap<ClientId, f32>,
}

impl HistoryStore {
    /// Creates an empty store with sign threshold `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or NaN.
    pub fn new(delta: f32) -> Self {
        assert!(delta >= 0.0, "HistoryStore::new: delta must be >= 0");
        HistoryStore {
            delta,
            dim: None,
            models: BTreeMap::new(),
            directions: BTreeMap::new(),
            participation: BTreeMap::new(),
            weights: BTreeMap::new(),
        }
    }

    /// The sign threshold δ in force.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Model dimension, once the first model/gradient has been recorded.
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    fn check_dim(&mut self, len: usize, what: &str) {
        match self.dim {
            None => self.dim = Some(len),
            Some(d) => assert_eq!(d, len, "HistoryStore: {what} dimension mismatch"),
        }
    }

    /// Records the global model at the *start* of `round`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_model(&mut self, round: Round, params: Vec<f32>) {
        self.check_dim(params.len(), "model");
        self.models.insert(round, params);
    }

    /// Quantises and records a client's gradient for `round`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_gradient(&mut self, round: Round, client: ClientId, grad: &[f32]) {
        self.check_dim(grad.len(), "gradient");
        let dir = GradientDirection::quantize(grad, self.delta);
        self.directions.entry(round).or_default().insert(client, dir);
    }

    /// Records an already-quantised direction for `(round, client)` —
    /// used when restoring a serialised history, where re-quantisation
    /// through the store's own δ would be lossy for δ ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_direction(&mut self, round: Round, client: ClientId, dir: GradientDirection) {
        self.check_dim(dir.len(), "direction");
        self.directions.entry(round).or_default().insert(client, dir);
    }

    /// Records that `client` joined at `round` (first participation). A
    /// second call for the same client is ignored — the paper's `F` is the
    /// *first* join round.
    pub fn record_join(&mut self, client: ClientId, round: Round) {
        self.participation
            .entry(client)
            .or_insert(Participation { joined: round, left: None });
    }

    /// Records that `client` left after `round`.
    ///
    /// # Panics
    ///
    /// Panics if the client never joined.
    pub fn record_leave(&mut self, client: ClientId, round: Round) {
        let p = self
            .participation
            .get_mut(&client)
            .expect("record_leave: client never joined");
        p.left = Some(round);
    }

    /// Removes the model recorded for `round`, returning it if present.
    ///
    /// Models the RSU losing a checkpoint (disk corruption, eviction).
    /// Recovery paths must then either fail with a typed error or
    /// reconstruct the round via [`HistoryStore::model_interpolated`] —
    /// the contract `fuiov-testkit`'s fault matrix pins.
    pub fn remove_model(&mut self, round: Round) -> Option<Vec<f32>> {
        self.models.remove(&round)
    }

    /// Removes the direction recorded for `(round, client)`, returning it
    /// if present. Models a lost or never-persisted upload.
    pub fn remove_direction(&mut self, round: Round, client: ClientId) -> Option<GradientDirection> {
        self.directions.get_mut(&round)?.remove(&client)
    }

    /// Sets a client's FedAvg weight (its dataset size `‖Dᵢ‖`).
    ///
    /// # Panics
    ///
    /// Panics if the weight is not strictly positive and finite.
    pub fn set_weight(&mut self, client: ClientId, weight: f32) {
        assert!(weight > 0.0 && weight.is_finite(), "set_weight: invalid weight");
        self.weights.insert(client, weight);
    }

    /// A client's FedAvg weight, defaulting to `1.0` if never set.
    pub fn weight(&self, client: ClientId) -> f32 {
        self.weights.get(&client).copied().unwrap_or(1.0)
    }

    /// Global model recorded for `round`.
    pub fn model(&self, round: Round) -> Option<&[f32]> {
        self.models.get(&round).map(Vec::as_slice)
    }

    /// Gradient direction recorded for `(round, client)`.
    pub fn direction(&self, round: Round, client: ClientId) -> Option<&GradientDirection> {
        self.directions.get(&round)?.get(&client)
    }

    /// Clients that submitted a gradient in `round`, ascending.
    pub fn clients_in_round(&self, round: Round) -> Vec<ClientId> {
        self.directions
            .get(&round)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// All rounds with a recorded model, ascending.
    pub fn rounds(&self) -> Vec<Round> {
        self.models.keys().copied().collect()
    }

    /// Highest recorded round, if any.
    pub fn latest_round(&self) -> Option<Round> {
        self.models.keys().next_back().copied()
    }

    /// A client's participation record.
    pub fn participation(&self, client: ClientId) -> Option<Participation> {
        self.participation.get(&client).copied()
    }

    /// A client's join round `F`, if known.
    pub fn join_round(&self, client: ClientId) -> Option<Round> {
        self.participation.get(&client).map(|p| p.joined)
    }

    /// All clients ever seen, ascending.
    pub fn clients(&self) -> Vec<ClientId> {
        self.participation.keys().copied().collect()
    }

    /// Bytes used by packed gradient directions.
    pub fn direction_bytes(&self) -> usize {
        self.directions
            .values()
            .flat_map(|m| m.values())
            .map(GradientDirection::byte_size)
            .sum()
    }

    /// Bytes the same gradients would use stored as full `f32` vectors —
    /// what FedRecover/FedEraser-style servers must keep.
    pub fn full_gradient_bytes_equivalent(&self) -> usize {
        self.directions
            .values()
            .flat_map(|m| m.values())
            .map(GradientDirection::full_f32_byte_size)
            .sum()
    }

    /// Bytes used by stored models (identical in both schemes).
    pub fn model_bytes(&self) -> usize {
        self.models.values().map(|m| m.len() * 4).sum()
    }

    /// Rebuilds this history with a different sign threshold `delta`,
    /// re-quantising gradients from a full-precision record.
    ///
    /// Used by the δ-sweep experiment (paper Fig. 3): one training run with
    /// full gradients kept can be re-quantised at every candidate δ instead
    /// of retraining per δ. Models, participation and weights are copied;
    /// only `(round, client)` gradients present in `full` are re-quantised
    /// (entries missing from `full` are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn requantized(&self, full: &FullGradientStore, delta: f32) -> HistoryStore {
        let mut out = HistoryStore::new(delta);
        for r in self.rounds() {
            out.record_model(r, self.model(r).expect("round listed").to_vec());
        }
        for c in self.clients() {
            let p = self.participation(c).expect("client listed");
            out.record_join(c, p.joined);
            if let Some(l) = p.left {
                out.record_leave(c, l);
            }
            if let Some(&w) = self.weights.get(&c) {
                out.set_weight(c, w);
            }
        }
        for (&round, clients) in &self.directions {
            for &client in clients.keys() {
                if let Some(g) = full.gradient(round, client) {
                    out.record_gradient(round, client, g);
                }
            }
        }
        out
    }

    /// Returns a copy with global models kept only every `keep_every`
    /// rounds (checkpoint thinning — the direction Wei et al. \[32\] take
    /// for model storage). The earliest and latest recorded rounds are
    /// always kept, and so is every client's join round — those are the
    /// backtracking targets, so the server pins them. Directions,
    /// participation and weights are copied unchanged.
    ///
    /// Missing intermediate models can be reconstructed with
    /// [`HistoryStore::model_interpolated`].
    ///
    /// # Panics
    ///
    /// Panics if `keep_every == 0`.
    pub fn thinned_models(&self, keep_every: usize) -> HistoryStore {
        assert!(keep_every > 0, "thinned_models: keep_every must be positive");
        let mut out = self.clone();
        let rounds = self.rounds();
        let (Some(&first), Some(&last)) = (rounds.first(), rounds.last()) else {
            return out;
        };
        let join_rounds: std::collections::BTreeSet<Round> =
            self.participation.values().map(|p| p.joined).collect();
        out.models.retain(|&r, _| {
            r == first || r == last || (r - first) % keep_every == 0 || join_rounds.contains(&r)
        });
        out
    }

    /// The model at `round`, linearly interpolated between the nearest
    /// stored checkpoints when the exact round was thinned away. Returns
    /// `None` outside the stored range.
    pub fn model_interpolated(&self, round: Round) -> Option<Vec<f32>> {
        if let Some(exact) = self.model(round) {
            return Some(exact.to_vec());
        }
        let before = self.models.range(..round).next_back()?;
        let after = self.models.range(round + 1..).next()?;
        let span = (after.0 - before.0) as f32;
        let t = (round - before.0) as f32 / span;
        Some(fuiov_tensor::vector::lerp(before.1, after.1, t))
    }

    /// Gradient-storage savings ratio vs full `f32` storage.
    pub fn gradient_savings_ratio(&self) -> f64 {
        let full = self.full_gradient_bytes_equivalent();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.direction_bytes() as f64 / full as f64
    }
}

/// Full-precision history used by the FedRecover-style baselines: same
/// bookkeeping, but gradients are kept as `f32` vectors.
#[derive(Debug, Clone, Default)]
pub struct FullGradientStore {
    gradients: BTreeMap<Round, BTreeMap<ClientId, Vec<f32>>>,
}

impl FullGradientStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client's full gradient for `round`.
    pub fn record(&mut self, round: Round, client: ClientId, grad: Vec<f32>) {
        self.gradients.entry(round).or_default().insert(client, grad);
    }

    /// The recorded gradient, if any.
    pub fn gradient(&self, round: Round, client: ClientId) -> Option<&[f32]> {
        self.gradients.get(&round)?.get(&client).map(Vec::as_slice)
    }

    /// Bytes used by the stored gradients.
    pub fn bytes(&self) -> usize {
        self.gradients
            .values()
            .flat_map(|m| m.values())
            .map(|g| g.len() * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_two_rounds() -> HistoryStore {
        let mut h = HistoryStore::new(1e-6);
        h.record_model(0, vec![0.0; 4]);
        h.record_model(1, vec![0.1; 4]);
        h.record_join(7, 0);
        h.record_join(8, 1);
        h.record_gradient(0, 7, &[0.5, -0.5, 0.0, 0.1]);
        h.record_gradient(1, 7, &[0.5, -0.5, 0.0, 0.1]);
        h.record_gradient(1, 8, &[-0.2, 0.2, 0.3, -0.3]);
        h
    }

    #[test]
    fn records_and_reads_back() {
        let h = store_with_two_rounds();
        assert_eq!(h.model(1), Some(&[0.1f32; 4][..]));
        assert_eq!(h.direction(1, 8).unwrap().to_signs(), vec![-1, 1, 1, -1]);
        assert_eq!(h.clients_in_round(1), vec![7, 8]);
        assert_eq!(h.rounds(), vec![0, 1]);
        assert_eq!(h.latest_round(), Some(1));
    }

    #[test]
    fn join_round_tracks_first_participation() {
        let mut h = store_with_two_rounds();
        h.record_join(7, 5); // duplicate join must not move F
        assert_eq!(h.join_round(7), Some(0));
        assert_eq!(h.join_round(8), Some(1));
        assert_eq!(h.join_round(99), None);
        assert_eq!(h.clients(), vec![7, 8]);
    }

    #[test]
    fn leave_is_recorded() {
        let mut h = store_with_two_rounds();
        h.record_leave(7, 1);
        assert_eq!(h.participation(7).unwrap().left, Some(1));
        assert_eq!(h.participation(8).unwrap().left, None);
    }

    #[test]
    #[should_panic(expected = "never joined")]
    fn leave_without_join_panics() {
        let mut h = HistoryStore::new(0.0);
        h.record_leave(3, 1);
    }

    #[test]
    fn weights_default_to_one() {
        let mut h = store_with_two_rounds();
        assert_eq!(h.weight(7), 1.0);
        h.set_weight(7, 32.0);
        assert_eq!(h.weight(7), 32.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_is_caught() {
        let mut h = store_with_two_rounds();
        h.record_gradient(2, 7, &[1.0, 2.0]);
    }

    #[test]
    fn storage_accounting() {
        let h = store_with_two_rounds();
        // 3 gradients × 4 elements: packed 1 byte each, full 16 bytes each.
        assert_eq!(h.direction_bytes(), 3);
        assert_eq!(h.full_gradient_bytes_equivalent(), 48);
        assert_eq!(h.model_bytes(), 32);
        assert!((h.gradient_savings_ratio() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn empty_store_savings_is_zero() {
        let h = HistoryStore::new(0.0);
        assert_eq!(h.gradient_savings_ratio(), 0.0);
        assert_eq!(h.latest_round(), None);
        assert!(h.clients_in_round(0).is_empty());
    }

    #[test]
    fn thinning_keeps_endpoints_and_stride() {
        let mut h = HistoryStore::new(0.0);
        for t in 0..=10 {
            h.record_model(t, vec![t as f32; 2]);
        }
        let thin = h.thinned_models(4);
        assert_eq!(thin.rounds(), vec![0, 4, 8, 10]);
        // Join rounds are pinned.
        let mut h2 = HistoryStore::new(0.0);
        for t in 0..=10 {
            h2.record_model(t, vec![t as f32; 2]);
        }
        h2.record_join(7, 3);
        assert_eq!(h2.thinned_models(4).rounds(), vec![0, 3, 4, 8, 10]);
        // Directions/participation untouched (none recorded here).
        assert_eq!(thin.delta(), h.delta());
    }

    #[test]
    fn interpolation_reconstructs_linear_trajectories_exactly() {
        let mut h = HistoryStore::new(0.0);
        for t in 0..=10 {
            h.record_model(t, vec![t as f32, 2.0 * t as f32]);
        }
        let thin = h.thinned_models(5);
        for t in 0..=10 {
            let m = thin.model_interpolated(t).expect("in range");
            assert!(
                (m[0] - t as f32).abs() < 1e-5 && (m[1] - 2.0 * t as f32).abs() < 1e-5,
                "round {t}: {m:?}"
            );
        }
        assert!(thin.model_interpolated(11).is_none());
    }

    #[test]
    fn interpolation_prefers_exact_models() {
        let mut h = HistoryStore::new(0.0);
        h.record_model(0, vec![0.0]);
        h.record_model(5, vec![100.0]);
        assert_eq!(h.model_interpolated(5).unwrap(), vec![100.0]);
        let mid = h.model_interpolated(2).unwrap();
        assert!((mid[0] - 40.0).abs() < 1e-4);
    }

    #[test]
    fn requantized_preserves_structure_with_new_delta() {
        let mut h = store_with_two_rounds();
        h.set_weight(7, 3.0);
        h.record_leave(8, 1);
        let mut full = FullGradientStore::new();
        full.record(0, 7, vec![0.5, -0.5, 0.0, 0.1]);
        full.record(1, 7, vec![0.5, -0.5, 0.0, 0.1]);
        full.record(1, 8, vec![-0.2, 0.2, 0.3, -0.3]);

        // Huge delta: everything quantises to zero.
        let r = h.requantized(&full, 10.0);
        assert_eq!(r.delta(), 10.0);
        assert_eq!(r.rounds(), h.rounds());
        assert_eq!(r.join_round(8), Some(1));
        assert_eq!(r.participation(8).unwrap().left, Some(1));
        assert_eq!(r.weight(7), 3.0);
        assert_eq!(r.direction(1, 8).unwrap().to_signs(), vec![0, 0, 0, 0]);

        // Tiny delta: signs as before.
        let r2 = h.requantized(&full, 1e-9);
        assert_eq!(r2.direction(1, 8).unwrap().to_signs(), vec![-1, 1, 1, -1]);
    }

    #[test]
    fn requantized_drops_entries_missing_from_full_store() {
        let h = store_with_two_rounds();
        let full = FullGradientStore::new();
        let r = h.requantized(&full, 1e-6);
        assert!(r.direction(0, 7).is_none());
        assert_eq!(r.rounds(), h.rounds());
    }

    #[test]
    fn full_store_costs_16x_packed() {
        let mut full = FullGradientStore::new();
        full.record(0, 1, vec![0.1; 100]);
        assert_eq!(full.bytes(), 400);
        assert_eq!(full.gradient(0, 1).unwrap().len(), 100);
        assert!(full.gradient(1, 1).is_none());

        let mut packed = HistoryStore::new(1e-6);
        packed.record_gradient(0, 1, &vec![0.1; 100]);
        assert_eq!(packed.direction_bytes(), 25);
        assert_eq!(full.bytes() / packed.direction_bytes(), 16);
    }
}
