//! Server-side training history — tiered and memory-bounded.
//!
//! The paper's server records, during normal FL training (§IV):
//!
//! 1. the global model parameters `w_t` of every round,
//! 2. the *direction* of every client's gradient in every round
//!    (quantised with threshold `δ`, packed 2 bits/element), and
//! 3. which rounds each vehicle participated in (its join round `F` is
//!    what unlearning backtracks to).
//!
//! [`HistoryStore`] is that record, kept under a configurable in-memory
//! byte budget ([`TierConfig`]). Rounds live in one of two tiers:
//!
//! - **Hot** — decoded in memory (`Arc`-shared, so clones, caches and
//!   [`RoundView`] snapshots never copy the buffer), or
//! - **Spilled** — encoded into the append-only segment file
//!   ([`segment`](crate::segment)): models as a full `f32` keyframe
//!   every `keyframe_interval` rounds with varint-zigzag
//!   [`delta`](crate::delta) residuals between (losslessly, so replay is
//!   bitwise identical at any budget), directions as their packed 2-bit
//!   words verbatim.
//!
//! Spilled rounds decode back through a small LRU of recently used
//! rounds; replay walks the store through [`HistoryStore::round_view`]
//! (an `Arc` snapshot safe to hand to worker threads) and warms round
//! `t+1` with [`HistoryStore::prefetch`] while round `t` computes.
//!
//! [`FullGradientStore`] is the same record with *full* `f32` gradients —
//! what FedRecover-style baselines need — and exists mainly so the
//! storage-overhead experiment can compare the two byte-for-byte.

use crate::direction::GradientDirection;
use crate::segment::{self, SegmentDecodeError, SpillFile};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a client (vehicle).
pub type ClientId = usize;

/// Federated round number (0-based).
pub type Round = usize;

/// Rounds of decoded models/directions the per-store LRU keeps.
const CACHE_ROUNDS: usize = 4;

/// Default keyframe interval `k` (full `f32` model every `k` rounds).
pub const DEFAULT_KEYFRAME_INTERVAL: usize = 8;

/// A client's membership interval in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participation {
    /// Round in which the client first participated.
    pub joined: Round,
    /// Round after which the client left, if it has left.
    pub left: Option<Round>,
}

/// Storage-tiering knobs for a [`HistoryStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// In-memory byte budget for resident slots; `None` keeps everything
    /// hot (the pre-tiering behaviour). `Some(0)` forces every recorded
    /// round through the spill tier.
    pub budget_bytes: Option<usize>,
    /// Spill a full `f32` model keyframe every `k` rounds; rounds between
    /// spill as delta residuals against their window predecessor. `1`
    /// means every spilled model is a keyframe.
    pub keyframe_interval: usize,
}

impl TierConfig {
    /// Unbounded memory, default keyframe interval.
    pub fn unbounded() -> Self {
        TierConfig {
            budget_bytes: None,
            keyframe_interval: DEFAULT_KEYFRAME_INTERVAL,
        }
    }

    /// A bounded store: resident slots are spilled (coldest round first)
    /// once they exceed `budget_bytes`.
    pub fn bounded(budget_bytes: usize) -> Self {
        TierConfig {
            budget_bytes: Some(budget_bytes),
            ..Self::unbounded()
        }
    }

    /// Sets the keyframe interval (clamped to ≥ 1).
    pub fn with_keyframe_interval(mut self, k: usize) -> Self {
        self.keyframe_interval = k.max(1);
        self
    }

    /// Reads `FUIOV_HISTORY_BUDGET` (bytes; unset, unparsable or `0`
    /// means unbounded) and `FUIOV_KEYFRAME_INTERVAL` (default
    /// [`DEFAULT_KEYFRAME_INTERVAL`]). [`HistoryStore::new`] calls this,
    /// so every store created through the normal server path honours the
    /// environment knobs without any API change upstream.
    pub fn from_env() -> Self {
        Self::parse(
            std::env::var("FUIOV_HISTORY_BUDGET").ok().as_deref(),
            std::env::var("FUIOV_KEYFRAME_INTERVAL").ok().as_deref(),
        )
    }

    /// Pure parsing backend of [`TierConfig::from_env`] (testable without
    /// touching process environment).
    pub fn parse(budget: Option<&str>, keyframe: Option<&str>) -> Self {
        let budget_bytes = budget
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&b| b > 0);
        let keyframe_interval = keyframe
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map_or(DEFAULT_KEYFRAME_INTERVAL, |k| k.max(1));
        TierConfig {
            budget_bytes,
            keyframe_interval,
        }
    }
}

impl Default for TierConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Which tier a round's record currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Decoded and resident in memory.
    Hot,
    /// Encoded in the spill segment file.
    Spilled,
}

#[derive(Debug, Clone)]
enum ModelSlot {
    Hot(Arc<Vec<f32>>),
    Spilled {
        offset: u64,
        len: u32,
        base: Option<Round>,
    },
}

#[derive(Debug, Clone)]
enum DirSlot {
    Mem(Arc<BTreeMap<ClientId, GradientDirection>>),
    Spilled {
        offset: u64,
        len: u32,
        packed_bytes: usize,
        full_bytes: usize,
    },
}

#[derive(Debug)]
struct DecodeCache {
    cap: usize,
    models: Vec<(Round, Arc<Vec<f32>>)>,
    dirs: Vec<(Round, Arc<BTreeMap<ClientId, GradientDirection>>)>,
}

impl DecodeCache {
    fn new(cap: usize) -> Self {
        DecodeCache {
            cap,
            models: Vec::new(),
            dirs: Vec::new(),
        }
    }

    fn get_model(&mut self, round: Round) -> Option<Arc<Vec<f32>>> {
        let pos = self.models.iter().position(|(r, _)| *r == round)?;
        let entry = self.models.remove(pos);
        let v = Arc::clone(&entry.1);
        self.models.push(entry);
        Some(v)
    }

    fn put_model(&mut self, round: Round, v: Arc<Vec<f32>>) {
        self.models.retain(|(r, _)| *r != round);
        self.models.push((round, v));
        if self.models.len() > self.cap {
            self.models.remove(0);
        }
    }

    fn remove_model(&mut self, round: Round) {
        self.models.retain(|(r, _)| *r != round);
    }

    fn get_dirs(&mut self, round: Round) -> Option<Arc<BTreeMap<ClientId, GradientDirection>>> {
        let pos = self.dirs.iter().position(|(r, _)| *r == round)?;
        let entry = self.dirs.remove(pos);
        let v = Arc::clone(&entry.1);
        self.dirs.push(entry);
        Some(v)
    }

    fn put_dirs(&mut self, round: Round, v: Arc<BTreeMap<ClientId, GradientDirection>>) {
        self.dirs.retain(|(r, _)| *r != round);
        self.dirs.push((round, v));
        if self.dirs.len() > self.cap {
            self.dirs.remove(0);
        }
    }

    fn remove_dirs(&mut self, round: Round) {
        self.dirs.retain(|(r, _)| *r != round);
    }

    fn clear(&mut self) {
        self.models.clear();
        self.dirs.clear();
    }

    fn model_bytes(&self) -> usize {
        self.models.iter().map(|(_, v)| v.len() * 4).sum()
    }

    fn dir_bytes(&self) -> usize {
        self.dirs
            .iter()
            .map(|(_, m)| m.values().map(GradientDirection::byte_size).sum::<usize>())
            .sum()
    }
}

#[derive(Debug, Default)]
struct TierCounters {
    spill_writes: AtomicUsize,
    spill_loads: AtomicUsize,
    evictions: AtomicUsize,
    decode_errors: AtomicUsize,
}

/// Snapshot of a store's tier activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Records appended to the spill file.
    pub spill_writes: usize,
    /// Records read back from the spill file.
    pub spill_loads: usize,
    /// Budget-enforcement passes that moved at least one round cold.
    pub evictions: usize,
    /// Spill records that failed to decode (typed, never a panic).
    pub decode_errors: usize,
}

/// Borrow guard for a stored model: derefs to `&[f32]` whether the round
/// was hot (a plain borrow) or decoded out of the spill tier (an `Arc`
/// kept alive by the guard). Bind it first when you need a long-lived
/// slice: `let m = h.model(r); let w: &[f32] = m.as_deref().unwrap();`.
#[derive(Debug, Clone)]
pub enum ModelRef<'a> {
    /// Borrowed straight from a hot slot.
    Hot(&'a [f32]),
    /// Decoded from the spill tier, shared with the store's LRU.
    Cached(Arc<Vec<f32>>),
}

impl Deref for ModelRef<'_> {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        match self {
            ModelRef::Hot(s) => s,
            ModelRef::Cached(v) => v.as_slice(),
        }
    }
}

impl PartialEq for ModelRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

/// Borrow guard for a stored direction, mirroring [`ModelRef`].
#[derive(Debug, Clone)]
pub enum DirectionRef<'a> {
    /// Borrowed from a resident direction map.
    Mem(&'a GradientDirection),
    /// Decoded round map from the spill tier; the guard keeps it alive.
    Cached {
        /// The round's decoded direction map.
        map: Arc<BTreeMap<ClientId, GradientDirection>>,
        /// Which client this guard points at (checked at construction).
        client: ClientId,
    },
}

impl Deref for DirectionRef<'_> {
    type Target = GradientDirection;

    fn deref(&self) -> &GradientDirection {
        match self {
            DirectionRef::Mem(d) => d,
            DirectionRef::Cached { map, client } => {
                map.get(client).expect("client checked at construction")
            }
        }
    }
}

impl PartialEq for DirectionRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

/// An `Arc` snapshot of one round — the zero-copy unit replay consumes.
///
/// Construction decodes the round (through the LRU) at most once;
/// afterwards [`RoundView::model`] and [`RoundView::direction`] are plain
/// borrows, and the packed 2-bit direction words feed
/// [`GradientDirection::decode_axpy`]/[`GradientDirection::decode_into`]
/// directly — no intermediate `Vec<f32>` per client. The snapshot is
/// `Send + Sync`, so replay loops can hand it to pooled workers while the
/// store prefetches the next round.
#[derive(Debug, Clone)]
pub struct RoundView {
    round: Round,
    model: Option<Arc<Vec<f32>>>,
    dirs: Arc<BTreeMap<ClientId, GradientDirection>>,
}

impl RoundView {
    /// The round this view snapshots.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The round's global model, if recorded (and decodable).
    pub fn model(&self) -> Option<&[f32]> {
        self.model.as_deref().map(Vec::as_slice)
    }

    /// One client's packed gradient direction.
    pub fn direction(&self, client: ClientId) -> Option<&GradientDirection> {
        self.dirs.get(&client)
    }

    /// Clients with a direction in this round, ascending.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> + '_ {
        self.dirs.keys().copied()
    }

    /// `(client, direction)` pairs in ascending client order.
    pub fn directions(&self) -> impl Iterator<Item = (ClientId, &GradientDirection)> {
        self.dirs.iter().map(|(&c, d)| (c, d))
    }

    /// Number of clients with a direction in this round.
    pub fn n_clients(&self) -> usize {
        self.dirs.len()
    }
}

/// Iterator over the clients of one round (borrowed from a resident map,
/// or owned after a spill reload).
#[derive(Debug)]
pub struct ClientsIter<'a> {
    inner: ClientsIterInner<'a>,
}

#[derive(Debug)]
enum ClientsIterInner<'a> {
    Borrowed(std::collections::btree_map::Keys<'a, ClientId, GradientDirection>),
    Owned(std::vec::IntoIter<ClientId>),
}

impl Iterator for ClientsIter<'_> {
    type Item = ClientId;

    fn next(&mut self) -> Option<ClientId> {
        match &mut self.inner {
            ClientsIterInner::Borrowed(keys) => keys.next().copied(),
            ClientsIterInner::Owned(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            ClientsIterInner::Borrowed(keys) => keys.size_hint(),
            ClientsIterInner::Owned(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for ClientsIter<'_> {}

/// History of models, gradient directions and participation.
#[derive(Debug)]
pub struct HistoryStore {
    delta: f32,
    dim: Option<usize>,
    tier: TierConfig,
    models: BTreeMap<Round, ModelSlot>,
    /// Delta-base slots a thinning pass hid from `rounds()` but that kept
    /// rounds still chain-decode through. Handle copies only — never
    /// reloaded by the thinning itself.
    shadow_models: BTreeMap<Round, ModelSlot>,
    directions: BTreeMap<Round, DirSlot>,
    participation: BTreeMap<ClientId, Participation>,
    weights: BTreeMap<ClientId, f32>,
    spill: Arc<SpillFile>,
    cache: Mutex<DecodeCache>,
    counters: TierCounters,
}

impl Clone for HistoryStore {
    /// Shallow copy-on-write: slots are `Arc`/handle clones and the spill
    /// file is shared (append-only, so existing offsets stay valid for
    /// both). The clone starts with a fresh decode cache and counters.
    fn clone(&self) -> Self {
        HistoryStore {
            delta: self.delta,
            dim: self.dim,
            tier: self.tier,
            models: self.models.clone(),
            shadow_models: self.shadow_models.clone(),
            directions: self.directions.clone(),
            participation: self.participation.clone(),
            weights: self.weights.clone(),
            spill: Arc::clone(&self.spill),
            cache: Mutex::new(DecodeCache::new(CACHE_ROUNDS)),
            counters: TierCounters::default(),
        }
    }
}

impl HistoryStore {
    /// Creates an empty store with sign threshold `delta`, tiered per
    /// [`TierConfig::from_env`].
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or NaN.
    pub fn new(delta: f32) -> Self {
        Self::with_tier(delta, TierConfig::from_env())
    }

    /// Creates an empty store with an explicit tier configuration.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or NaN.
    pub fn with_tier(delta: f32, tier: TierConfig) -> Self {
        assert!(delta >= 0.0, "HistoryStore::new: delta must be >= 0");
        HistoryStore {
            delta,
            dim: None,
            tier: TierConfig {
                keyframe_interval: tier.keyframe_interval.max(1),
                ..tier
            },
            models: BTreeMap::new(),
            shadow_models: BTreeMap::new(),
            directions: BTreeMap::new(),
            participation: BTreeMap::new(),
            weights: BTreeMap::new(),
            spill: Arc::new(SpillFile::new()),
            cache: Mutex::new(DecodeCache::new(CACHE_ROUNDS)),
            counters: TierCounters::default(),
        }
    }

    /// The sign threshold δ in force.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Model dimension, once the first model/gradient has been recorded.
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// The tier configuration in force.
    pub fn tier_config(&self) -> TierConfig {
        self.tier
    }

    /// A snapshot-isolated copy for a concurrent reader (e.g. one recovery
    /// job in `core::jobs`): slot maps are `Arc`/handle clones and the
    /// append-only spill file is shared, so taking a snapshot copies no
    /// model bytes, and records appended to the live store afterwards are
    /// invisible to the snapshot — the copy-on-write isolation the job
    /// service's determinism contract is built on. The snapshot starts
    /// with its own decode cache and tier counters.
    pub fn snapshot(&self) -> HistoryStore {
        fuiov_obs::counter!("storage.snapshots").inc();
        self.clone()
    }

    /// Changes the in-memory budget and enforces it immediately.
    pub fn set_budget(&mut self, budget_bytes: Option<usize>) {
        self.tier.budget_bytes = budget_bytes;
        self.enforce_budget();
    }

    fn check_dim(&mut self, len: usize, what: &str) {
        match self.dim {
            None => self.dim = Some(len),
            Some(d) => assert_eq!(d, len, "HistoryStore: {what} dimension mismatch"),
        }
    }

    fn bump(counter: &AtomicUsize, obs: &'static fuiov_obs::Counter) {
        counter.fetch_add(1, Ordering::Relaxed);
        obs.inc();
    }

    // ------------------------------------------------------------------
    // Record path
    // ------------------------------------------------------------------

    /// Records the global model at the *start* of `round`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_model(&mut self, round: Round, params: Vec<f32>) {
        self.check_dim(params.len(), "model");
        self.rebase_dependents(round);
        self.models.insert(round, ModelSlot::Hot(Arc::new(params)));
        self.enforce_budget();
    }

    /// Quantises and records a client's gradient for `round`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_gradient(&mut self, round: Round, client: ClientId, grad: &[f32]) {
        self.check_dim(grad.len(), "gradient");
        let dir = GradientDirection::quantize(grad, self.delta);
        self.dirs_mut(round).insert(client, dir);
        self.enforce_budget();
    }

    /// Records an already-quantised direction for `(round, client)` —
    /// used when restoring a serialised history, where re-quantisation
    /// through the store's own δ would be lossy for δ ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with earlier records.
    pub fn record_direction(&mut self, round: Round, client: ClientId, dir: GradientDirection) {
        self.check_dim(dir.len(), "direction");
        self.dirs_mut(round).insert(client, dir);
        self.enforce_budget();
    }

    /// Records that `client` joined at `round` (first participation). A
    /// second call for the same client is ignored — the paper's `F` is the
    /// *first* join round.
    pub fn record_join(&mut self, client: ClientId, round: Round) {
        self.participation.entry(client).or_insert(Participation {
            joined: round,
            left: None,
        });
    }

    /// Records that `client` left after `round`.
    ///
    /// # Panics
    ///
    /// Panics if the client never joined.
    pub fn record_leave(&mut self, client: ClientId, round: Round) {
        let p = self
            .participation
            .get_mut(&client)
            .expect("record_leave: client never joined");
        p.left = Some(round);
    }

    /// Removes the model recorded for `round`, returning it if present
    /// and decodable (a corrupt spilled record is dropped and counted in
    /// [`TierStats::decode_errors`], returning `None`).
    ///
    /// Models the RSU losing a checkpoint (disk corruption, eviction).
    /// Recovery paths must then either fail with a typed error or
    /// reconstruct the round via [`HistoryStore::model_interpolated`] —
    /// the contract `fuiov-testkit`'s fault matrix pins.
    pub fn remove_model(&mut self, round: Round) -> Option<Vec<f32>> {
        if !self.models.contains_key(&round) {
            return None;
        }
        let value = match self.decode_model_value(round) {
            Ok(v) => v,
            Err(_) => {
                Self::bump(
                    &self.counters.decode_errors,
                    fuiov_obs::counter!("storage.decode_errors"),
                );
                None
            }
        };
        self.rebase_dependents(round);
        self.models.remove(&round);
        self.cache.lock().remove_model(round);
        value.map(|v| v.as_ref().clone())
    }

    /// Removes the direction recorded for `(round, client)`, returning it
    /// if present. Models a lost or never-persisted upload.
    pub fn remove_direction(
        &mut self,
        round: Round,
        client: ClientId,
    ) -> Option<GradientDirection> {
        self.directions.get(&round)?;
        self.dirs_mut(round).remove(&client)
    }

    /// Sets a client's FedAvg weight (its dataset size `‖Dᵢ‖`).
    ///
    /// # Panics
    ///
    /// Panics if the weight is not strictly positive and finite.
    pub fn set_weight(&mut self, client: ClientId, weight: f32) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "set_weight: invalid weight"
        );
        self.weights.insert(client, weight);
    }

    /// A client's FedAvg weight, defaulting to `1.0` if never set.
    pub fn weight(&self, client: ClientId) -> f32 {
        self.weights.get(&client).copied().unwrap_or(1.0)
    }

    // ------------------------------------------------------------------
    // Read path (tier-transparent)
    // ------------------------------------------------------------------

    /// Global model recorded for `round`. A spilled round decodes through
    /// the LRU; an undecodable record yields `None` (counted in
    /// [`TierStats::decode_errors`] — use [`HistoryStore::try_model`] for
    /// the typed error).
    pub fn model(&self, round: Round) -> Option<ModelRef<'_>> {
        match self.models.get(&round)? {
            ModelSlot::Hot(v) => Some(ModelRef::Hot(v.as_slice())),
            ModelSlot::Spilled { .. } => match self.load_model_chain(round) {
                Ok(v) => Some(ModelRef::Cached(v)),
                Err(_) => {
                    Self::bump(
                        &self.counters.decode_errors,
                        fuiov_obs::counter!("storage.decode_errors"),
                    );
                    None
                }
            },
        }
    }

    /// Like [`HistoryStore::model`], but surfaces spill decode failures
    /// as typed [`SegmentDecodeError`]s instead of `None`.
    ///
    /// # Errors
    ///
    /// Any [`SegmentDecodeError`] hit while reading the round's chain.
    pub fn try_model(&self, round: Round) -> Result<Option<ModelRef<'_>>, SegmentDecodeError> {
        match self.models.get(&round) {
            None => Ok(None),
            Some(ModelSlot::Hot(v)) => Ok(Some(ModelRef::Hot(v.as_slice()))),
            Some(ModelSlot::Spilled { .. }) => self
                .load_model_chain(round)
                .map(|v| Some(ModelRef::Cached(v))),
        }
    }

    /// Gradient direction recorded for `(round, client)`.
    pub fn direction(&self, round: Round, client: ClientId) -> Option<DirectionRef<'_>> {
        match self.directions.get(&round)? {
            DirSlot::Mem(m) => m.get(&client).map(DirectionRef::Mem),
            DirSlot::Spilled { offset, len, .. } => {
                let map = match self.load_spilled_dirs(round, *offset, *len) {
                    Ok(m) => m,
                    Err(_) => {
                        Self::bump(
                            &self.counters.decode_errors,
                            fuiov_obs::counter!("storage.decode_errors"),
                        );
                        return None;
                    }
                };
                map.contains_key(&client)
                    .then_some(DirectionRef::Cached { map, client })
            }
        }
    }

    /// An `Arc` snapshot of `round` for replay: the model (if any) and
    /// every client direction, decoded at most once. Undecodable spill
    /// records degrade to an absent model / empty direction map (counted;
    /// use [`HistoryStore::try_round_view`] for the typed error).
    pub fn round_view(&self, round: Round) -> RoundView {
        let model = match self.models.get(&round) {
            Some(ModelSlot::Hot(v)) => Some(Arc::clone(v)),
            Some(ModelSlot::Spilled { .. }) => match self.load_model_chain(round) {
                Ok(v) => Some(v),
                Err(_) => {
                    Self::bump(
                        &self.counters.decode_errors,
                        fuiov_obs::counter!("storage.decode_errors"),
                    );
                    None
                }
            },
            None => None,
        };
        let dirs = match self.directions.get(&round) {
            Some(DirSlot::Mem(m)) => Arc::clone(m),
            Some(DirSlot::Spilled { offset, len, .. }) => {
                match self.load_spilled_dirs(round, *offset, *len) {
                    Ok(m) => m,
                    Err(_) => {
                        Self::bump(
                            &self.counters.decode_errors,
                            fuiov_obs::counter!("storage.decode_errors"),
                        );
                        Arc::new(BTreeMap::new())
                    }
                }
            }
            None => Arc::new(BTreeMap::new()),
        };
        RoundView { round, model, dirs }
    }

    /// Like [`HistoryStore::round_view`], but any spill decode failure is
    /// a typed error.
    ///
    /// # Errors
    ///
    /// Any [`SegmentDecodeError`] hit while decoding the round.
    pub fn try_round_view(&self, round: Round) -> Result<RoundView, SegmentDecodeError> {
        let model = match self.models.get(&round) {
            Some(ModelSlot::Hot(v)) => Some(Arc::clone(v)),
            Some(ModelSlot::Spilled { .. }) => Some(self.load_model_chain(round)?),
            None => None,
        };
        let dirs = match self.directions.get(&round) {
            Some(DirSlot::Mem(m)) => Arc::clone(m),
            Some(DirSlot::Spilled { offset, len, .. }) => {
                self.load_spilled_dirs(round, *offset, *len)?
            }
            None => Arc::new(BTreeMap::new()),
        };
        Ok(RoundView { round, model, dirs })
    }

    /// Warms the decode LRU with `round`'s model and directions — called
    /// by replay loops for round `t+1` while round `t` computes, so the
    /// next [`HistoryStore::round_view`] is a pure cache hit. Decode
    /// failures are counted, not raised.
    pub fn prefetch(&self, round: Round) {
        fuiov_obs::counter!("storage.prefetches").inc();
        if let Some(ModelSlot::Spilled { .. }) = self.models.get(&round) {
            if self.load_model_chain(round).is_err() {
                Self::bump(
                    &self.counters.decode_errors,
                    fuiov_obs::counter!("storage.decode_errors"),
                );
            }
        }
        if let Some(DirSlot::Spilled { offset, len, .. }) = self.directions.get(&round) {
            if self.load_spilled_dirs(round, *offset, *len).is_err() {
                Self::bump(
                    &self.counters.decode_errors,
                    fuiov_obs::counter!("storage.decode_errors"),
                );
            }
        }
    }

    /// Clients that submitted a gradient in `round`, ascending.
    pub fn clients_in_round(&self, round: Round) -> Vec<ClientId> {
        self.clients_in_round_iter(round).collect()
    }

    /// Iterator form of [`HistoryStore::clients_in_round`] — borrows the
    /// resident map when hot instead of allocating a `Vec` per call.
    pub fn clients_in_round_iter(&self, round: Round) -> ClientsIter<'_> {
        let inner = match self.directions.get(&round) {
            Some(DirSlot::Mem(m)) => ClientsIterInner::Borrowed(m.keys()),
            Some(DirSlot::Spilled { offset, len, .. }) => {
                match self.load_spilled_dirs(round, *offset, *len) {
                    Ok(m) => ClientsIterInner::Owned(
                        m.keys().copied().collect::<Vec<ClientId>>().into_iter(),
                    ),
                    Err(_) => {
                        Self::bump(
                            &self.counters.decode_errors,
                            fuiov_obs::counter!("storage.decode_errors"),
                        );
                        ClientsIterInner::Owned(Vec::new().into_iter())
                    }
                }
            }
            None => ClientsIterInner::Owned(Vec::new().into_iter()),
        };
        ClientsIter { inner }
    }

    /// All rounds with a recorded model, ascending.
    pub fn rounds(&self) -> Vec<Round> {
        self.models.keys().copied().collect()
    }

    /// Iterator form of [`HistoryStore::rounds`] (no allocation).
    pub fn rounds_iter(&self) -> impl Iterator<Item = Round> + '_ {
        self.models.keys().copied()
    }

    /// Highest recorded round, if any.
    pub fn latest_round(&self) -> Option<Round> {
        self.models.keys().next_back().copied()
    }

    /// A client's participation record.
    pub fn participation(&self, client: ClientId) -> Option<Participation> {
        self.participation.get(&client).copied()
    }

    /// A client's join round `F`, if known.
    pub fn join_round(&self, client: ClientId) -> Option<Round> {
        self.participation.get(&client).map(|p| p.joined)
    }

    /// All clients ever seen, ascending.
    pub fn clients(&self) -> Vec<ClientId> {
        self.participation.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Byte accounting
    // ------------------------------------------------------------------

    /// Bytes used by packed gradient directions (logical: independent of
    /// which tier currently holds them).
    pub fn direction_bytes(&self) -> usize {
        self.directions
            .values()
            .map(|s| match s {
                DirSlot::Mem(m) => m.values().map(GradientDirection::byte_size).sum(),
                DirSlot::Spilled { packed_bytes, .. } => *packed_bytes,
            })
            .sum()
    }

    /// Bytes the same gradients would use stored as full `f32` vectors —
    /// what FedRecover/FedEraser-style servers must keep.
    pub fn full_gradient_bytes_equivalent(&self) -> usize {
        self.directions
            .values()
            .map(|s| match s {
                DirSlot::Mem(m) => m.values().map(GradientDirection::full_f32_byte_size).sum(),
                DirSlot::Spilled { full_bytes, .. } => *full_bytes,
            })
            .sum()
    }

    /// Bytes the recorded models represent as decoded `f32` (logical:
    /// identical in both schemes and at any tier).
    pub fn model_bytes(&self) -> usize {
        self.models.len() * self.dim.unwrap_or(0) * 4
    }

    /// Physical bytes models occupy as stored: decoded `f32` for hot
    /// slots, the framed record length for spilled ones (keyframes ≈ raw
    /// size, delta residuals much smaller).
    pub fn model_bytes_stored(&self) -> usize {
        self.models
            .values()
            .map(|s| match s {
                ModelSlot::Hot(v) => v.len() * 4,
                ModelSlot::Spilled { len, .. } => *len as usize,
            })
            .sum()
    }

    /// Bytes currently resident in memory: hot/mem slots, hidden shadow
    /// slots and the decode LRU. This — not [`HistoryStore::model_bytes`]
    /// — is what the byte budget bounds.
    pub fn resident_bytes(&self) -> usize {
        let shadow: usize = self
            .shadow_models
            .values()
            .map(|s| match s {
                ModelSlot::Hot(v) => v.len() * 4,
                ModelSlot::Spilled { .. } => 0,
            })
            .sum();
        let cache = self.cache.lock();
        self.slot_resident_bytes() + shadow + cache.model_bytes() + cache.dir_bytes()
    }

    /// Bytes appended to the spill segment file so far (append-only, so
    /// re-spilled rounds leave dead records behind — this is file size,
    /// not live data).
    pub fn spilled_bytes(&self) -> usize {
        self.spill.len() as usize
    }

    /// Gradient-storage savings ratio vs full `f32` storage (the paper's
    /// §IV headline number; models excluded — see
    /// [`HistoryStore::storage_savings_ratio`]).
    pub fn gradient_savings_ratio(&self) -> f64 {
        let full = self.full_gradient_bytes_equivalent();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.direction_bytes() as f64 / full as f64
    }

    /// Whole-store savings ratio vs a flat `f32` server: packed
    /// directions *and* delta-coded/spilled models, against full `f32`
    /// gradients plus full `f32` models.
    pub fn storage_savings_ratio(&self) -> f64 {
        let full = self.full_gradient_bytes_equivalent() + self.model_bytes();
        if full == 0 {
            return 0.0;
        }
        let stored = self.direction_bytes() + self.model_bytes_stored();
        1.0 - stored as f64 / full as f64
    }

    /// Snapshot of the tier activity counters.
    pub fn tier_stats(&self) -> TierStats {
        TierStats {
            spill_writes: self.counters.spill_writes.load(Ordering::Relaxed),
            spill_loads: self.counters.spill_loads.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            decode_errors: self.counters.decode_errors.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Tier internals
    // ------------------------------------------------------------------

    fn any_model_slot(&self, round: Round) -> Option<&ModelSlot> {
        self.models
            .get(&round)
            .or_else(|| self.shadow_models.get(&round))
    }

    /// Decoded value of `round`'s model regardless of tier (`Ok(None)` if
    /// the round was never recorded).
    fn decode_model_value(
        &self,
        round: Round,
    ) -> Result<Option<Arc<Vec<f32>>>, SegmentDecodeError> {
        match self.any_model_slot(round) {
            None => Ok(None),
            Some(ModelSlot::Hot(v)) => Ok(Some(Arc::clone(v))),
            Some(ModelSlot::Spilled { .. }) => self.load_model_chain(round).map(Some),
        }
    }

    /// Walks `round`'s delta chain back to a hot/cached value or a
    /// keyframe, then decodes forward, caching every intermediate round —
    /// sequential replay therefore reads O(1) records per round.
    fn load_model_chain(&self, round: Round) -> Result<Arc<Vec<f32>>, SegmentDecodeError> {
        let mut stack: Vec<Round> = Vec::new();
        let mut cur = round;
        let mut value: Option<Arc<Vec<f32>>> = None;
        loop {
            if let Some(v) = self.cache.lock().get_model(cur) {
                fuiov_obs::counter!("storage.decode_cache_hits").inc();
                value = Some(v);
                break;
            }
            match self.any_model_slot(cur) {
                Some(ModelSlot::Hot(v)) => {
                    value = Some(Arc::clone(v));
                    break;
                }
                Some(ModelSlot::Spilled { base, .. }) => {
                    stack.push(cur);
                    match base {
                        Some(b) => cur = *b,
                        None => break,
                    }
                }
                None => return Err(SegmentDecodeError::MissingBase(cur as u64)),
            }
        }
        while let Some(r) = stack.pop() {
            let Some(ModelSlot::Spilled { offset, len, base }) = self.any_model_slot(r) else {
                unreachable!("chain slot vanished mid-decode")
            };
            let bytes = self.spill.read(*offset, *len)?;
            Self::bump(
                &self.counters.spill_loads,
                fuiov_obs::counter!("storage.spill_loads"),
            );
            let decoded = match base {
                None => segment::decode_model(&bytes, r, None)?,
                Some(_) => segment::decode_model(
                    &bytes,
                    r,
                    Some(value.as_ref().expect("delta chain has a base").as_slice()),
                )?,
            };
            let arc = Arc::new(decoded);
            self.cache.lock().put_model(r, Arc::clone(&arc));
            value = Some(arc);
        }
        Ok(value.expect("chain resolved to a value"))
    }

    fn load_spilled_dirs(
        &self,
        round: Round,
        offset: u64,
        len: u32,
    ) -> Result<Arc<BTreeMap<ClientId, GradientDirection>>, SegmentDecodeError> {
        if let Some(m) = self.cache.lock().get_dirs(round) {
            fuiov_obs::counter!("storage.decode_cache_hits").inc();
            return Ok(m);
        }
        let bytes = self.spill.read(offset, len)?;
        Self::bump(
            &self.counters.spill_loads,
            fuiov_obs::counter!("storage.spill_loads"),
        );
        let map = Arc::new(segment::decode_directions(&bytes, round)?);
        self.cache.lock().put_dirs(round, Arc::clone(&map));
        Ok(map)
    }

    /// Makes `round`'s direction map resident and mutable (loading it out
    /// of the spill tier if needed; an unreadable spilled record starts
    /// from an empty map and is counted in decode errors).
    fn dirs_mut(&mut self, round: Round) -> &mut BTreeMap<ClientId, GradientDirection> {
        if let Some(DirSlot::Spilled { offset, len, .. }) = self.directions.get(&round) {
            let (offset, len) = (*offset, *len);
            let map = match self.load_spilled_dirs(round, offset, len) {
                Ok(m) => m,
                Err(_) => {
                    Self::bump(
                        &self.counters.decode_errors,
                        fuiov_obs::counter!("storage.decode_errors"),
                    );
                    Arc::new(BTreeMap::new())
                }
            };
            self.directions.insert(round, DirSlot::Mem(map));
        }
        self.cache.lock().remove_dirs(round);
        let slot = self
            .directions
            .entry(round)
            .or_insert_with(|| DirSlot::Mem(Arc::new(BTreeMap::new())));
        let DirSlot::Mem(map) = slot else {
            unreachable!("dirs_mut ensured a resident slot")
        };
        Arc::make_mut(map)
    }

    /// Before overwriting or removing `round`'s model: re-materialise (as
    /// hot slots, via the *old* chain) every round whose spilled delta is
    /// based on it, so their recorded values survive the change.
    fn rebase_dependents(&mut self, round: Round) {
        if !self.models.contains_key(&round) && !self.shadow_models.contains_key(&round) {
            return;
        }
        let is_dep =
            |s: &ModelSlot| matches!(s, ModelSlot::Spilled { base: Some(b), .. } if *b == round);
        let deps: Vec<(bool, Round)> = self
            .models
            .iter()
            .filter(|(_, s)| is_dep(s))
            .map(|(&r, _)| (false, r))
            .chain(
                self.shadow_models
                    .iter()
                    .filter(|(_, s)| is_dep(s))
                    .map(|(&r, _)| (true, r)),
            )
            .collect();
        for (shadow, u) in deps {
            match self.load_model_chain(u) {
                Ok(v) => {
                    let target = if shadow {
                        &mut self.shadow_models
                    } else {
                        &mut self.models
                    };
                    target.insert(u, ModelSlot::Hot(v));
                }
                Err(_) => {
                    Self::bump(
                        &self.counters.decode_errors,
                        fuiov_obs::counter!("storage.decode_errors"),
                    );
                    let target = if shadow {
                        &mut self.shadow_models
                    } else {
                        &mut self.models
                    };
                    target.remove(&u);
                    self.cache.lock().remove_model(u);
                }
            }
        }
        self.cache.lock().remove_model(round);
        self.shadow_models.remove(&round);
    }

    /// Encodes `round`'s model for the spill tier: a keyframe on the
    /// interval grid (or when no in-window predecessor exists /
    /// decodes), otherwise a delta against the greatest recorded round in
    /// the same keyframe window.
    fn encode_model_record(&self, round: Round, value: &[f32]) -> (Vec<u8>, Option<Round>) {
        let k = self.tier.keyframe_interval;
        if k > 1 && !round.is_multiple_of(k) {
            let window_start = round - round % k;
            if let Some((&b, _)) = self.models.range(window_start..round).next_back() {
                if let Ok(Some(base)) = self.decode_model_value(b) {
                    return (segment::encode_delta(round, b, &base, value), Some(b));
                }
            }
        }
        (segment::encode_keyframe(round, value), None)
    }

    fn spill_model(&mut self, round: Round) -> bool {
        let Some(ModelSlot::Hot(v)) = self.models.get(&round) else {
            return false;
        };
        let v = Arc::clone(v);
        let (record, base) = self.encode_model_record(round, &v);
        let Ok((offset, len)) = self.spill.append(&record) else {
            return false; // disk refused — stay hot rather than lose data
        };
        self.models
            .insert(round, ModelSlot::Spilled { offset, len, base });
        self.cache.lock().put_model(round, v);
        Self::bump(
            &self.counters.spill_writes,
            fuiov_obs::counter!("storage.spill_writes"),
        );
        true
    }

    fn spill_dirs(&mut self, round: Round) -> bool {
        let Some(DirSlot::Mem(map)) = self.directions.get(&round) else {
            return false;
        };
        let map = Arc::clone(map);
        let record = segment::encode_directions(round, &map);
        let Ok((offset, len)) = self.spill.append(&record) else {
            return false;
        };
        let packed_bytes = map.values().map(GradientDirection::byte_size).sum();
        let full_bytes = map
            .values()
            .map(GradientDirection::full_f32_byte_size)
            .sum();
        self.directions.insert(
            round,
            DirSlot::Spilled {
                offset,
                len,
                packed_bytes,
                full_bytes,
            },
        );
        self.cache.lock().put_dirs(round, map);
        Self::bump(
            &self.counters.spill_writes,
            fuiov_obs::counter!("storage.spill_writes"),
        );
        true
    }

    fn slot_resident_bytes(&self) -> usize {
        let models: usize = self
            .models
            .values()
            .map(|s| match s {
                ModelSlot::Hot(v) => v.len() * 4,
                ModelSlot::Spilled { .. } => 0,
            })
            .sum();
        let dirs: usize = self
            .directions
            .values()
            .map(|s| match s {
                DirSlot::Mem(m) => m.values().map(GradientDirection::byte_size).sum(),
                DirSlot::Spilled { .. } => 0,
            })
            .sum();
        models + dirs
    }

    /// Spills coldest (lowest) rounds until resident slot bytes fit the
    /// budget. No round is exempt — `Some(0)` pushes every record through
    /// the spill tier, which the bitwise-invariance tests exploit.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.tier.budget_bytes else {
            return;
        };
        loop {
            if self.slot_resident_bytes() <= budget {
                return;
            }
            let next_model = self
                .models
                .iter()
                .find(|(_, s)| matches!(s, ModelSlot::Hot(_)))
                .map(|(&r, _)| r);
            let next_dirs = self
                .directions
                .iter()
                .find(|(_, s)| matches!(s, DirSlot::Mem(_)))
                .map(|(&r, _)| r);
            let r = match (next_model, next_dirs) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return,
            };
            let mut progressed = false;
            if next_model == Some(r) {
                progressed |= self.spill_model(r);
            }
            if next_dirs == Some(r) {
                progressed |= self.spill_dirs(r);
            }
            if !progressed {
                return; // e.g. disk full — keep data hot instead of spinning
            }
            Self::bump(
                &self.counters.evictions,
                fuiov_obs::counter!("storage.evictions"),
            );
        }
    }

    // ------------------------------------------------------------------
    // Tier introspection & fault-injection hooks (testkit)
    // ------------------------------------------------------------------

    /// Which tier holds `round`'s model, if recorded.
    pub fn model_tier(&self, round: Round) -> Option<Tier> {
        self.models.get(&round).map(|s| match s {
            ModelSlot::Hot(_) => Tier::Hot,
            ModelSlot::Spilled { .. } => Tier::Spilled,
        })
    }

    /// Which tier holds `round`'s direction map, if recorded.
    pub fn directions_tier(&self, round: Round) -> Option<Tier> {
        self.directions.get(&round).map(|s| match s {
            DirSlot::Mem(_) => Tier::Hot,
            DirSlot::Spilled { .. } => Tier::Spilled,
        })
    }

    /// Spills every resident round regardless of budget (ascending, so
    /// delta bases are always encoded before their dependents).
    pub fn force_spill_all(&mut self) {
        let model_rounds: Vec<Round> = self
            .models
            .iter()
            .filter(|(_, s)| matches!(s, ModelSlot::Hot(_)))
            .map(|(&r, _)| r)
            .collect();
        for r in model_rounds {
            self.spill_model(r);
        }
        let dir_rounds: Vec<Round> = self
            .directions
            .iter()
            .filter(|(_, s)| matches!(s, DirSlot::Mem(_)))
            .map(|(&r, _)| r)
            .collect();
        for r in dir_rounds {
            self.spill_dirs(r);
        }
    }

    /// Path of the spill segment file (created lazily on first spill).
    pub fn spill_path(&self) -> PathBuf {
        self.spill.path()
    }

    /// `(offset, len)` of `round`'s model record in the spill file, if
    /// that model is currently spilled — the handle the testkit
    /// `Corruptor` mutates.
    pub fn spilled_model_extent(&self, round: Round) -> Option<(u64, u32)> {
        match self.models.get(&round)? {
            ModelSlot::Spilled { offset, len, .. } => Some((*offset, *len)),
            ModelSlot::Hot(_) => None,
        }
    }

    /// `(offset, len)` of `round`'s directions record in the spill file,
    /// if currently spilled.
    pub fn spilled_directions_extent(&self, round: Round) -> Option<(u64, u32)> {
        match self.directions.get(&round)? {
            DirSlot::Spilled { offset, len, .. } => Some((*offset, *len)),
            DirSlot::Mem(_) => None,
        }
    }

    /// Drops every cached decode — after out-of-band mutation of the
    /// spill file (fault injection), the next read must hit disk.
    pub fn invalidate_caches(&self) {
        self.cache.lock().clear();
    }

    // ------------------------------------------------------------------
    // Derived stores
    // ------------------------------------------------------------------

    /// Rebuilds this history with a different sign threshold `delta`,
    /// re-quantising gradients from a full-precision record.
    ///
    /// Used by the δ-sweep experiment (paper Fig. 3): one training run with
    /// full gradients kept can be re-quantised at every candidate δ instead
    /// of retraining per δ. Models, participation and weights are copied;
    /// only `(round, client)` gradients present in `full` are re-quantised
    /// (entries missing from `full` are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn requantized(&self, full: &FullGradientStore, delta: f32) -> HistoryStore {
        let mut out = HistoryStore::with_tier(delta, self.tier);
        for r in self.rounds_iter() {
            let m = self.model(r).expect("round listed");
            let params = m.to_vec();
            out.record_model(r, params);
        }
        for c in self.clients() {
            let p = self.participation(c).expect("client listed");
            out.record_join(c, p.joined);
            if let Some(l) = p.left {
                out.record_leave(c, l);
            }
            if let Some(&w) = self.weights.get(&c) {
                out.set_weight(c, w);
            }
        }
        let dir_rounds: Vec<Round> = self.directions.keys().copied().collect();
        for round in dir_rounds {
            for client in self.clients_in_round(round) {
                if let Some(g) = full.gradient(round, client) {
                    out.record_gradient(round, client, g);
                }
            }
        }
        out
    }

    /// Returns a copy with global models kept only every `keep_every`
    /// rounds (checkpoint thinning — the direction Wei et al. \[32\] take
    /// for model storage). The earliest and latest recorded rounds are
    /// always kept, and so is every client's join round — those are the
    /// backtracking targets, so the server pins them. Directions,
    /// participation and weights are copied unchanged.
    ///
    /// Built directly from slot handles: spilled rounds are **not**
    /// reloaded into memory (the spill file is shared, append-only), and
    /// hot rounds are `Arc`-shared, not copied. Thinned-away delta bases
    /// that kept rounds still decode through are retained as hidden
    /// shadow slots.
    ///
    /// Missing intermediate models can be reconstructed with
    /// [`HistoryStore::model_interpolated`].
    ///
    /// # Panics
    ///
    /// Panics if `keep_every == 0`.
    pub fn thinned_models(&self, keep_every: usize) -> HistoryStore {
        assert!(
            keep_every > 0,
            "thinned_models: keep_every must be positive"
        );
        let mut out = HistoryStore {
            delta: self.delta,
            dim: self.dim,
            tier: self.tier,
            models: BTreeMap::new(),
            shadow_models: BTreeMap::new(),
            directions: self.directions.clone(),
            participation: self.participation.clone(),
            weights: self.weights.clone(),
            spill: Arc::clone(&self.spill),
            cache: Mutex::new(DecodeCache::new(CACHE_ROUNDS)),
            counters: TierCounters::default(),
        };
        let Some(first) = self.models.keys().next().copied() else {
            return out;
        };
        let last = self.models.keys().next_back().copied().expect("non-empty");
        let join_rounds: std::collections::BTreeSet<Round> =
            self.participation.values().map(|p| p.joined).collect();
        for (&r, slot) in &self.models {
            let keep = r == first
                || r == last
                || (r - first) % keep_every == 0
                || join_rounds.contains(&r);
            if keep {
                out.models.insert(r, slot.clone());
            }
        }
        // Close delta chains: a kept round may be coded against a
        // thinned-away base — keep those bases' slots as hidden shadow
        // entries (handle copies only; nothing is read from the spill).
        let kept: Vec<Round> = out.models.keys().copied().collect();
        for r in kept {
            let mut cur = r;
            while let Some(ModelSlot::Spilled {
                base: Some(base), ..
            }) = out.models.get(&cur).or_else(|| out.shadow_models.get(&cur))
            {
                let base = *base;
                if out.models.contains_key(&base) || out.shadow_models.contains_key(&base) {
                    break;
                }
                match self.any_model_slot(base) {
                    Some(slot) => {
                        out.shadow_models.insert(base, slot.clone());
                    }
                    None => break, // broken source chain — typed error on decode
                }
                cur = base;
            }
        }
        out
    }

    /// The model at `round`, linearly interpolated between the nearest
    /// stored checkpoints when the exact round was thinned away. Returns
    /// `None` outside the stored range.
    pub fn model_interpolated(&self, round: Round) -> Option<Vec<f32>> {
        if let Some(exact) = self.model(round) {
            return Some(exact.to_vec());
        }
        let before = self.models.range(..round).next_back().map(|(&r, _)| r)?;
        let after = self.models.range(round + 1..).next().map(|(&r, _)| r)?;
        let bm = self.model(before)?;
        let am = self.model(after)?;
        let span = (after - before) as f32;
        let t = (round - before) as f32 / span;
        Some(fuiov_tensor::vector::lerp(&bm, &am, t))
    }
}

/// Full-precision history used by the FedRecover-style baselines: same
/// bookkeeping, but gradients are kept as `f32` vectors.
#[derive(Debug, Clone, Default)]
pub struct FullGradientStore {
    gradients: BTreeMap<Round, BTreeMap<ClientId, Vec<f32>>>,
}

impl FullGradientStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client's full gradient for `round`.
    pub fn record(&mut self, round: Round, client: ClientId, grad: Vec<f32>) {
        self.gradients
            .entry(round)
            .or_default()
            .insert(client, grad);
    }

    /// The recorded gradient, if any.
    pub fn gradient(&self, round: Round, client: ClientId) -> Option<&[f32]> {
        self.gradients.get(&round)?.get(&client).map(Vec::as_slice)
    }

    /// Bytes used by the stored gradients.
    pub fn bytes(&self) -> usize {
        self.gradients
            .values()
            .flat_map(|m| m.values())
            .map(|g| g.len() * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_two_rounds() -> HistoryStore {
        let mut h = HistoryStore::with_tier(1e-6, TierConfig::unbounded());
        h.record_model(0, vec![0.0; 4]);
        h.record_model(1, vec![0.1; 4]);
        h.record_join(7, 0);
        h.record_join(8, 1);
        h.record_gradient(0, 7, &[0.5, -0.5, 0.0, 0.1]);
        h.record_gradient(1, 7, &[0.5, -0.5, 0.0, 0.1]);
        h.record_gradient(1, 8, &[-0.2, 0.2, 0.3, -0.3]);
        h
    }

    /// Pseudo-random but deterministic model for round `t`.
    fn fake_model(t: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| ((t * 31 + i * 7) as f32).sin() * 0.5 + t as f32 * 1e-3)
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn records_and_reads_back() {
        let h = store_with_two_rounds();
        assert_eq!(h.model(1).as_deref(), Some(&[0.1f32; 4][..]));
        assert_eq!(h.direction(1, 8).unwrap().to_signs(), vec![-1, 1, 1, -1]);
        assert_eq!(h.clients_in_round(1), vec![7, 8]);
        assert_eq!(h.rounds(), vec![0, 1]);
        assert_eq!(h.latest_round(), Some(1));
    }

    #[test]
    fn join_round_tracks_first_participation() {
        let mut h = store_with_two_rounds();
        h.record_join(7, 5); // duplicate join must not move F
        assert_eq!(h.join_round(7), Some(0));
        assert_eq!(h.join_round(8), Some(1));
        assert_eq!(h.join_round(99), None);
        assert_eq!(h.clients(), vec![7, 8]);
    }

    #[test]
    fn leave_is_recorded() {
        let mut h = store_with_two_rounds();
        h.record_leave(7, 1);
        assert_eq!(h.participation(7).unwrap().left, Some(1));
        assert_eq!(h.participation(8).unwrap().left, None);
    }

    #[test]
    #[should_panic(expected = "never joined")]
    fn leave_without_join_panics() {
        let mut h = HistoryStore::new(0.0);
        h.record_leave(3, 1);
    }

    #[test]
    fn weights_default_to_one() {
        let mut h = store_with_two_rounds();
        assert_eq!(h.weight(7), 1.0);
        h.set_weight(7, 32.0);
        assert_eq!(h.weight(7), 32.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_is_caught() {
        let mut h = store_with_two_rounds();
        h.record_gradient(2, 7, &[1.0, 2.0]);
    }

    #[test]
    fn storage_accounting() {
        let h = store_with_two_rounds();
        // 3 gradients × 4 elements: packed 1 byte each, full 16 bytes each.
        assert_eq!(h.direction_bytes(), 3);
        assert_eq!(h.full_gradient_bytes_equivalent(), 48);
        assert_eq!(h.model_bytes(), 32);
        assert!((h.gradient_savings_ratio() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn empty_store_savings_is_zero() {
        let h = HistoryStore::new(0.0);
        assert_eq!(h.gradient_savings_ratio(), 0.0);
        assert_eq!(h.storage_savings_ratio(), 0.0);
        assert_eq!(h.latest_round(), None);
        assert!(h.clients_in_round(0).is_empty());
    }

    #[test]
    fn thinning_keeps_endpoints_and_stride() {
        let mut h = HistoryStore::new(0.0);
        for t in 0..=10 {
            h.record_model(t, vec![t as f32; 2]);
        }
        let thin = h.thinned_models(4);
        assert_eq!(thin.rounds(), vec![0, 4, 8, 10]);
        // Join rounds are pinned.
        let mut h2 = HistoryStore::new(0.0);
        for t in 0..=10 {
            h2.record_model(t, vec![t as f32; 2]);
        }
        h2.record_join(7, 3);
        assert_eq!(h2.thinned_models(4).rounds(), vec![0, 3, 4, 8, 10]);
        // Directions/participation untouched (none recorded here).
        assert_eq!(thin.delta(), h.delta());
    }

    #[test]
    fn interpolation_reconstructs_linear_trajectories_exactly() {
        let mut h = HistoryStore::new(0.0);
        for t in 0..=10 {
            h.record_model(t, vec![t as f32, 2.0 * t as f32]);
        }
        let thin = h.thinned_models(5);
        for t in 0..=10 {
            let m = thin.model_interpolated(t).expect("in range");
            assert!(
                (m[0] - t as f32).abs() < 1e-5 && (m[1] - 2.0 * t as f32).abs() < 1e-5,
                "round {t}: {m:?}"
            );
        }
        assert!(thin.model_interpolated(11).is_none());
    }

    #[test]
    fn interpolation_prefers_exact_models() {
        let mut h = HistoryStore::new(0.0);
        h.record_model(0, vec![0.0]);
        h.record_model(5, vec![100.0]);
        assert_eq!(h.model_interpolated(5).unwrap(), vec![100.0]);
        let mid = h.model_interpolated(2).unwrap();
        assert!((mid[0] - 40.0).abs() < 1e-4);
    }

    #[test]
    fn requantized_preserves_structure_with_new_delta() {
        let mut h = store_with_two_rounds();
        h.set_weight(7, 3.0);
        h.record_leave(8, 1);
        let mut full = FullGradientStore::new();
        full.record(0, 7, vec![0.5, -0.5, 0.0, 0.1]);
        full.record(1, 7, vec![0.5, -0.5, 0.0, 0.1]);
        full.record(1, 8, vec![-0.2, 0.2, 0.3, -0.3]);

        // Huge delta: everything quantises to zero.
        let r = h.requantized(&full, 10.0);
        assert_eq!(r.delta(), 10.0);
        assert_eq!(r.rounds(), h.rounds());
        assert_eq!(r.join_round(8), Some(1));
        assert_eq!(r.participation(8).unwrap().left, Some(1));
        assert_eq!(r.weight(7), 3.0);
        assert_eq!(r.direction(1, 8).unwrap().to_signs(), vec![0, 0, 0, 0]);

        // Tiny delta: signs as before.
        let r2 = h.requantized(&full, 1e-9);
        assert_eq!(r2.direction(1, 8).unwrap().to_signs(), vec![-1, 1, 1, -1]);
    }

    #[test]
    fn requantized_drops_entries_missing_from_full_store() {
        let h = store_with_two_rounds();
        let full = FullGradientStore::new();
        let r = h.requantized(&full, 1e-6);
        assert!(r.direction(0, 7).is_none());
        assert_eq!(r.rounds(), h.rounds());
    }

    #[test]
    fn full_store_costs_16x_packed() {
        let mut full = FullGradientStore::new();
        full.record(0, 1, vec![0.1; 100]);
        assert_eq!(full.bytes(), 400);
        assert_eq!(full.gradient(0, 1).unwrap().len(), 100);
        assert!(full.gradient(1, 1).is_none());

        let mut packed = HistoryStore::new(1e-6);
        packed.record_gradient(0, 1, &vec![0.1; 100]);
        assert_eq!(packed.direction_bytes(), 25);
        assert_eq!(full.bytes() / packed.direction_bytes(), 16);
    }

    // ------------------------------------------------------------------
    // Tiered-store behaviour
    // ------------------------------------------------------------------

    #[test]
    fn tier_config_parsing() {
        let c = TierConfig::parse(Some("1024"), Some("4"));
        assert_eq!(c.budget_bytes, Some(1024));
        assert_eq!(c.keyframe_interval, 4);
        // 0 / garbage / unset budget means unbounded.
        assert_eq!(TierConfig::parse(Some("0"), None).budget_bytes, None);
        assert_eq!(TierConfig::parse(Some("nope"), None).budget_bytes, None);
        assert_eq!(TierConfig::parse(None, None), TierConfig::unbounded());
        // Keyframe interval is clamped to >= 1 and defaults otherwise.
        assert_eq!(TierConfig::parse(None, Some("0")).keyframe_interval, 1);
        assert_eq!(
            TierConfig::parse(None, Some("bad")).keyframe_interval,
            DEFAULT_KEYFRAME_INTERVAL
        );
    }

    #[test]
    fn zero_budget_forces_spill_and_reloads_bitwise() {
        for k in [1usize, 2, 5, 8] {
            let tier = TierConfig::bounded(0).with_keyframe_interval(k);
            let mut h = HistoryStore::with_tier(1e-6, tier);
            let mut reference: Vec<Vec<f32>> = Vec::new();
            for t in 0..12 {
                let mut m = fake_model(t, 9);
                if t == 3 {
                    m[0] = f32::NAN; // exactness must hold for odd payloads too
                    m[1] = -0.0;
                }
                h.record_model(t, m.clone());
                h.record_gradient(t, 1, &fake_model(t + 100, 9));
                reference.push(m);
            }
            for t in 0..12 {
                assert_eq!(h.model_tier(t), Some(Tier::Spilled), "k={k} t={t}");
                assert_eq!(
                    h.directions_tier(t),
                    Some(Tier::Hot).filter(|_| false).or(Some(Tier::Spilled)),
                    "k={k} t={t}"
                );
            }
            // Random-access every round: chain decode must be exact.
            for t in (0..12).rev() {
                let m = h.model(t).expect("spilled round decodes");
                assert_eq!(bits(&m), bits(&reference[t]), "k={k} t={t}");
            }
            let stats = h.tier_stats();
            assert!(stats.spill_writes >= 24, "k={k}: {stats:?}");
            assert!(stats.spill_loads > 0, "k={k}: {stats:?}");
            assert_eq!(stats.decode_errors, 0, "k={k}");
            assert!(h.spilled_bytes() > 0);
        }
    }

    #[test]
    fn delta_records_shrink_model_storage_at_k8() {
        let tier = TierConfig::bounded(0).with_keyframe_interval(8);
        let mut h = HistoryStore::with_tier(0.0, tier);
        for t in 0..16 {
            // A slowly-drifting trajectory, like SGD between keyframes.
            let m: Vec<f32> = (0..256)
                .map(|i| (i as f32).cos() + t as f32 * 1e-4)
                .collect();
            h.record_model(t, m);
        }
        assert!(
            h.model_bytes_stored() < h.model_bytes() * 3 / 4,
            "stored {} vs decoded {}",
            h.model_bytes_stored(),
            h.model_bytes()
        );
        assert!(h.storage_savings_ratio() > 0.0);
    }

    #[test]
    fn round_view_snapshots_and_direction_words_are_shared() {
        let mut h = store_with_two_rounds();
        let view = h.round_view(1);
        assert_eq!(view.round(), 1);
        assert_eq!(view.model(), h.model(1).as_deref());
        assert_eq!(view.clients().collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!(view.n_clients(), 2);
        assert_eq!(
            view.directions().map(|(c, _)| c).collect::<Vec<_>>(),
            vec![7, 8]
        );
        assert_eq!(view.direction(8).unwrap().to_signs(), vec![-1, 1, 1, -1]);
        assert!(view.direction(99).is_none());
        // Snapshot semantics: later mutation doesn't change the view.
        h.record_gradient(1, 9, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(view.n_clients(), 2);
        assert_eq!(h.round_view(1).n_clients(), 3);
        // Absent round: empty view, no panic.
        let empty = h.round_view(77);
        assert!(empty.model().is_none());
        assert_eq!(empty.n_clients(), 0);
    }

    #[test]
    fn round_view_after_spill_matches_hot_view_bitwise() {
        let mut h = HistoryStore::with_tier(1e-6, TierConfig::unbounded());
        for t in 0..6 {
            h.record_model(t, fake_model(t, 11));
            h.record_gradient(t, 3, &fake_model(t + 50, 11));
            h.record_gradient(t, 4, &fake_model(t + 80, 11));
        }
        let hot: Vec<RoundView> = (0..6).map(|t| h.round_view(t)).collect();
        h.force_spill_all();
        h.invalidate_caches();
        for (t, hv) in hot.iter().enumerate() {
            let cold = h.try_round_view(t).expect("spilled round decodes");
            assert_eq!(
                bits(hv.model().unwrap()),
                bits(cold.model().unwrap()),
                "t={t}"
            );
            assert_eq!(
                hv.directions().collect::<Vec<_>>(),
                cold.directions().collect::<Vec<_>>(),
                "t={t}"
            );
        }
        assert!(h.tier_stats().spill_loads > 0);
    }

    #[test]
    fn prefetch_warms_the_cache() {
        let mut h = HistoryStore::with_tier(0.0, TierConfig::bounded(0).with_keyframe_interval(4));
        for t in 0..4 {
            h.record_model(t, fake_model(t, 6));
            h.record_gradient(t, 1, &fake_model(t + 9, 6));
        }
        h.invalidate_caches();
        h.prefetch(2);
        let loads_after_prefetch = h.tier_stats().spill_loads;
        assert!(loads_after_prefetch > 0);
        // The prefetched round is now a pure cache hit.
        let _ = h.round_view(2);
        assert_eq!(h.tier_stats().spill_loads, loads_after_prefetch);
    }

    #[test]
    fn iterator_variants_match_vec_variants() {
        let mut h = store_with_two_rounds();
        assert_eq!(h.rounds_iter().collect::<Vec<_>>(), h.rounds());
        assert_eq!(
            h.clients_in_round_iter(1).collect::<Vec<_>>(),
            h.clients_in_round(1)
        );
        assert_eq!(h.clients_in_round_iter(1).len(), 2);
        assert_eq!(h.clients_in_round_iter(42).count(), 0);
        h.force_spill_all();
        assert_eq!(h.clients_in_round_iter(1).collect::<Vec<_>>(), vec![7, 8]);
    }

    #[test]
    fn thinning_does_not_reload_spilled_segments() {
        let mut h = HistoryStore::with_tier(0.0, TierConfig::bounded(0).with_keyframe_interval(8));
        let mut reference: Vec<Vec<f32>> = Vec::new();
        for t in 0..=10 {
            let m = fake_model(t, 7);
            h.record_model(t, m.clone());
            reference.push(m);
        }
        let loads_before = h.tier_stats().spill_loads;
        let spilled_before = h.spilled_bytes();
        let thin = h.thinned_models(4);
        // Building the thinned store touched neither the spill file nor
        // the decode path, and appended nothing.
        assert_eq!(h.tier_stats().spill_loads, loads_before);
        assert_eq!(thin.tier_stats().spill_loads, 0);
        assert_eq!(thin.spilled_bytes(), spilled_before);
        assert_eq!(thin.rounds(), vec![0, 4, 8, 10]);
        // Kept rounds still decode bitwise — including round 10, whose
        // delta base (round 9) was thinned away into a shadow slot.
        for &t in &[0usize, 4, 8, 10] {
            assert_eq!(thin.model_tier(t), Some(Tier::Spilled));
            let m = thin.model(t).expect("kept round decodes");
            assert_eq!(bits(&m), bits(&reference[t]), "t={t}");
        }
        // Thinned-away rounds are gone from the visible API.
        assert!(thin.model(9).is_none());
        assert!(thin.model_tier(9).is_none());
    }

    #[test]
    fn clone_shares_spill_but_isolates_mutation() {
        let mut h = HistoryStore::with_tier(0.0, TierConfig::bounded(0).with_keyframe_interval(4));
        for t in 0..4 {
            h.record_model(t, fake_model(t, 5));
        }
        let mut c = h.clone();
        assert_eq!(c.spill_path(), h.spill_path());
        let original = h.model(2).unwrap().to_vec();
        c.record_model(2, vec![9.0; 5]);
        assert_eq!(c.model(2).as_deref(), Some(&[9.0f32; 5][..]));
        assert_eq!(bits(&h.model(2).unwrap()), bits(&original));
        // Round 3 in the clone was delta-based on the old round 2 and
        // must have been re-materialised before the overwrite.
        assert_eq!(bits(&c.model(3).unwrap()), bits(&h.model(3).unwrap()));
    }

    #[test]
    fn overwrite_and_remove_preserve_dependent_rounds() {
        let mut h = HistoryStore::with_tier(0.0, TierConfig::bounded(0).with_keyframe_interval(4));
        for t in 0..8 {
            h.record_model(t, fake_model(t, 6));
        }
        let old5 = h.model(5).unwrap().to_vec();
        let old6 = h.model(6).unwrap().to_vec();
        // Round 5 is delta-coded against 4 (k=4 window [4,8)).
        h.record_model(4, vec![7.0; 6]);
        assert_eq!(bits(&h.model(5).unwrap()), bits(&old5));
        assert_eq!(bits(&h.model(6).unwrap()), bits(&old6));
        // Removing round 5 must keep 6 (its delta base) decodable.
        let removed = h.remove_model(5).expect("round 5 present");
        assert_eq!(bits(&removed), bits(&old5));
        assert!(h.model(5).is_none());
        assert_eq!(bits(&h.model(6).unwrap()), bits(&old6));
        assert_eq!(h.tier_stats().decode_errors, 0);
    }

    #[test]
    fn budget_enforcement_keeps_recent_rounds_hot() {
        let dim = 64usize;
        let round_bytes = dim * 4;
        let tier = TierConfig::bounded(3 * round_bytes).with_keyframe_interval(4);
        let mut h = HistoryStore::with_tier(0.0, tier);
        for t in 0..10 {
            h.record_model(t, fake_model(t, dim));
        }
        // Oldest rounds spilled, newest still hot, and the resident slot
        // total respects the budget.
        assert_eq!(h.model_tier(0), Some(Tier::Spilled));
        assert_eq!(h.model_tier(9), Some(Tier::Hot));
        assert!(h.slot_resident_bytes() <= 3 * round_bytes);
        assert!(h.tier_stats().evictions > 0);
        // set_budget(None) stops enforcement; new records stay hot.
        h.set_budget(None);
        h.record_model(10, fake_model(10, dim));
        assert_eq!(h.model_tier(10), Some(Tier::Hot));
    }

    #[test]
    fn corrupt_spill_record_is_typed_never_panics() {
        let mut h = HistoryStore::with_tier(0.0, TierConfig::bounded(0).with_keyframe_interval(1));
        h.record_model(0, vec![1.0, 2.0, 3.0]);
        let (offset, len) = h.spilled_model_extent(0).expect("spilled");
        // Flip a payload byte in place on disk.
        let path = h.spill_path();
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut buf = vec![0u8; len as usize];
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.read_exact(&mut buf).unwrap();
            buf[segment::HEADER_LEN + 5] ^= 0x01;
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&buf).unwrap();
        }
        h.invalidate_caches();
        assert!(matches!(
            h.try_model(0),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
        assert!(h.model(0).is_none());
        assert!(h.round_view(0).model().is_none());
        assert!(h.tier_stats().decode_errors >= 2);
    }

    #[test]
    fn gradient_accounting_survives_spill() {
        let mut h = store_with_two_rounds();
        let dir_bytes = h.direction_bytes();
        let full_bytes = h.full_gradient_bytes_equivalent();
        let model_bytes = h.model_bytes();
        h.force_spill_all();
        assert_eq!(h.direction_bytes(), dir_bytes);
        assert_eq!(h.full_gradient_bytes_equivalent(), full_bytes);
        assert_eq!(h.model_bytes(), model_bytes);
        assert!((h.gradient_savings_ratio() - 0.9375).abs() < 1e-9);
        // Mutating a spilled round loads it back and stays consistent.
        h.record_gradient(1, 9, &[1.0, -1.0, 0.0, 0.0]);
        assert_eq!(h.direction_bytes(), dir_bytes + 1);
        assert_eq!(h.clients_in_round(1), vec![7, 8, 9]);
        assert_eq!(
            h.remove_direction(1, 9).unwrap().to_signs(),
            vec![1, -1, 0, 0]
        );
        assert_eq!(h.direction_bytes(), dir_bytes);
    }
}
