//! Binary model checkpoints.
//!
//! A minimal, versioned little-endian encoding of a flat parameter vector,
//! used by the examples to persist and reload global models (e.g. keeping
//! the pre-unlearning model around for comparison).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x4655_494F; // "FUIO"
const VERSION: u16 = 1;

/// Error decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared contents.
    Truncated,
    /// Magic number mismatch — not a FUIOV checkpoint.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "checkpoint truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
        }
    }
}

impl Error for DecodeError {}

/// Encodes a flat parameter vector into a self-describing byte buffer.
///
/// ```
/// use fuiov_storage::checkpoint;
/// let buf = checkpoint::encode(&[1.0, -2.5]);
/// assert_eq!(checkpoint::decode(&buf)?, vec![1.0, -2.5]);
/// # Ok::<(), fuiov_storage::checkpoint::DecodeError>(())
/// ```
pub fn encode(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(10 + params.len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for &p in params {
        buf.put_f32_le(p);
    }
    buf.freeze()
}

/// Decodes a checkpoint produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, has the wrong
/// magic, or an unsupported version.
pub fn decode(mut buf: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if buf.len() < 10 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len * 4 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let params = vec![0.0f32, 1.5, -3.25, f32::MIN_POSITIVE];
        assert_eq!(decode(&encode(&params)).unwrap(), params);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn detects_bad_magic() {
        let mut buf = encode(&[1.0]).to_vec();
        buf[0] ^= 0xFF;
        assert!(matches!(decode(&buf), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn detects_bad_version() {
        let mut buf = encode(&[1.0]).to_vec();
        buf[4] = 99;
        assert!(matches!(decode(&buf), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn detects_truncation() {
        let buf = encode(&[1.0, 2.0]);
        assert_eq!(decode(&buf[..buf.len() - 1]), Err(DecodeError::Truncated));
        assert_eq!(decode(&buf[..4]), Err(DecodeError::Truncated));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic(1).to_string().contains("magic"));
    }
}
