//! Server-side storage for federated unlearning.
//!
//! The paper's key storage idea (§IV): instead of keeping every client's
//! full `f32` gradient for every round — as FedRecover/FedEraser require —
//! the server keeps only each gradient's *direction*, quantised with a
//! dead-zone threshold `δ` and packed 2 bits per element. That's a 16×
//! (~94 %) reduction in gradient storage, which is what makes historical
//! recovery feasible at IoV scale.
//!
//! - [`direction`]: the packed sign representation
//!   ([`GradientDirection`]).
//! - [`history`]: the per-round record a server keeps
//!   ([`HistoryStore`]), now *tiered*: hot rounds in memory, cold rounds
//!   delta-coded and spilled to an append-only segment file under a
//!   configurable byte budget ([`TierConfig`]), plus the full-precision
//!   [`history::FullGradientStore`] used by the baselines and the storage
//!   comparison experiment.
//! - [`delta`]: lossless varint-zigzag delta coding of `f32` checkpoints.
//! - [`segment`]: the checksummed spill-segment record format.
//! - [`checkpoint`]: a small binary model-checkpoint format.
//!
//! # Example
//!
//! ```
//! use fuiov_storage::{HistoryStore, direction::GradientDirection};
//!
//! let mut h = HistoryStore::new(1e-6);
//! h.record_model(0, vec![0.0; 8]);
//! h.record_join(3, 0);
//! h.record_gradient(0, 3, &[0.5, -0.5, 0.0, 0.1, -0.1, 0.0, 0.2, -0.2]);
//! assert!(h.gradient_savings_ratio() > 0.9);
//! ```

pub mod checkpoint;
pub mod delta;
pub mod direction;
pub mod history;
pub mod segment;
pub mod serialize;
pub mod subtree;

pub use direction::GradientDirection;
pub use history::{
    ClientId, ClientsIter, DirectionRef, HistoryStore, ModelRef, Participation, Round, RoundView,
    Tier, TierConfig, TierStats, DEFAULT_KEYFRAME_INTERVAL,
};
pub use segment::SegmentDecodeError;
pub use subtree::SubtreeStore;
