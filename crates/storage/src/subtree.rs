//! Sealed per-node subtree aggregates for hierarchical recovery.
//!
//! Every aggregator node of the RSU/edge tree seals its per-round FedAvg
//! reduction as a FUSG [`segment::encode_subtree_aggregate`] record. When
//! a vehicle is forgotten, only the nodes on its root-to-leaf path have a
//! changed aggregate — every sibling subtree's sealed record is still
//! *exactly* the value that entered the original reduction, so recovery
//! replays those records verbatim instead of re-estimating their member
//! vehicles. Resident cost is one `(offset, len)` handle per
//! `(round, node)`; the sign payloads live in a spill file, so a
//! million-vehicle cohort's sibling history costs tree-leaves × rounds
//! index entries, not vehicles × rounds vectors.

use crate::direction::GradientDirection;
use crate::segment::{self, SpillFile};
use crate::Round;
use std::collections::BTreeMap;

/// Spill-backed store of sealed per-round aggregator-node aggregates.
#[derive(Debug)]
pub struct SubtreeStore {
    spill: SpillFile,
    index: BTreeMap<(Round, u64), (u64, u32)>,
}

impl Default for SubtreeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SubtreeStore {
    /// An empty store backed by a lazily-created spill file.
    pub fn new() -> Self {
        SubtreeStore {
            spill: SpillFile::new(),
            index: BTreeMap::new(),
        }
    }

    /// Seals one node's round aggregate: FNV-framed, spilled, indexed.
    /// Re-sealing the same `(round, node)` replaces the handle (the old
    /// record stays as dead bytes in the spill file).
    ///
    /// # Errors
    ///
    /// Propagates spill-file creation/write errors.
    pub fn seal(
        &mut self,
        round: Round,
        node: u64,
        weight: f32,
        dir: &GradientDirection,
    ) -> std::io::Result<()> {
        let record = segment::encode_subtree_aggregate(round, node, weight, dir);
        let handle = self.spill.append(&record)?;
        self.index.insert((round, node), handle);
        fuiov_obs::counter!("storage.subtree_seals").inc();
        Ok(())
    }

    /// Reads a sealed aggregate back as `(weight, direction)`. `None` if
    /// the `(round, node)` pair was never sealed or its record no longer
    /// decodes (counted on `storage.decode_errors`).
    pub fn get(&self, round: Round, node: u64) -> Option<(f32, GradientDirection)> {
        let &(offset, len) = self.index.get(&(round, node))?;
        let decoded = self
            .spill
            .read(offset, len)
            .and_then(|bytes| segment::decode_subtree_aggregate(&bytes, round));
        match decoded {
            Ok((found, weight, dir)) if found == node => Some((weight, dir)),
            _ => {
                fuiov_obs::counter!("storage.decode_errors").inc();
                None
            }
        }
    }

    /// Whether any aggregate is sealed for `(round, node)`.
    pub fn contains(&self, round: Round, node: u64) -> bool {
        self.index.contains_key(&(round, node))
    }

    /// Sealed record count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing has been sealed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Node ids sealed for `round`, ascending.
    pub fn nodes_in_round(&self, round: Round) -> impl Iterator<Item = u64> + '_ {
        self.index
            .range((round, 0)..=(round, u64::MAX))
            .map(|(&(_, node), _)| node)
    }

    /// Approximate resident bytes: the index only — payloads are spilled.
    pub fn resident_bytes(&self) -> usize {
        self.index.len() * (std::mem::size_of::<(Round, u64)>() + std::mem::size_of::<(u64, u32)>())
    }

    /// Bytes spilled to disk so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(signs: &[f32]) -> GradientDirection {
        GradientDirection::quantize(signs, 1e-6)
    }

    #[test]
    fn seal_then_get_roundtrips_weight_and_signs() {
        let mut store = SubtreeStore::new();
        let d = dir(&[1.0, -2.0, 0.0, 3.0]);
        store.seal(4, 7, 2.5, &d).unwrap();
        let (w, back) = store.get(4, 7).expect("sealed record must read back");
        assert_eq!(w.to_bits(), 2.5f32.to_bits());
        assert_eq!(back.packed_bytes(), d.packed_bytes());
        assert_eq!(back.len(), d.len());
        assert!(store.contains(4, 7));
        assert!(!store.contains(4, 8));
        assert!(store.get(5, 7).is_none());
    }

    #[test]
    fn reseal_replaces_and_round_scan_is_ascending() {
        let mut store = SubtreeStore::new();
        store.seal(1, 3, 1.0, &dir(&[1.0])).unwrap();
        store.seal(1, 0, 1.0, &dir(&[-1.0])).unwrap();
        store.seal(1, 3, 9.0, &dir(&[-1.0])).unwrap();
        store.seal(2, 5, 1.0, &dir(&[1.0])).unwrap();
        assert_eq!(store.nodes_in_round(1).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(store.len(), 3);
        let (w, _) = store.get(1, 3).unwrap();
        assert_eq!(w, 9.0, "reseal must replace the handle");
    }

    #[test]
    fn resident_bytes_counts_index_not_payload() {
        let mut store = SubtreeStore::new();
        let wide = dir(&vec![1.0f32; 4096]);
        for t in 0..8 {
            store.seal(t, 0, 1.0, &wide).unwrap();
        }
        assert!(
            store.resident_bytes() < 1024,
            "index must stay tiny: {} bytes",
            store.resident_bytes()
        );
        assert!(store.spilled_bytes() > 8 * 1024, "payloads live on disk");
    }
}
