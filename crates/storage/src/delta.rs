//! Lossless delta coding of `f32` checkpoint vectors.
//!
//! Between two keyframes the global model moves slowly, so consecutive
//! checkpoints agree in their high bits. This module encodes a round's
//! model as the element-wise difference from a *base* round, varint
//! (LEB128) compressed after zigzag mapping — and reconstructs the
//! original **bit for bit**, which is what lets the tiered
//! [`HistoryStore`](crate::history::HistoryStore) keep replay bitwise
//! identical to the flat in-memory store.
//!
//! The difference is taken in a *totally ordered* integer image of the
//! `f32` bit pattern (sign-magnitude folded so that the integer order
//! matches numeric order). Nearby floats map to nearby integers, so
//! small parameter movement yields small deltas and short varints; the
//! mapping is a bijection, so the inverse transform is exact for every
//! bit pattern including `-0.0` and NaN payloads.

/// Maps `f32` bits to a totally ordered `u32`: numeric order of the
/// floats (with `-0.0 < +0.0`) becomes unsigned integer order.
#[inline]
pub fn to_ordered(bits: u32) -> u32 {
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`to_ordered`].
#[inline]
pub fn from_ordered(ord: u32) -> u32 {
    if ord & 0x8000_0000 != 0 {
        ord & 0x7FFF_FFFF
    } else {
        !ord
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bytes the LEB128 encoding of `v` occupies (1..=10), from the bit
/// width alone.
#[inline]
fn varint_len(v: u64) -> usize {
    ((64 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Appends `v` as a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, advancing `buf`. `None` on truncation or a
/// varint longer than 10 bytes.
#[inline]
fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for shift in 0..10 {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        v |= u64::from(byte & 0x7F) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Exact number of bytes [`encode`] will append for this pair: one
/// varint length per element, read off the zigzag magnitude's bit width.
/// One cheap integer pass, so [`encode`] can reserve its full output up
/// front instead of growing the buffer through repeated reallocation.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn encoded_len(base: &[f32], cur: &[f32]) -> usize {
    assert_eq!(base.len(), cur.len(), "delta::encoded_len: length mismatch");
    base.iter()
        .zip(cur)
        .map(|(b, c)| {
            let d = i64::from(to_ordered(c.to_bits())) - i64::from(to_ordered(b.to_bits()));
            varint_len(zigzag(d))
        })
        .sum()
}

/// Encodes `cur` as zigzag-varint deltas against `base`, appending to
/// `out`. The full output capacity is reserved up front (one sizing pass
/// over the bit widths, see [`encoded_len`]); the byte stream itself is
/// runtime-dispatched — an AVX2 fast path batches the ordered-transform /
/// zigzag arithmetic 8 elements wide and emits whole 8×1-byte or
/// 8×2-byte groups when every delta in the group canonically encodes at
/// that width — but LEB128 is canonical, so both paths append identical
/// bytes.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn encode(base: &[f32], cur: &[f32], out: &mut Vec<u8>) {
    assert_eq!(base.len(), cur.len(), "delta::encode: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if fuiov_tensor::simd::enabled() {
        // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
        unsafe {
            out.reserve(x86::encoded_len_avx2(base, cur));
            x86::encode_avx2(base, cur, out);
        }
        return;
    }
    out.reserve(encoded_len(base, cur));
    encode_tail(base, cur, out);
}

/// The pinned scalar reference for [`encode`]: same reservation, never
/// dispatched to SIMD, byte-identical output.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn encode_scalar(base: &[f32], cur: &[f32], out: &mut Vec<u8>) {
    assert_eq!(base.len(), cur.len(), "delta::encode: length mismatch");
    out.reserve(encoded_len(base, cur));
    encode_tail(base, cur, out);
}

/// Scalar element-at-a-time encode body (also the tail handler for the
/// AVX2 path, which hands over the unprocessed suffix slices).
fn encode_tail(base: &[f32], cur: &[f32], out: &mut Vec<u8>) {
    for (b, c) in base.iter().zip(cur) {
        let d = i64::from(to_ordered(c.to_bits())) - i64::from(to_ordered(b.to_bits()));
        put_varint(out, zigzag(d));
    }
}

/// Decodes one element against `base_elem`, advancing `bytes`. `None` on
/// truncation, a varint longer than 10 bytes, or an out-of-range delta.
#[inline]
fn decode_one(base_elem: f32, bytes: &mut &[u8]) -> Option<f32> {
    let d = unzigzag(get_varint(bytes)?);
    let ord = i64::from(to_ordered(base_elem.to_bits())) + d;
    let ord = u32::try_from(ord).ok()?;
    Some(f32::from_bits(from_ordered(ord)))
}

/// Decodes `len` delta-coded elements against `base` (exact inverse of
/// [`encode`]). Returns `None` on truncation, an out-of-range delta, or
/// trailing bytes — never panics on malformed input. Runtime-dispatched:
/// the AVX2 path scans the continuation-bit map a word at a time and
/// decodes uniform all-1-byte and all-2-byte varint groups 8 elements
/// wide, re-entering the scalar element step whenever a mixed-width run
/// or longer varint interrupts; all error cases resolve to the same
/// `None`s as the scalar reference.
pub fn decode(base: &[f32], bytes: &[u8], len: usize) -> Option<Vec<f32>> {
    if base.len() != len {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if fuiov_tensor::simd::enabled() {
        // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
        return unsafe { x86::decode_avx2(base, bytes) };
    }
    decode_scalar(base, bytes, len)
}

/// The pinned scalar reference for [`decode`]: never dispatched to SIMD.
pub fn decode_scalar(base: &[f32], mut bytes: &[u8], len: usize) -> Option<Vec<f32>> {
    if base.len() != len {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for &b in base {
        out.push(decode_one(b, &mut bytes)?);
    }
    bytes.is_empty().then_some(out)
}

/// AVX2 fast paths for the delta codec. Only compiled on `x86_64`, only
/// executed when the runtime probe passed. The float↔ordered transforms
/// and the zigzag mapping are pure integer bijections, vectorized
/// branchlessly (`x >> 31` / `0 > x` masks replace the sign branches);
/// the variable-length part stays scalar except for the dominant
/// all-single-byte case, which a continuation-bit mask test
/// (`w & 0x8080…80 == 0`) detects 8 varints at a time. Byte streams and
/// `None` semantics are identical to the scalar reference by
/// construction: the vector lanes compute exactly the per-element
/// integer ops, and any group that can't take the fast path (long
/// varint, range overflow, truncation) is handed back to the scalar
/// element step.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{decode_one, encode_tail, put_varint};
    use std::arch::x86_64::*;

    /// Continuation bit of every byte in a `u64` group.
    const CONT_MASK: u64 = 0x8080_8080_8080_8080;

    /// Continuation-bit image of four consecutive 2-byte varints: set on
    /// the leading byte of each pair, clear on the closing byte.
    const DOUBLE_MASK: u64 = 0x0080_0080_0080_0080;

    /// `to_ordered` on 8 lanes: `b ^ ((b >>ₐ 31) | 0x8000_0000)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn to_ordered8(b: __m256i) -> __m256i {
        _mm256_xor_si256(
            b,
            _mm256_or_si256(
                _mm256_srai_epi32::<31>(b),
                _mm256_set1_epi32(0x8000_0000u32 as i32),
            ),
        )
    }

    /// Zero-extends the low/high four `u32` lanes to `i64`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn widen(v: __m256i) -> (__m256i, __m256i) {
        (
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)),
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(v)),
        )
    }

    /// Zigzag on 4 `i64` lanes: `(v << 1) ^ (v >> 63)`, with the missing
    /// 64-bit arithmetic shift synthesized as `0 > v` (all-ones iff
    /// negative).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn zigzag4(v: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_slli_epi64::<1>(v),
            _mm256_cmpgt_epi64(_mm256_setzero_si256(), v),
        )
    }

    /// Inverse of [`zigzag4`]: `(v >> 1) ^ (0 − (v & 1))`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn unzigzag4(v: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_srli_epi64::<1>(v),
            _mm256_sub_epi64(
                _mm256_setzero_si256(),
                _mm256_and_si256(v, _mm256_set1_epi64x(1)),
            ),
        )
    }

    /// Completes one 8-wide decode group from its zigzag lanes: unzigzag,
    /// add to the base's ordered image, range-check, inverse-transform,
    /// append. Returns `false` when any lane leaves `u32` range — the
    /// case where the scalar reference returns `None`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn emit_group8(
        zz_lo: __m256i,
        zz_hi: __m256i,
        base: *const f32,
        out: &mut Vec<f32>,
    ) -> bool {
        let d_lo = unzigzag4(zz_lo);
        let d_hi = unzigzag4(zz_hi);
        let ob = to_ordered8(_mm256_loadu_si256(base.cast()));
        let (b_lo, b_hi) = widen(ob);
        let ord_lo = _mm256_add_epi64(b_lo, d_lo);
        let ord_hi = _mm256_add_epi64(b_hi, d_hi);
        // In-range ⟺ the high 32 bits of every lane are zero; the scalar
        // reference would return `None` otherwise.
        let hi_bits = _mm256_set1_epi64x(0xFFFF_FFFF_0000_0000u64 as i64);
        if _mm256_testz_si256(_mm256_or_si256(ord_lo, ord_hi), hi_bits) == 0 {
            return false;
        }
        // Pack the (now 32-bit) lanes back into one register and invert
        // `to_ordered` branchlessly: `o ^ ((!(o >>ₐ 31)) | 0x8000_0000)`
        // selects `o ^ 0x8000_0000` for set sign bits and `!o` otherwise,
        // exactly the scalar `from_ordered`.
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let lo32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ord_lo, idx));
        let hi32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ord_hi, idx));
        let ord8 = _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(lo32), hi32);
        let mask = _mm256_or_si256(
            _mm256_xor_si256(_mm256_srai_epi32::<31>(ord8), _mm256_set1_epi32(-1)),
            _mm256_set1_epi32(0x8000_0000u32 as i32),
        );
        let mut vals = [0.0f32; 8];
        _mm256_storeu_ps(
            vals.as_mut_ptr(),
            _mm256_castsi256_ps(_mm256_xor_si256(ord8, mask)),
        );
        out.extend_from_slice(&vals);
        true
    }

    /// Vectorized [`super::encoded_len`]: same exact byte count (so the
    /// single up-front reservation is identical on both paths), with the
    /// per-element `varint_len` replaced by threshold counting —
    /// `len(v) = 1 + Σₖ (v > 2^{7k} − 1)`, four thresholds because a
    /// zigzagged `u32`-image delta occupies at most 34 bits (5 bytes).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available; lengths must match (checked
    /// by the public wrapper).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn encoded_len_avx2(base: &[f32], cur: &[f32]) -> usize {
        let n = base.len();
        let thresholds = [0x7Fi64, 0x3FFF, 0x1F_FFFF, 0x0FFF_FFFF];
        // Lanes accumulate `len − 1` per element (compare masks are −1).
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 8 <= n {
            let ob = to_ordered8(_mm256_loadu_si256(base.as_ptr().add(i).cast()));
            let oc = to_ordered8(_mm256_loadu_si256(cur.as_ptr().add(i).cast()));
            let (b_lo, b_hi) = widen(ob);
            let (c_lo, c_hi) = widen(oc);
            let zz_lo = zigzag4(_mm256_sub_epi64(c_lo, b_lo));
            let zz_hi = zigzag4(_mm256_sub_epi64(c_hi, b_hi));
            for t in thresholds {
                let tv = _mm256_set1_epi64x(t);
                acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(zz_lo, tv));
                acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(zz_hi, tv));
            }
            i += 8;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let extra: u64 = lanes.iter().sum();
        i + extra as usize + super::encoded_len(&base[i..], &cur[i..])
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available; lengths must match (checked
    /// by the public wrapper).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn encode_avx2(base: &[f32], cur: &[f32], out: &mut Vec<u8>) {
        let n = base.len();
        let mut i = 0;
        while i + 8 <= n {
            let ob = to_ordered8(_mm256_loadu_si256(base.as_ptr().add(i).cast()));
            let oc = to_ordered8(_mm256_loadu_si256(cur.as_ptr().add(i).cast()));
            let (b_lo, b_hi) = widen(ob);
            let (c_lo, c_hi) = widen(oc);
            let zz_lo = zigzag4(_mm256_sub_epi64(c_lo, b_lo));
            let zz_hi = zigzag4(_mm256_sub_epi64(c_hi, b_hi));
            let all = _mm256_or_si256(zz_lo, zz_hi);
            let mut zz = [0u64; 8];
            _mm256_storeu_si256(zz.as_mut_ptr().cast(), zz_lo);
            _mm256_storeu_si256(zz.as_mut_ptr().add(4).cast(), zz_hi);
            if _mm256_testz_si256(all, _mm256_set1_epi64x(!0x7Fi64)) != 0 {
                // All eight deltas fit one varint byte each.
                out.extend_from_slice(&zz.map(|v| v as u8));
            } else {
                // Uniform two-byte group? Needs every delta in
                // `0x80..=0x3FFF`: within 14 bits and none small enough
                // to canonically encode in one byte.
                let fits14 = _mm256_testz_si256(all, _mm256_set1_epi64x(!0x3FFFi64)) != 0;
                let low = _mm256_set1_epi64x(0x80);
                let any_small = _mm256_movemask_epi8(_mm256_or_si256(
                    _mm256_cmpgt_epi64(low, zz_lo),
                    _mm256_cmpgt_epi64(low, zz_hi),
                )) != 0;
                if fits14 && !any_small {
                    let mut pairs = [0u8; 16];
                    for (pair, &v) in pairs.chunks_exact_mut(2).zip(&zz) {
                        pair[0] = (v as u8 & 0x7F) | 0x80;
                        pair[1] = (v >> 7) as u8;
                    }
                    out.extend_from_slice(&pairs);
                } else {
                    for &v in &zz {
                        put_varint(out, v);
                    }
                }
            }
            i += 8;
        }
        encode_tail(&base[i..], &cur[i..], out);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available; `base.len()` is the element
    /// count (checked by the public wrapper).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_avx2(base: &[f32], mut bytes: &[u8]) -> Option<Vec<f32>> {
        let n = base.len();
        let mut out: Vec<f32> = Vec::with_capacity(n);
        let mut i = 0;
        while i < n {
            if i + 8 <= n && bytes.len() >= 8 {
                let w = bytes.as_ptr().cast::<u64>().read_unaligned();
                if w & CONT_MASK == 0 {
                    // Eight single-byte varints: widen bytes → u64 lanes
                    // and finish through the shared group step.
                    let grp = _mm_set_epi64x(0, w as i64);
                    let zz_lo = _mm256_cvtepu8_epi64(grp);
                    let zz_hi = _mm256_cvtepu8_epi64(_mm_srli_si128::<4>(grp));
                    if !emit_group8(zz_lo, zz_hi, base.as_ptr().add(i), &mut out) {
                        return None;
                    }
                    bytes = &bytes[8..];
                    i += 8;
                    continue;
                }
                if bytes.len() >= 16 {
                    let w1 = bytes.as_ptr().add(8).cast::<u64>().read_unaligned();
                    if w & CONT_MASK == DOUBLE_MASK && w1 & CONT_MASK == DOUBLE_MASK {
                        // Eight two-byte varints (the dominant shape for
                        // checkpoint-sized deltas): each u16 of the 16
                        // bytes is one varint; reassemble the payload as
                        // `(lo & 0x7F) | ((hi & 0x7F) << 7)` per lane.
                        let grp = _mm_loadu_si128(bytes.as_ptr().cast());
                        let g_lo = _mm256_cvtepu16_epi64(grp);
                        let g_hi = _mm256_cvtepu16_epi64(_mm_srli_si128::<8>(grp));
                        let lo7 = _mm256_set1_epi64x(0x7F);
                        let hi7 = _mm256_set1_epi64x(0x7F00);
                        let join = |g: __m256i| {
                            _mm256_or_si256(
                                _mm256_and_si256(g, lo7),
                                _mm256_srli_epi64::<1>(_mm256_and_si256(g, hi7)),
                            )
                        };
                        if !emit_group8(join(g_lo), join(g_hi), base.as_ptr().add(i), &mut out) {
                            return None;
                        }
                        bytes = &bytes[16..];
                        i += 8;
                        continue;
                    }
                }
            }
            // A longer varint (or a short tail) interrupts the run: take
            // one scalar step, then retry the vector path.
            out.push(decode_one(*base.get_unchecked(i), &mut bytes)?);
            i += 1;
        }
        bytes.is_empty().then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_mapping_is_a_monotone_bijection() {
        let samples = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1e-30,
            -1e-30,
            f32::NAN,
        ];
        for &v in &samples {
            let bits = v.to_bits();
            assert_eq!(from_ordered(to_ordered(bits)), bits, "{v}");
        }
        // Numeric order ↦ unsigned order (finite values; total_cmp also
        // puts -0.0 below +0.0, matching the mapping).
        let mut finite: Vec<f32> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        finite.sort_by(f32::total_cmp);
        let mapped: Vec<u32> = finite.iter().map(|v| to_ordered(v.to_bits())).collect();
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        assert_eq!(mapped, sorted);
        // -0.0 maps strictly below +0.0.
        assert!(to_ordered((-0.0f32).to_bits()) < to_ordered(0.0f32.to_bits()));
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(get_varint(&mut s), Some(v));
            assert!(s.is_empty());
        }
        let mut s: &[u8] = &[0x80, 0x80]; // truncated continuation
        assert_eq!(get_varint(&mut s), None);
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let base = vec![0.5f32, -0.25, 0.0, -0.0, 1e-8, 1000.0, f32::NAN];
        let cur = vec![0.50001f32, -0.26, -0.0, 0.0, -1e-8, 999.5, 3.25];
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        let back = decode(&base, &buf, cur.len()).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&back), bits(&cur));
    }

    #[test]
    fn small_movement_compresses_below_f32() {
        // A realistic SGD step: every parameter moves by ~1e-4 relative.
        let base: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let cur: Vec<f32> = base.iter().map(|v| v - 1e-4 * v).collect();
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        assert!(
            buf.len() < cur.len() * 4,
            "delta stream ({} B) should beat raw f32 ({} B)",
            buf.len(),
            cur.len() * 4
        );
        let back = decode(&base, &buf, cur.len()).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            cur.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let base = vec![1.0f32; 8];
        let cur = vec![1.25f32; 8];
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        assert!(decode(&base, &buf[..buf.len() - 1], 8).is_none());
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode(&base, &extended, 8).is_none());
        assert!(
            decode(&base[..4], &buf, 8).is_none(),
            "base length mismatch"
        );
    }

    #[test]
    fn empty_vectors_encode_to_nothing() {
        let mut buf = Vec::new();
        encode(&[], &[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(decode(&[], &buf, 0), Some(Vec::new()));
    }

    #[test]
    fn encoded_len_is_exact_and_reserved_up_front() {
        let base: Vec<f32> = (0..300).map(|i| (i as f32).cos()).collect();
        // Mixed magnitudes: tiny deltas (1-byte varints) and huge ones.
        let cur: Vec<f32> = base
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 7 == 0 {
                    -v * 1e20
                } else {
                    v * (1.0 + 1e-6)
                }
            })
            .collect();
        let predicted = encoded_len(&base, &cur);
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        assert_eq!(buf.len(), predicted);
        // The single up-front reserve covered the whole stream.
        assert!(buf.capacity() >= predicted);
        let mut scalar = Vec::new();
        encode_scalar(&base, &cur, &mut scalar);
        assert_eq!(buf, scalar, "dispatched and scalar streams must match");
    }

    #[test]
    fn decode_returns_none_on_length_overflow_without_panicking() {
        // A delta that pushes the ordered image past u32::MAX from the
        // very top of the range: the error path must be `None`, never a
        // panic or a wrapped bit pattern.
        let top = f32::from_bits(0x7FFF_FFFF); // ordered image == u32::MAX
        let mut buf = Vec::new();
        put_varint(&mut buf, zigzag(1));
        assert_eq!(decode(&[top], &buf, 1), None);
        assert_eq!(decode_scalar(&[top], &buf, 1), None);
        // Same overflow planted inside an 8-wide all-single-byte group,
        // so the SIMD fast path's vectorized range check is what fires.
        let base8 = [top; 8];
        let buf8 = vec![zigzag(1) as u8; 8];
        assert_eq!(decode(&base8, &buf8, 8), None);
        assert_eq!(decode_scalar(&base8, &buf8, 8), None);
        // Underflow off the bottom of the range, mid-group.
        let bottom = f32::from_bits(0xFFFF_FFFF); // ordered image == 0
        let base_lo = [bottom; 8];
        let buf_lo = vec![zigzag(-1) as u8; 8];
        assert_eq!(decode(&base_lo, &buf_lo, 8), None);
        assert_eq!(decode_scalar(&base_lo, &buf_lo, 8), None);
        // An over-long varint (11 continuation-heavy bytes) is malformed.
        let long = vec![0x80u8; 11];
        assert_eq!(decode(&[0.0], &long, 1), None);
        // Element-count mismatch against the base.
        assert_eq!(decode(&[0.0, 1.0], &[0, 0], 1), None);
    }

    #[test]
    fn mixed_varint_widths_roundtrip_through_both_paths() {
        // Alternating short and long varints defeat the 8-wide fast path
        // on some groups and admit it on others; both paths must agree
        // with each other and with the input, bit for bit.
        let base: Vec<f32> = (0..67).map(|i| (i as f32) * 0.125 - 4.0).collect();
        let cur: Vec<f32> = base
            .iter()
            .enumerate()
            .map(|(i, v)| match i % 9 {
                0 => v * -3.0e10,
                1..=4 => f32::from_bits(v.to_bits() ^ 1),
                _ => *v,
            })
            .collect();
        for n in 0..=base.len() {
            let mut buf = Vec::new();
            encode(&base[..n], &cur[..n], &mut buf);
            let mut scalar = Vec::new();
            encode_scalar(&base[..n], &cur[..n], &mut scalar);
            assert_eq!(buf, scalar, "n={n}");
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            let fast = decode(&base[..n], &buf, n).unwrap();
            let slow = decode_scalar(&base[..n], &buf, n).unwrap();
            assert_eq!(bits(&fast), bits(&cur[..n]), "n={n}");
            assert_eq!(bits(&slow), bits(&cur[..n]), "n={n}");
        }
    }
}
