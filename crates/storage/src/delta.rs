//! Lossless delta coding of `f32` checkpoint vectors.
//!
//! Between two keyframes the global model moves slowly, so consecutive
//! checkpoints agree in their high bits. This module encodes a round's
//! model as the element-wise difference from a *base* round, varint
//! (LEB128) compressed after zigzag mapping — and reconstructs the
//! original **bit for bit**, which is what lets the tiered
//! [`HistoryStore`](crate::history::HistoryStore) keep replay bitwise
//! identical to the flat in-memory store.
//!
//! The difference is taken in a *totally ordered* integer image of the
//! `f32` bit pattern (sign-magnitude folded so that the integer order
//! matches numeric order). Nearby floats map to nearby integers, so
//! small parameter movement yields small deltas and short varints; the
//! mapping is a bijection, so the inverse transform is exact for every
//! bit pattern including `-0.0` and NaN payloads.

/// Maps `f32` bits to a totally ordered `u32`: numeric order of the
/// floats (with `-0.0 < +0.0`) becomes unsigned integer order.
#[inline]
pub fn to_ordered(bits: u32) -> u32 {
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`to_ordered`].
#[inline]
pub fn from_ordered(ord: u32) -> u32 {
    if ord & 0x8000_0000 != 0 {
        ord & 0x7FFF_FFFF
    } else {
        !ord
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, advancing `buf`. `None` on truncation or a
/// varint longer than 10 bytes.
#[inline]
fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for shift in 0..10 {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        v |= u64::from(byte & 0x7F) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Encodes `cur` as zigzag-varint deltas against `base`, appending to
/// `out`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn encode(base: &[f32], cur: &[f32], out: &mut Vec<u8>) {
    assert_eq!(base.len(), cur.len(), "delta::encode: length mismatch");
    for (b, c) in base.iter().zip(cur) {
        let d = i64::from(to_ordered(c.to_bits())) - i64::from(to_ordered(b.to_bits()));
        put_varint(out, zigzag(d));
    }
}

/// Decodes `len` delta-coded elements against `base` (exact inverse of
/// [`encode`]). Returns `None` on truncation, an out-of-range delta, or
/// trailing bytes.
pub fn decode(base: &[f32], mut bytes: &[u8], len: usize) -> Option<Vec<f32>> {
    if base.len() != len {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for b in base {
        let d = unzigzag(get_varint(&mut bytes)?);
        let ord = i64::from(to_ordered(b.to_bits())) + d;
        let ord = u32::try_from(ord).ok()?;
        out.push(f32::from_bits(from_ordered(ord)));
    }
    bytes.is_empty().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_mapping_is_a_monotone_bijection() {
        let samples = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1e-30,
            -1e-30,
            f32::NAN,
        ];
        for &v in &samples {
            let bits = v.to_bits();
            assert_eq!(from_ordered(to_ordered(bits)), bits, "{v}");
        }
        // Numeric order ↦ unsigned order (finite values; total_cmp also
        // puts -0.0 below +0.0, matching the mapping).
        let mut finite: Vec<f32> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        finite.sort_by(f32::total_cmp);
        let mapped: Vec<u32> = finite.iter().map(|v| to_ordered(v.to_bits())).collect();
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        assert_eq!(mapped, sorted);
        // -0.0 maps strictly below +0.0.
        assert!(to_ordered((-0.0f32).to_bits()) < to_ordered(0.0f32.to_bits()));
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(get_varint(&mut s), Some(v));
            assert!(s.is_empty());
        }
        let mut s: &[u8] = &[0x80, 0x80]; // truncated continuation
        assert_eq!(get_varint(&mut s), None);
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let base = vec![0.5f32, -0.25, 0.0, -0.0, 1e-8, 1000.0, f32::NAN];
        let cur = vec![0.50001f32, -0.26, -0.0, 0.0, -1e-8, 999.5, 3.25];
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        let back = decode(&base, &buf, cur.len()).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&back), bits(&cur));
    }

    #[test]
    fn small_movement_compresses_below_f32() {
        // A realistic SGD step: every parameter moves by ~1e-4 relative.
        let base: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let cur: Vec<f32> = base.iter().map(|v| v - 1e-4 * v).collect();
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        assert!(
            buf.len() < cur.len() * 4,
            "delta stream ({} B) should beat raw f32 ({} B)",
            buf.len(),
            cur.len() * 4
        );
        let back = decode(&base, &buf, cur.len()).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            cur.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let base = vec![1.0f32; 8];
        let cur = vec![1.25f32; 8];
        let mut buf = Vec::new();
        encode(&base, &cur, &mut buf);
        assert!(decode(&base, &buf[..buf.len() - 1], 8).is_none());
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode(&base, &extended, 8).is_none());
        assert!(
            decode(&base[..4], &buf, 8).is_none(),
            "base length mismatch"
        );
    }

    #[test]
    fn empty_vectors_encode_to_nothing() {
        let mut buf = Vec::new();
        encode(&[], &[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(decode(&[], &buf, 0), Some(Vec::new()));
    }
}
