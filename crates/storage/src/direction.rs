//! Sign-only gradient storage (the paper's §IV direction quantisation).
//!
//! A gradient element is stored as its *direction*: `+1` if it exceeds the
//! threshold `δ`, `−1` if below `−δ`, `0` otherwise. Directions are packed
//! 2 bits per element (4 per byte), which is where the paper's "~95 %
//! storage savings" claim comes from: 2 bits vs 32 bits is a 93.75 %
//! reduction before even counting allocator overheads.

use fuiov_tensor::vector::sign_with_threshold;

/// Bit patterns for the three directions.
const CODE_ZERO: u8 = 0b00;
const CODE_POS: u8 = 0b01;
const CODE_NEG: u8 = 0b10;

/// Decodes one 2-bit code, with the same defensive `0b11 → 0` mapping as
/// [`GradientDirection::sign`].
const fn decode_code(code: u8) -> i8 {
    match code {
        CODE_POS => 1,
        CODE_NEG => -1,
        _ => 0,
    }
}

/// 256-entry byte LUT: packed byte → its four decoded signs, low pair
/// first. Built at compile time; one table lookup replaces four
/// shift/mask/branch sequences in the decode hot loops.
const SIGN_LUT: [[i8; 4]; 256] = {
    let mut lut = [[0i8; 4]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut i = 0usize;
        while i < 4 {
            lut[b][i] = decode_code(((b as u8) >> (i * 2)) & 0b11);
            i += 1;
        }
        b += 1;
    }
    lut
};

/// [`SIGN_LUT`] widened to `f32`, so full bytes decode via a single
/// 16-byte `copy_from_slice` instead of four int→float conversions.
const F32_LUT: [[f32; 4]; 256] = {
    let mut lut = [[0.0f32; 4]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut i = 0usize;
        while i < 4 {
            lut[b][i] = SIGN_LUT[b][i] as f32;
            i += 1;
        }
        b += 1;
    }
    lut
};

/// A packed vector of gradient directions (`+1`, `0`, `−1`), 2 bits each.
///
/// ```
/// use fuiov_storage::direction::GradientDirection;
///
/// let d = GradientDirection::quantize(&[0.5, -0.3, 1e-9], 1e-6);
/// assert_eq!(d.to_signs(), vec![1, -1, 0]);
/// assert_eq!(d.byte_size(), 1); // 3 elements fit in one byte
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradientDirection {
    len: usize,
    packed: Vec<u8>,
}

impl GradientDirection {
    /// Quantises a gradient with dead-zone threshold `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn quantize(grad: &[f32], delta: f32) -> Self {
        Self::from_signs(&sign_with_threshold(grad, delta))
    }

    /// Packs an explicit sign vector.
    ///
    /// # Panics
    ///
    /// Panics if any element is outside `{-1, 0, 1}`.
    pub fn from_signs(signs: &[i8]) -> Self {
        let mut packed = vec![0u8; signs.len().div_ceil(4)];
        for (i, &s) in signs.iter().enumerate() {
            let code = match s {
                0 => CODE_ZERO,
                1 => CODE_POS,
                -1 => CODE_NEG,
                other => panic!("from_signs: invalid sign {other}"),
            };
            packed[i / 4] |= code << ((i % 4) * 2);
        }
        GradientDirection {
            len: signs.len(),
            packed,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Direction of element `i` as an `i8` in `{-1, 0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sign(&self, i: usize) -> i8 {
        assert!(i < self.len, "sign: index out of bounds");
        match (self.packed[i / 4] >> ((i % 4) * 2)) & 0b11 {
            CODE_ZERO => 0,
            CODE_POS => 1,
            CODE_NEG => -1,
            _ => 0, // 0b11 never written; treat defensively as 0
        }
    }

    /// Unpacks to a sign vector (word-level: 4 signs per byte LUT hit).
    pub fn to_signs(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.len];
        for (chunk, &byte) in out.chunks_exact_mut(4).zip(&self.packed) {
            chunk.copy_from_slice(&SIGN_LUT[byte as usize]);
        }
        let tail = self.len / 4 * 4;
        for (i, slot) in out.iter_mut().enumerate().skip(tail) {
            *slot = self.sign(i);
        }
        out
    }

    /// Unpacks to `f32` (the form Eq. 6 consumes as the base gradient).
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.decode_into(&mut out);
        out
    }

    /// Decodes the stored signs into a caller-owned `f32` buffer — the
    /// zero-allocation form of [`GradientDirection::to_f32`], four elements
    /// per byte-LUT hit. This is the batched replay loop's way of seeding
    /// each estimate row in place.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "decode_into: length mismatch");
        for (chunk, &byte) in out.chunks_exact_mut(4).zip(&self.packed) {
            chunk.copy_from_slice(&F32_LUT[byte as usize]);
        }
        let tail = self.len / 4 * 4;
        for (i, slot) in out.iter_mut().enumerate().skip(tail) {
            *slot = f32::from(self.sign(i));
        }
    }

    /// Fused decode-and-accumulate: `acc[i] += a · sign(i)` over the whole
    /// vector, with the sign decoded through the byte LUT. Arithmetic is
    /// exactly `a * f64::from(sign)` per element — including the zeros —
    /// so replacing a scalar `to_signs()` accumulation loop with this
    /// kernel changes no bits.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.len()`.
    pub fn decode_axpy(&self, a: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.len, "decode_axpy: length mismatch");
        for (chunk, &byte) in acc.chunks_exact_mut(4).zip(&self.packed) {
            let signs = &SIGN_LUT[byte as usize];
            for (slot, &s) in chunk.iter_mut().zip(signs) {
                *slot += a * f64::from(s);
            }
        }
        let tail = self.len / 4 * 4;
        for (i, slot) in acc.iter_mut().enumerate().skip(tail) {
            *slot += a * f64::from(self.sign(i));
        }
    }

    /// The raw packed 2-bit words (4 signs per byte, low pair first) —
    /// what the spill-segment codec copies verbatim, so a reloaded
    /// direction is bit-identical by construction.
    pub fn packed_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// Reassembles a direction from raw packed words. `None` if the byte
    /// count doesn't match `len` (a malformed spill record).
    pub(crate) fn from_packed(len: usize, packed: Vec<u8>) -> Option<Self> {
        (packed.len() == len.div_ceil(4)).then_some(GradientDirection { len, packed })
    }

    /// Bytes used by the packed representation.
    pub fn byte_size(&self) -> usize {
        self.packed.len()
    }

    /// Bytes an uncompressed `f32` gradient of the same length would use.
    pub fn full_f32_byte_size(&self) -> usize {
        self.len * std::mem::size_of::<f32>()
    }

    /// Fraction of storage saved vs full `f32` storage (≈ 0.9375 plus
    /// rounding effects; `0.0` for empty vectors).
    pub fn savings_ratio(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.byte_size() as f64 / self.full_f32_byte_size() as f64
    }

    /// Iterates over the stored signs without materialising a vector.
    ///
    /// ```
    /// use fuiov_storage::direction::GradientDirection;
    /// let d = GradientDirection::from_signs(&[1, 0, -1]);
    /// assert_eq!(d.iter().sum::<i8>(), 0);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { dir: self, pos: 0 }
    }

    /// Fraction of elements quantised to zero (diagnostic for choosing δ).
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let zeros = (0..self.len).filter(|&i| self.sign(i) == 0).count();
        zeros as f64 / self.len as f64
    }
}

/// Iterator over the signs of a [`GradientDirection`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    dir: &'a GradientDirection,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = i8;

    fn next(&mut self) -> Option<i8> {
        if self.pos >= self.dir.len() {
            return None;
        }
        let s = self.dir.sign(self.pos);
        self.pos += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.dir.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a GradientDirection {
    type Item = i8;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<i8> for GradientDirection {
    /// Collects signs into the packed representation.
    ///
    /// # Panics
    ///
    /// Panics if any element is outside `{-1, 0, 1}`.
    fn from_iter<I: IntoIterator<Item = i8>>(iter: I) -> Self {
        let signs: Vec<i8> = iter.into_iter().collect();
        GradientDirection::from_signs(&signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sign_patterns() {
        let signs: Vec<i8> = vec![1, -1, 0, 1, 1, 0, -1, -1, 0];
        let d = GradientDirection::from_signs(&signs);
        assert_eq!(d.to_signs(), signs);
        assert_eq!(d.len(), 9);
        assert_eq!(d.byte_size(), 3);
    }

    #[test]
    fn quantize_applies_dead_zone() {
        let d = GradientDirection::quantize(&[2e-6, -2e-6, 5e-7, -5e-7], 1e-6);
        assert_eq!(d.to_signs(), vec![1, -1, 0, 0]);
    }

    #[test]
    fn to_f32_matches_signs() {
        let d = GradientDirection::from_signs(&[1, 0, -1]);
        assert_eq!(d.to_f32(), vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn savings_is_about_94_percent() {
        let grad = vec![0.1f32; 10_000];
        let d = GradientDirection::quantize(&grad, 1e-6);
        assert_eq!(d.byte_size(), 2500);
        assert_eq!(d.full_f32_byte_size(), 40_000);
        assert!((d.savings_ratio() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn empty_vector_is_fine() {
        let d = GradientDirection::quantize(&[], 0.0);
        assert!(d.is_empty());
        assert_eq!(d.byte_size(), 0);
        assert_eq!(d.savings_ratio(), 0.0);
        assert_eq!(d.sparsity(), 0.0);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let d = GradientDirection::from_signs(&[0, 0, 1, -1]);
        assert!((d.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid sign")]
    fn rejects_invalid_sign() {
        let _ = GradientDirection::from_signs(&[2]);
    }

    #[test]
    fn iterator_roundtrip_and_hints() {
        let signs = vec![1i8, -1, 0, 1, 0];
        let d: GradientDirection = signs.iter().copied().collect();
        assert_eq!(d.iter().collect::<Vec<i8>>(), signs);
        assert_eq!(d.iter().len(), 5);
        let mut it = d.iter();
        it.next();
        assert_eq!(it.size_hint(), (4, Some(4)));
        // &d into_iter sugar.
        let total: i8 = (&d).into_iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn lut_agrees_with_scalar_decode_for_every_byte() {
        // Exhaustive: every possible packed byte, every lane, including the
        // never-written 0b11 code (decodes defensively to 0 on both paths).
        for byte in 0u8..=255 {
            let d = GradientDirection {
                len: 4,
                packed: vec![byte],
            };
            for lane in 0..4 {
                assert_eq!(
                    SIGN_LUT[byte as usize][lane],
                    d.sign(lane),
                    "byte {byte:#010b}"
                );
                assert_eq!(
                    F32_LUT[byte as usize][lane].to_bits(),
                    f32::from(d.sign(lane)).to_bits(),
                    "byte {byte:#010b}"
                );
            }
        }
    }

    #[test]
    fn decode_into_matches_scalar_at_all_tail_lengths() {
        for n in 0..=17usize {
            let signs: Vec<i8> = (0..n).map(|i| [1i8, -1, 0, 0, 1][i % 5]).collect();
            let d = GradientDirection::from_signs(&signs);
            let mut out = vec![7.0f32; n]; // poisoned: every slot must be written
            d.decode_into(&mut out);
            let scalar: Vec<f32> = (0..n).map(|i| f32::from(d.sign(i))).collect();
            assert_eq!(out, scalar, "n={n}");
            assert_eq!(d.to_f32(), scalar, "n={n}");
        }
    }

    #[test]
    fn decode_axpy_matches_scalar_accumulation_bitwise() {
        for n in [0usize, 3, 4, 7, 12, 31] {
            let signs: Vec<i8> = (0..n).map(|i| [0i8, 1, -1][i % 3]).collect();
            let d = GradientDirection::from_signs(&signs);
            let w = 2.375f64;
            let mut acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
            let mut scalar = acc.clone();
            d.decode_axpy(w, &mut acc);
            for (slot, s) in scalar.iter_mut().zip(d.to_signs()) {
                *slot += w * f64::from(s);
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&acc), bits(&scalar), "n={n}");
        }
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in 1..=9usize {
            let signs: Vec<i8> = (0..n).map(|i| [1i8, -1, 0][i % 3]).collect();
            let d = GradientDirection::from_signs(&signs);
            assert_eq!(d.to_signs(), signs, "roundtrip failed for n={n}");
            assert_eq!(d.byte_size(), n.div_ceil(4));
        }
    }
}
