//! Sign-only gradient storage (the paper's §IV direction quantisation).
//!
//! A gradient element is stored as its *direction*: `+1` if it exceeds the
//! threshold `δ`, `−1` if below `−δ`, `0` otherwise. Directions are packed
//! 2 bits per element (4 per byte), which is where the paper's "~95 %
//! storage savings" claim comes from: 2 bits vs 32 bits is a 93.75 %
//! reduction before even counting allocator overheads.

use fuiov_tensor::vector::sign_with_threshold;

/// Bit patterns for the three directions.
const CODE_ZERO: u8 = 0b00;
const CODE_POS: u8 = 0b01;
const CODE_NEG: u8 = 0b10;

/// Decodes one 2-bit code, with the same defensive `0b11 → 0` mapping as
/// [`GradientDirection::sign`].
const fn decode_code(code: u8) -> i8 {
    match code {
        CODE_POS => 1,
        CODE_NEG => -1,
        _ => 0,
    }
}

/// 256-entry byte LUT: packed byte → its four decoded signs, low pair
/// first. Built at compile time; one table lookup replaces four
/// shift/mask/branch sequences in the decode hot loops.
const SIGN_LUT: [[i8; 4]; 256] = {
    let mut lut = [[0i8; 4]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut i = 0usize;
        while i < 4 {
            lut[b][i] = decode_code(((b as u8) >> (i * 2)) & 0b11);
            i += 1;
        }
        b += 1;
    }
    lut
};

/// [`SIGN_LUT`] widened to `f32`, so full bytes decode via a single
/// 16-byte `copy_from_slice` instead of four int→float conversions.
const F32_LUT: [[f32; 4]; 256] = {
    let mut lut = [[0.0f32; 4]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut i = 0usize;
        while i < 4 {
            lut[b][i] = SIGN_LUT[b][i] as f32;
            i += 1;
        }
        b += 1;
    }
    lut
};

/// A packed vector of gradient directions (`+1`, `0`, `−1`), 2 bits each.
///
/// ```
/// use fuiov_storage::direction::GradientDirection;
///
/// let d = GradientDirection::quantize(&[0.5, -0.3, 1e-9], 1e-6);
/// assert_eq!(d.to_signs(), vec![1, -1, 0]);
/// assert_eq!(d.byte_size(), 1); // 3 elements fit in one byte
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradientDirection {
    len: usize,
    packed: Vec<u8>,
}

impl GradientDirection {
    /// Quantises a gradient with dead-zone threshold `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn quantize(grad: &[f32], delta: f32) -> Self {
        Self::from_signs(&sign_with_threshold(grad, delta))
    }

    /// Packs an explicit sign vector.
    ///
    /// # Panics
    ///
    /// Panics if any element is outside `{-1, 0, 1}`.
    pub fn from_signs(signs: &[i8]) -> Self {
        let mut packed = vec![0u8; signs.len().div_ceil(4)];
        for (i, &s) in signs.iter().enumerate() {
            let code = match s {
                0 => CODE_ZERO,
                1 => CODE_POS,
                -1 => CODE_NEG,
                other => panic!("from_signs: invalid sign {other}"),
            };
            packed[i / 4] |= code << ((i % 4) * 2);
        }
        GradientDirection {
            len: signs.len(),
            packed,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Direction of element `i` as an `i8` in `{-1, 0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sign(&self, i: usize) -> i8 {
        assert!(i < self.len, "sign: index out of bounds");
        match (self.packed[i / 4] >> ((i % 4) * 2)) & 0b11 {
            CODE_ZERO => 0,
            CODE_POS => 1,
            CODE_NEG => -1,
            _ => 0, // 0b11 never written; treat defensively as 0
        }
    }

    /// Unpacks to a sign vector. Runtime-dispatched: 32 signs per
    /// iteration through the AVX2 shuffle decode where available, 4 signs
    /// per byte-LUT hit otherwise (`fuiov_tensor::simd` owns the choice;
    /// both paths produce identical bytes).
    pub fn to_signs(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.len];
        #[cfg(target_arch = "x86_64")]
        if fuiov_tensor::simd::enabled() {
            // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
            unsafe { x86::signs_avx2(&self.packed, &mut out) };
            return out;
        }
        signs_tail(&self.packed, &mut out, 0);
        out
    }

    /// The pinned scalar reference for [`GradientDirection::to_signs`]:
    /// never dispatched to SIMD (word-level, 4 signs per byte LUT hit).
    pub fn to_signs_scalar(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.len];
        signs_tail(&self.packed, &mut out, 0);
        out
    }

    /// Unpacks to `f32` (the form Eq. 6 consumes as the base gradient).
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.decode_into(&mut out);
        out
    }

    /// Decodes the stored signs into a caller-owned `f32` buffer — the
    /// zero-allocation form of [`GradientDirection::to_f32`]. This is the
    /// batched replay loop's way of seeding each estimate row in place.
    /// Runtime-dispatched: 32 elements per iteration (8 packed bytes →
    /// one shuffle decode → four 8-lane widening stores) on AVX2, four
    /// elements per byte-LUT hit otherwise; identical bytes either way.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "decode_into: length mismatch");
        #[cfg(target_arch = "x86_64")]
        if fuiov_tensor::simd::enabled() {
            // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
            unsafe { x86::decode_f32_avx2(&self.packed, out) };
            return;
        }
        decode_f32_tail(&self.packed, out, 0);
    }

    /// The pinned scalar reference for [`GradientDirection::decode_into`]:
    /// never dispatched to SIMD.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into_scalar(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "decode_into: length mismatch");
        decode_f32_tail(&self.packed, out, 0);
    }

    /// Fused decode-and-accumulate: `acc[i] += a · sign(i)` over the whole
    /// vector, with the sign decoded through the byte LUT. Arithmetic is
    /// exactly `a * f64::from(sign)` per element — including the zeros —
    /// so replacing a scalar `to_signs()` accumulation loop with this
    /// kernel changes no bits.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.len()`.
    pub fn decode_axpy(&self, a: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.len, "decode_axpy: length mismatch");
        #[cfg(target_arch = "x86_64")]
        if fuiov_tensor::simd::enabled() {
            // SAFETY: `simd::enabled()` implies the AVX2 probe passed.
            unsafe { x86::axpy_avx2(&self.packed, a, acc) };
            return;
        }
        axpy_tail(&self.packed, a, acc, 0);
    }

    /// The pinned scalar reference for [`GradientDirection::decode_axpy`]:
    /// never dispatched to SIMD.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.len()`.
    pub fn decode_axpy_scalar(&self, a: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.len, "decode_axpy: length mismatch");
        axpy_tail(&self.packed, a, acc, 0);
    }

    /// The raw packed 2-bit words (4 signs per byte, low pair first) —
    /// what the spill-segment codec copies verbatim, so a reloaded
    /// direction is bit-identical by construction.
    pub fn packed_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// Reassembles a direction from raw packed words. `None` if the byte
    /// count doesn't match `len` (a malformed spill record or wire frame).
    pub fn from_packed(len: usize, packed: Vec<u8>) -> Option<Self> {
        (packed.len() == len.div_ceil(4)).then_some(GradientDirection { len, packed })
    }

    /// Bytes used by the packed representation.
    pub fn byte_size(&self) -> usize {
        self.packed.len()
    }

    /// Bytes an uncompressed `f32` gradient of the same length would use.
    pub fn full_f32_byte_size(&self) -> usize {
        self.len * std::mem::size_of::<f32>()
    }

    /// Fraction of storage saved vs full `f32` storage (≈ 0.9375 plus
    /// rounding effects; `0.0` for empty vectors).
    pub fn savings_ratio(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.byte_size() as f64 / self.full_f32_byte_size() as f64
    }

    /// Iterates over the stored signs without materialising a vector.
    ///
    /// ```
    /// use fuiov_storage::direction::GradientDirection;
    /// let d = GradientDirection::from_signs(&[1, 0, -1]);
    /// assert_eq!(d.iter().sum::<i8>(), 0);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { dir: self, pos: 0 }
    }

    /// Fraction of elements quantised to zero (diagnostic for choosing δ).
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let zeros = (0..self.len).filter(|&i| self.sign(i) == 0).count();
        zeros as f64 / self.len as f64
    }
}

/// Scalar sign decode of elements `from..out.len()` (`from` must be a
/// multiple of 4, i.e. byte-aligned): full bytes through [`SIGN_LUT`],
/// then the final partial byte lane by lane. With `from == 0` this *is*
/// the scalar reference; the AVX2 kernels re-enter it for their tails.
fn signs_tail(packed: &[u8], out: &mut [i8], from: usize) {
    let full_end = out.len() / 4 * 4;
    for (chunk, &byte) in out[from..full_end]
        .chunks_exact_mut(4)
        .zip(&packed[from / 4..])
    {
        chunk.copy_from_slice(&SIGN_LUT[byte as usize]);
    }
    for (lane, slot) in out[full_end..].iter_mut().enumerate() {
        *slot = SIGN_LUT[packed[full_end / 4] as usize][lane];
    }
}

/// `f32` twin of [`signs_tail`], through [`F32_LUT`].
fn decode_f32_tail(packed: &[u8], out: &mut [f32], from: usize) {
    let full_end = out.len() / 4 * 4;
    for (chunk, &byte) in out[from..full_end]
        .chunks_exact_mut(4)
        .zip(&packed[from / 4..])
    {
        chunk.copy_from_slice(&F32_LUT[byte as usize]);
    }
    for (lane, slot) in out[full_end..].iter_mut().enumerate() {
        *slot = F32_LUT[packed[full_end / 4] as usize][lane];
    }
}

/// Accumulating twin of [`signs_tail`]: `acc[i] += a · sign(i)` for
/// elements `from..acc.len()`, zeros included (the exact scalar op
/// sequence the AVX2 kernel reproduces).
fn axpy_tail(packed: &[u8], a: f64, acc: &mut [f64], from: usize) {
    let full_end = acc.len() / 4 * 4;
    for (chunk, &byte) in acc[from..full_end]
        .chunks_exact_mut(4)
        .zip(&packed[from / 4..])
    {
        for (slot, &s) in chunk.iter_mut().zip(&SIGN_LUT[byte as usize]) {
            *slot += a * f64::from(s);
        }
    }
    for (lane, slot) in acc[full_end..].iter_mut().enumerate() {
        *slot += a * f64::from(SIGN_LUT[packed[full_end / 4] as usize][lane]);
    }
}

/// AVX2 decode kernels: 8 packed bytes → 32 signs per iteration. Only
/// compiled on `x86_64`, only executed when the runtime probe passed
/// (`fuiov_tensor::simd::enabled`). The decode itself is integer — byte
/// replication via `vpshufb`, per-position 2-bit extraction via shifted
/// masks, then a 4-entry sign table shuffle — so bitwise identity with
/// the scalar LUT is structural; the float widenings (`i8 → f32`,
/// `i8 → f64` for the axpy) are exact for {−1, 0, 1} and the axpy does
/// the same one `mul` + one `add` per element as the scalar loop.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{axpy_tail, decode_f32_tail, signs_tail};
    use std::arch::x86_64::*;

    /// Decodes 8 packed bytes (one `u64`) into 32 sign bytes, lane `o`
    /// holding `decode_code((packed[o / 4] >> (2 · (o % 4))) & 0b11)` —
    /// including the defensive `0b11 → 0` mapping, via the table.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn signs32(w: u64) -> __m256i {
        // Byte o of each 128-bit lane ← packed byte o/4 (both 64-bit
        // halves of each lane hold `w`, so indices 0..8 are valid).
        #[rustfmt::skip]
        let rep_idx = _mm256_setr_epi8(
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
            4, 4, 4, 4, 5, 5, 5, 5, 6, 6, 6, 6, 7, 7, 7, 7,
        );
        let rep = _mm256_shuffle_epi8(_mm256_set1_epi64x(w as i64), rep_idx);
        // Per-byte variable shifts don't exist; shift the whole register
        // by each of the four code offsets and keep each result only at
        // the byte positions that want that offset. `srli_epi16` bleeds
        // neighbour bits into the upper bits of a byte, but the final
        // `& 0b11` only keeps the two we extracted.
        let v0 = _mm256_and_si256(rep, _mm256_set1_epi32(0x0000_00FF));
        let v1 = _mm256_and_si256(_mm256_srli_epi16::<2>(rep), _mm256_set1_epi32(0x0000_FF00));
        let v2 = _mm256_and_si256(_mm256_srli_epi16::<4>(rep), _mm256_set1_epi32(0x00FF_0000));
        let v3 = _mm256_and_si256(
            _mm256_srli_epi16::<6>(rep),
            _mm256_set1_epi32(0xFF00_0000u32 as i32),
        );
        let codes = _mm256_and_si256(
            _mm256_or_si256(_mm256_or_si256(v0, v1), _mm256_or_si256(v2, v3)),
            _mm256_set1_epi8(0b11),
        );
        // code → sign: 0→0, 1→+1, 2→−1, 3→0 (same as `decode_code`).
        #[rustfmt::skip]
        let sign_tbl = _mm256_setr_epi8(
            0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 0,
            0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 0,
        );
        _mm256_shuffle_epi8(sign_tbl, codes)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available; `out.len()` must equal the
    /// direction's element count for `packed`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn signs_avx2(packed: &[u8], out: &mut [i8]) {
        let blocks = out.len() / 32;
        for blk in 0..blocks {
            let w = packed.as_ptr().add(blk * 8).cast::<u64>().read_unaligned();
            _mm256_storeu_si256(out.as_mut_ptr().add(blk * 32).cast(), signs32(w));
        }
        signs_tail(packed, out, blocks * 32);
    }

    /// # Safety
    ///
    /// As [`signs_avx2`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_f32_avx2(packed: &[u8], out: &mut [f32]) {
        // Straight from packed bits to floats, no byte-replication or
        // int→float conversion chain: broadcast 16 codes (a `u32` of the
        // packed stream) to every dword lane, variable-shift each lane so
        // its own 2-bit code lands at the bottom, and let `vpermd` (which
        // only reads the low bits of each index) look the code up in an
        // in-register float table. The table is `F32_LUT` by another
        // name — code 0→0.0, 1→1.0, 2→−1.0, 3→0.0 — so bitwise identity
        // with the scalar path is again structural.
        let tbl = _mm256_setr_ps(0.0, 1.0, -1.0, 0.0, 0.0, 1.0, -1.0, 0.0);
        let sh_lo = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
        let sh_hi = _mm256_setr_epi32(16, 18, 20, 22, 24, 26, 28, 30);
        let three = _mm256_set1_epi32(0b11);
        let blocks = out.len() / 32;
        for blk in 0..blocks {
            let p = out.as_mut_ptr().add(blk * 32);
            for half in 0..2 {
                let codes16 = packed
                    .as_ptr()
                    .add(blk * 8 + half * 4)
                    .cast::<u32>()
                    .read_unaligned();
                let bl = _mm256_set1_epi32(codes16 as i32);
                let idx0 = _mm256_and_si256(_mm256_srlv_epi32(bl, sh_lo), three);
                let idx1 = _mm256_and_si256(_mm256_srlv_epi32(bl, sh_hi), three);
                let q = p.add(half * 16);
                _mm256_storeu_ps(q, _mm256_permutevar8x32_ps(tbl, idx0));
                _mm256_storeu_ps(q.add(8), _mm256_permutevar8x32_ps(tbl, idx1));
            }
        }
        decode_f32_tail(packed, out, blocks * 32);
    }

    /// # Safety
    ///
    /// As [`signs_avx2`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(packed: &[u8], a: f64, acc: &mut [f64]) {
        let av = _mm256_set1_pd(a);
        let blocks = acc.len() / 32;
        for blk in 0..blocks {
            let w = packed.as_ptr().add(blk * 8).cast::<u64>().read_unaligned();
            let s = signs32(w);
            let lo = _mm256_castsi256_si128(s);
            let hi = _mm256_extracti128_si256::<1>(s);
            // 32 signs → eight 4-lane f64 groups, each `acc += a · s`.
            let quads = [
                _mm256_cvtepi8_epi32(lo),
                _mm256_cvtepi8_epi32(_mm_srli_si128::<8>(lo)),
                _mm256_cvtepi8_epi32(hi),
                _mm256_cvtepi8_epi32(_mm_srli_si128::<8>(hi)),
            ];
            for (q, &octet) in quads.iter().enumerate() {
                let d0 = _mm256_cvtepi32_pd(_mm256_castsi256_si128(octet));
                let d1 = _mm256_cvtepi32_pd(_mm256_extracti128_si256::<1>(octet));
                let p = acc.as_mut_ptr().add(blk * 32 + q * 8);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), _mm256_mul_pd(av, d0)));
                let p1 = p.add(4);
                _mm256_storeu_pd(
                    p1,
                    _mm256_add_pd(_mm256_loadu_pd(p1), _mm256_mul_pd(av, d1)),
                );
            }
        }
        axpy_tail(packed, a, acc, blocks * 32);
    }
}

/// Iterator over the signs of a [`GradientDirection`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    dir: &'a GradientDirection,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = i8;

    fn next(&mut self) -> Option<i8> {
        if self.pos >= self.dir.len() {
            return None;
        }
        let s = self.dir.sign(self.pos);
        self.pos += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.dir.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a GradientDirection {
    type Item = i8;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<i8> for GradientDirection {
    /// Collects signs into the packed representation.
    ///
    /// # Panics
    ///
    /// Panics if any element is outside `{-1, 0, 1}`.
    fn from_iter<I: IntoIterator<Item = i8>>(iter: I) -> Self {
        let signs: Vec<i8> = iter.into_iter().collect();
        GradientDirection::from_signs(&signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sign_patterns() {
        let signs: Vec<i8> = vec![1, -1, 0, 1, 1, 0, -1, -1, 0];
        let d = GradientDirection::from_signs(&signs);
        assert_eq!(d.to_signs(), signs);
        assert_eq!(d.len(), 9);
        assert_eq!(d.byte_size(), 3);
    }

    #[test]
    fn quantize_applies_dead_zone() {
        let d = GradientDirection::quantize(&[2e-6, -2e-6, 5e-7, -5e-7], 1e-6);
        assert_eq!(d.to_signs(), vec![1, -1, 0, 0]);
    }

    #[test]
    fn to_f32_matches_signs() {
        let d = GradientDirection::from_signs(&[1, 0, -1]);
        assert_eq!(d.to_f32(), vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn savings_is_about_94_percent() {
        let grad = vec![0.1f32; 10_000];
        let d = GradientDirection::quantize(&grad, 1e-6);
        assert_eq!(d.byte_size(), 2500);
        assert_eq!(d.full_f32_byte_size(), 40_000);
        assert!((d.savings_ratio() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn empty_vector_is_fine() {
        let d = GradientDirection::quantize(&[], 0.0);
        assert!(d.is_empty());
        assert_eq!(d.byte_size(), 0);
        assert_eq!(d.savings_ratio(), 0.0);
        assert_eq!(d.sparsity(), 0.0);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let d = GradientDirection::from_signs(&[0, 0, 1, -1]);
        assert!((d.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid sign")]
    fn rejects_invalid_sign() {
        let _ = GradientDirection::from_signs(&[2]);
    }

    #[test]
    fn iterator_roundtrip_and_hints() {
        let signs = vec![1i8, -1, 0, 1, 0];
        let d: GradientDirection = signs.iter().copied().collect();
        assert_eq!(d.iter().collect::<Vec<i8>>(), signs);
        assert_eq!(d.iter().len(), 5);
        let mut it = d.iter();
        it.next();
        assert_eq!(it.size_hint(), (4, Some(4)));
        // &d into_iter sugar.
        let total: i8 = (&d).into_iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn lut_agrees_with_scalar_decode_for_every_byte() {
        // Exhaustive: every possible packed byte, every lane, including the
        // never-written 0b11 code (decodes defensively to 0 on both paths).
        for byte in 0u8..=255 {
            let d = GradientDirection {
                len: 4,
                packed: vec![byte],
            };
            for lane in 0..4 {
                assert_eq!(
                    SIGN_LUT[byte as usize][lane],
                    d.sign(lane),
                    "byte {byte:#010b}"
                );
                assert_eq!(
                    F32_LUT[byte as usize][lane].to_bits(),
                    f32::from(d.sign(lane)).to_bits(),
                    "byte {byte:#010b}"
                );
            }
        }
    }

    #[test]
    fn decode_into_matches_scalar_at_all_tail_lengths() {
        for n in 0..=17usize {
            let signs: Vec<i8> = (0..n).map(|i| [1i8, -1, 0, 0, 1][i % 5]).collect();
            let d = GradientDirection::from_signs(&signs);
            let mut out = vec![7.0f32; n]; // poisoned: every slot must be written
            d.decode_into(&mut out);
            let scalar: Vec<f32> = (0..n).map(|i| f32::from(d.sign(i))).collect();
            assert_eq!(out, scalar, "n={n}");
            assert_eq!(d.to_f32(), scalar, "n={n}");
        }
    }

    #[test]
    fn decode_axpy_matches_scalar_accumulation_bitwise() {
        for n in [0usize, 3, 4, 7, 12, 31] {
            let signs: Vec<i8> = (0..n).map(|i| [0i8, 1, -1][i % 3]).collect();
            let d = GradientDirection::from_signs(&signs);
            let w = 2.375f64;
            let mut acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
            let mut scalar = acc.clone();
            d.decode_axpy(w, &mut acc);
            for (slot, s) in scalar.iter_mut().zip(d.to_signs()) {
                *slot += w * f64::from(s);
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&acc), bits(&scalar), "n={n}");
        }
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in 1..=9usize {
            let signs: Vec<i8> = (0..n).map(|i| [1i8, -1, 0][i % 3]).collect();
            let d = GradientDirection::from_signs(&signs);
            assert_eq!(d.to_signs(), signs, "roundtrip failed for n={n}");
            assert_eq!(d.byte_size(), n.div_ceil(4));
        }
    }
}
