//! Append-only spill segments for the tiered [`HistoryStore`].
//!
//! Cold rounds are evicted from memory as self-describing, checksummed
//! records appended to a single spill file. The framing follows the
//! [`checkpoint`](crate::checkpoint) encode discipline — little-endian,
//! magic + version up front, truncation detected before any payload is
//! touched — and adds an FNV-1a trailer so bit rot inside a record is a
//! typed [`SegmentDecodeError`], never a panic or a silently wrong model.
//!
//! ```text
//! record := magic:u32 | version:u16 | kind:u8 | round:u64 | base:u64
//!         | payload_len:u32 | payload | fnv1a64(header‖payload):u64
//! ```
//!
//! `kind` selects the payload codec: a raw `f32` keyframe, a
//! [`delta`](crate::delta)-coded model residual against `base`, or a
//! round's packed direction map (client ids + 2-bit sign words,
//! verbatim). `base` equals `round` for non-delta records.

use crate::delta;
use crate::direction::GradientDirection;
use crate::history::{ClientId, Round};
use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record magic, "FUSG".
pub const MAGIC: u32 = 0x4655_5347;
/// Segment format version.
pub const VERSION: u16 = 1;
/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 8 + 8 + 4;
/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 8;
/// Byte offset of the `round` field inside a record (testkit's
/// stale-keyframe fault rewrites it, then [`reseal`]s the record).
pub const ROUND_FIELD_OFFSET: usize = 4 + 2 + 1;

/// What a record's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Raw little-endian `f32` model keyframe.
    Keyframe,
    /// Varint-zigzag model residual against the `base` round.
    Delta,
    /// A round's packed `client → GradientDirection` map.
    Directions,
    /// An in-progress recovery job's sealed resume state. The `round`
    /// field holds the job's next replay round, the `base` field its job
    /// id; the payload is the `core::jobs` state codec's opaque bytes.
    JobCheckpoint,
    /// One aggregator node's sealed per-round FedAvg aggregate: the
    /// node id in the `base` field, the payload holding the node's round
    /// weight (`f32` bits) and its aggregated 2-bit sign direction. The
    /// hierarchical-recovery path replays these sibling-subtree records
    /// verbatim instead of re-estimating every member vehicle.
    SubtreeAggregate,
    /// Wire (`fuiov-net`): a vehicle announcing itself to the RSU
    /// registry. Client id in `base`; payload holds the FedAvg weight
    /// and model dimension.
    Register,
    /// Wire: the round's global-model broadcast. Round in `round`; the
    /// payload is the raw little-endian `f32` parameter vector, nothing
    /// else, so payload bytes equal `comms::round_bytes` download bytes
    /// exactly.
    RoundModel,
    /// Wire: a 2-bit sign-compressed gradient upload. Round in `round`,
    /// client id in `base`; the payload is the packed sign words
    /// verbatim (`⌈d/4⌉` bytes for a `d`-parameter model).
    SignUpload,
    /// Wire: a full-precision gradient upload. Round in `round`, client
    /// id in `base`; the payload is the raw little-endian `f32` gradient
    /// (`4·d` bytes).
    GradUpload,
    /// Wire: a request to unlearn a set of vehicles. Submitting client
    /// in `base`; the payload lists the target client ids as `u64`s.
    ForgetRequest,
    /// Wire: a control frame (round-loop handshakes — ack, done). The
    /// control code rides in `round`, a code-specific argument in
    /// `base`; the payload is empty.
    Control,
}

impl RecordKind {
    /// The on-wire/on-disk code of this kind.
    pub fn code(self) -> u8 {
        match self {
            RecordKind::Keyframe => 1,
            RecordKind::Delta => 2,
            RecordKind::Directions => 3,
            RecordKind::JobCheckpoint => 4,
            RecordKind::SubtreeAggregate => 5,
            RecordKind::Register => 6,
            RecordKind::RoundModel => 7,
            RecordKind::SignUpload => 8,
            RecordKind::GradUpload => 9,
            RecordKind::ForgetRequest => 10,
            RecordKind::Control => 11,
        }
    }

    /// The kind for an on-wire/on-disk code, if known.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(RecordKind::Keyframe),
            2 => Some(RecordKind::Delta),
            3 => Some(RecordKind::Directions),
            4 => Some(RecordKind::JobCheckpoint),
            5 => Some(RecordKind::SubtreeAggregate),
            6 => Some(RecordKind::Register),
            7 => Some(RecordKind::RoundModel),
            8 => Some(RecordKind::SignUpload),
            9 => Some(RecordKind::GradUpload),
            10 => Some(RecordKind::ForgetRequest),
            11 => Some(RecordKind::Control),
            _ => None,
        }
    }
}

/// Error decoding a spill-segment record. Every corruption mode the
/// testkit `Corruptor` can inject maps to a distinct variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentDecodeError {
    /// Record shorter than its header + declared payload, or a payload
    /// that ends mid-value.
    Truncated,
    /// Magic mismatch — not a FUSG record.
    BadMagic(u32),
    /// Unsupported segment version.
    BadVersion(u16),
    /// Unknown record kind code.
    BadKind(u8),
    /// FNV-1a checksum mismatch — the record bytes rotted.
    BadChecksum {
        /// Checksum stored in the record trailer.
        expected: u64,
        /// Checksum recomputed over the record bytes.
        found: u64,
    },
    /// The record decodes cleanly but describes a different round than
    /// the index said it would (a stale keyframe).
    RoundMismatch {
        /// Round the caller asked for.
        expected: u64,
        /// Round the record claims to hold.
        found: u64,
    },
    /// A delta record was decoded without its base model (round given).
    MissingBase(u64),
    /// Underlying I/O failure reading the spill file.
    Io(String),
}

impl fmt::Display for SegmentDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentDecodeError::Truncated => write!(f, "spill record truncated"),
            SegmentDecodeError::BadMagic(m) => write!(f, "bad spill record magic {m:#010x}"),
            SegmentDecodeError::BadVersion(v) => write!(f, "unsupported spill record version {v}"),
            SegmentDecodeError::BadKind(k) => write!(f, "unknown spill record kind {k}"),
            SegmentDecodeError::BadChecksum { expected, found } => write!(
                f,
                "spill record checksum mismatch (stored {expected:#018x}, computed {found:#018x})"
            ),
            SegmentDecodeError::RoundMismatch { expected, found } => {
                write!(
                    f,
                    "stale spill record: wanted round {expected}, record holds {found}"
                )
            }
            SegmentDecodeError::MissingBase(r) => {
                write!(f, "delta record needs base model of round {r}")
            }
            SegmentDecodeError::Io(e) => write!(f, "spill file i/o: {e}"),
        }
    }
}

impl Error for SegmentDecodeError {}

/// FNV-1a over `data`, absorbed a 64-bit little-endian word per step
/// (byte-wise over the tail) — the same digest family the golden-trace
/// system uses, but one multiply per 8 payload bytes instead of per byte.
/// Record verification sits on the streaming-replay hot path, so the
/// checksum must not cost a per-byte multiply chain; any single-byte flip
/// still changes the word it lands in and therefore the digest.
pub fn fnv1a64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Recomputes and rewrites the trailing checksum of a framed record in
/// place (after deliberate field surgery — the testkit's stale-keyframe
/// fault must present as [`SegmentDecodeError::RoundMismatch`], not as a
/// checksum failure).
///
/// # Panics
///
/// Panics if `record` is shorter than a checksum trailer.
pub fn reseal(record: &mut [u8]) {
    let body = record.len() - TRAILER_LEN;
    let sum = fnv1a64(&record[..body]);
    record[body..].copy_from_slice(&sum.to_le_bytes());
}

fn frame(kind: RecordKind, round: Round, base: Round, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame_into(&mut buf, kind, round, base as u64, payload);
    buf
}

/// Frames `payload` as a sealed FUSG record into `buf` (cleared first),
/// so callers on a hot path — the wire layer frames one record per
/// message — can reuse one scratch buffer instead of allocating.
pub fn frame_into(buf: &mut Vec<u8>, kind: RecordKind, round: Round, base: u64, payload: &[u8]) {
    buf.clear();
    buf.reserve(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(kind.code());
    buf.put_u64_le(round as u64);
    buf.put_u64_le(base);
    buf.put_u32_le(payload.len() as u32);
    buf.extend_from_slice(payload);
    let sum = fnv1a64(buf);
    buf.put_u64_le(sum);
}

/// Frames `payload` as a freshly allocated sealed record — the general
/// entry point the wire protocol builds its messages on.
pub fn encode_record(kind: RecordKind, round: Round, base: u64, payload: &[u8]) -> Vec<u8> {
    frame(kind, round, base as Round, payload)
}

/// The header and trailer of a record whose checksum also covers an
/// external payload slice: `(header, trailer)` such that
/// `header ‖ payload ‖ trailer` is exactly [`encode_record`]'s output.
/// This is the zero-copy broadcast primitive — the round's model payload
/// is serialized once and handed to every connection's vectored write
/// without being copied into a per-client frame.
pub fn frame_parts(
    kind: RecordKind,
    round: Round,
    base: u64,
    payload: &[u8],
) -> ([u8; HEADER_LEN], [u8; TRAILER_LEN]) {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = kind.code();
    header[7..15].copy_from_slice(&(round as u64).to_le_bytes());
    header[15..23].copy_from_slice(&base.to_le_bytes());
    header[23..27].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    // FNV absorbs word-wise from the start of the record; the header is
    // 27 bytes (not a multiple of 8), so the digest must run over the
    // logical concatenation, not the two slices independently.
    let mut body = Vec::with_capacity(HEADER_LEN + payload.len());
    body.extend_from_slice(&header);
    body.extend_from_slice(payload);
    let sum = fnv1a64(&body);
    (header, sum.to_le_bytes())
}

/// Encodes a full `f32` keyframe record.
pub fn encode_keyframe(round: Round, params: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + params.len() * 4);
    payload.put_u32_le(params.len() as u32);
    for &p in params {
        payload.put_f32_le(p);
    }
    frame(RecordKind::Keyframe, round, round, &payload)
}

/// Encodes a delta record: `cur` coded against the model of `base_round`.
///
/// # Panics
///
/// Panics if `base.len() != cur.len()`.
pub fn encode_delta(round: Round, base_round: Round, base: &[f32], cur: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + cur.len());
    payload.put_u32_le(cur.len() as u32);
    delta::encode(base, cur, &mut payload);
    frame(RecordKind::Delta, round, base_round, &payload)
}

/// Encodes a round's direction map: the packed 2-bit sign words are
/// copied verbatim, so spill → reload is bit-identical by construction.
pub fn encode_directions(round: Round, dirs: &BTreeMap<ClientId, GradientDirection>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.put_u32_le(dirs.len() as u32);
    for (&client, dir) in dirs {
        payload.put_u64_le(client as u64);
        payload.put_u32_le(dir.len() as u32);
        let packed = dir.packed_bytes();
        payload.put_u32_le(packed.len() as u32);
        payload.extend_from_slice(packed);
    }
    frame(RecordKind::Directions, round, round, &payload)
}

/// Encodes a recovery-job checkpoint record. The framing reuses the FUSG
/// discipline — FNV-sealed, truncation-typed — with `next_round` in the
/// `round` field and the job id in the `base` field, so job logs get the
/// same corruption taxonomy as the spill tier for free.
pub fn encode_job_checkpoint(job: u64, next_round: Round, payload: &[u8]) -> Vec<u8> {
    frame(RecordKind::JobCheckpoint, next_round, job as Round, payload)
}

/// Decodes a job-checkpoint record into `(job, next_round, payload)`.
///
/// # Errors
///
/// Framing/checksum errors from [`check_record`], `BadKind` if the record
/// is not a job checkpoint.
pub fn decode_job_checkpoint(record: &[u8]) -> Result<(u64, Round, Vec<u8>), SegmentDecodeError> {
    let (kind, round, base, payload) = check_record(record)?;
    if kind != RecordKind::JobCheckpoint {
        return Err(SegmentDecodeError::BadKind(kind.code()));
    }
    Ok((base as u64, round, payload.to_vec()))
}

/// Encodes one aggregator node's sealed per-round aggregate: the node id
/// rides in the `base` field, the payload holds the node's FedAvg round
/// weight followed by the aggregated sign direction's packed 2-bit words
/// (copied verbatim, so seal → replay is bit-identical by construction).
pub fn encode_subtree_aggregate(
    round: Round,
    node: u64,
    weight: f32,
    dir: &GradientDirection,
) -> Vec<u8> {
    let packed = dir.packed_bytes();
    let mut payload = Vec::with_capacity(12 + packed.len());
    payload.put_f32_le(weight);
    payload.put_u32_le(dir.len() as u32);
    payload.put_u32_le(packed.len() as u32);
    payload.extend_from_slice(packed);
    frame(RecordKind::SubtreeAggregate, round, node as Round, &payload)
}

/// Decodes a subtree-aggregate record into `(node, weight, direction)`.
///
/// # Errors
///
/// Framing/checksum errors from [`check_record`], `RoundMismatch`,
/// `BadKind` if the record is not a subtree aggregate, `Truncated` for
/// malformed payloads.
pub fn decode_subtree_aggregate(
    record: &[u8],
    expected_round: Round,
) -> Result<(u64, f32, GradientDirection), SegmentDecodeError> {
    let (kind, round, node, mut payload) = check_record(record)?;
    if round != expected_round {
        return Err(SegmentDecodeError::RoundMismatch {
            expected: expected_round as u64,
            found: round as u64,
        });
    }
    if kind != RecordKind::SubtreeAggregate {
        return Err(SegmentDecodeError::BadKind(kind.code()));
    }
    if payload.len() < 12 {
        return Err(SegmentDecodeError::Truncated);
    }
    let weight = payload.get_f32_le();
    let len = payload.get_u32_le() as usize;
    let nbytes = payload.get_u32_le() as usize;
    if payload.len() < nbytes {
        return Err(SegmentDecodeError::Truncated);
    }
    let dir = GradientDirection::from_packed(len, payload[..nbytes].to_vec())
        .ok_or(SegmentDecodeError::Truncated)?;
    Ok((node as u64, weight, dir))
}

/// Declared total record length (header + payload + trailer) of the record
/// starting at `bytes`, or `None` when not even a full header is present —
/// the sequential-scan primitive job logs use to walk their records and
/// stop cleanly at a torn tail.
pub fn framed_len(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let payload_len =
        u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().ok()?) as usize;
    Some(HEADER_LEN + payload_len + TRAILER_LEN)
}

/// Validates framing + checksum and returns `(kind, round, base, payload)`.
///
/// # Errors
///
/// Any [`SegmentDecodeError`] except `RoundMismatch`/`MissingBase`, which
/// are the typed-decode layer's concern.
pub fn check_record(
    record: &[u8],
) -> Result<(RecordKind, Round, Round, &[u8]), SegmentDecodeError> {
    if record.len() < HEADER_LEN + TRAILER_LEN {
        return Err(SegmentDecodeError::Truncated);
    }
    let mut buf = record;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SegmentDecodeError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SegmentDecodeError::BadVersion(version));
    }
    let kind_code = buf.get_u8();
    let kind = RecordKind::from_code(kind_code).ok_or(SegmentDecodeError::BadKind(kind_code))?;
    let round = buf.get_u64_le();
    let base = buf.get_u64_le();
    let payload_len = buf.get_u32_le() as usize;
    if buf.len() < payload_len + TRAILER_LEN {
        return Err(SegmentDecodeError::Truncated);
    }
    let payload = &buf[..payload_len];
    let body = HEADER_LEN + payload_len;
    let expected = u64::from_le_bytes(record[body..body + TRAILER_LEN].try_into().unwrap());
    let found = fnv1a64(&record[..body]);
    if expected != found {
        fuiov_obs::counter!("storage.segment_checksum_failures").inc();
        return Err(SegmentDecodeError::BadChecksum { expected, found });
    }
    Ok((kind, round as Round, base as Round, payload))
}

/// Decodes a model record (keyframe or delta) for `expected_round`.
/// Delta records need the base-round model in `base`.
///
/// # Errors
///
/// Framing/checksum errors from [`check_record`], `RoundMismatch` if the
/// record holds a different round, `MissingBase` for a delta without its
/// base, `Truncated`/`BadKind` for malformed payloads.
pub fn decode_model(
    record: &[u8],
    expected_round: Round,
    base: Option<&[f32]>,
) -> Result<Vec<f32>, SegmentDecodeError> {
    let (kind, round, base_round, mut payload) = check_record(record)?;
    if round != expected_round {
        return Err(SegmentDecodeError::RoundMismatch {
            expected: expected_round as u64,
            found: round as u64,
        });
    }
    if payload.len() < 4 {
        return Err(SegmentDecodeError::Truncated);
    }
    let len = payload.get_u32_le() as usize;
    match kind {
        RecordKind::Keyframe => {
            if payload.len() < len * 4 {
                return Err(SegmentDecodeError::Truncated);
            }
            Ok((0..len).map(|_| payload.get_f32_le()).collect())
        }
        RecordKind::Delta => {
            let base = base.ok_or(SegmentDecodeError::MissingBase(base_round as u64))?;
            delta::decode(base, payload, len).ok_or(SegmentDecodeError::Truncated)
        }
        _ => Err(SegmentDecodeError::BadKind(kind.code())),
    }
}

/// Decodes a directions record for `expected_round`.
///
/// # Errors
///
/// Framing/checksum errors from [`check_record`], `RoundMismatch`,
/// `BadKind` for a model record, `Truncated` for malformed payloads.
pub fn decode_directions(
    record: &[u8],
    expected_round: Round,
) -> Result<BTreeMap<ClientId, GradientDirection>, SegmentDecodeError> {
    let (kind, round, _, mut payload) = check_record(record)?;
    if round != expected_round {
        return Err(SegmentDecodeError::RoundMismatch {
            expected: expected_round as u64,
            found: round as u64,
        });
    }
    if kind != RecordKind::Directions {
        return Err(SegmentDecodeError::BadKind(kind.code()));
    }
    if payload.len() < 4 {
        return Err(SegmentDecodeError::Truncated);
    }
    let n = payload.get_u32_le() as usize;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        if payload.len() < 16 {
            return Err(SegmentDecodeError::Truncated);
        }
        let client = payload.get_u64_le() as ClientId;
        let len = payload.get_u32_le() as usize;
        let nbytes = payload.get_u32_le() as usize;
        if payload.len() < nbytes {
            return Err(SegmentDecodeError::Truncated);
        }
        let dir = GradientDirection::from_packed(len, payload[..nbytes].to_vec())
            .ok_or(SegmentDecodeError::Truncated)?;
        payload.advance(nbytes);
        out.insert(client, dir);
    }
    Ok(out)
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

struct SpillInner {
    file: Option<File>,
    path: PathBuf,
    len: u64,
}

/// The append-only spill file backing one [`HistoryStore`] lineage.
///
/// Shared via `Arc` between a store, its clones and its thinned copies —
/// records are never rewritten, so an `(offset, len)` handle taken by any
/// of them stays valid for the lifetime of the `Arc`. The file is created
/// lazily on first append (an unbounded store never touches disk) and
/// deleted when the last owner drops.
pub struct SpillFile {
    inner: Mutex<SpillInner>,
}

impl fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SpillFile")
            .field("path", &inner.path)
            .field("len", &inner.len)
            .field("created", &inner.file.is_some())
            .finish()
    }
}

impl SpillFile {
    /// A lazily-created spill file in the system temp directory.
    pub fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "fuiov-spill-{}-{}.seg",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        SpillFile {
            inner: Mutex::new(SpillInner {
                file: None,
                path,
                len: 0,
            }),
        }
    }

    /// Where the segment file lives (or will live once first written).
    pub fn path(&self) -> PathBuf {
        self.inner.lock().path.clone()
    }

    /// Bytes appended so far (logical length; a fault-injected
    /// `set_len` on the path is deliberately not observed).
    pub fn len(&self) -> u64 {
        self.inner.lock().len
    }

    /// Whether nothing has been spilled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a framed record, returning its `(offset, len)` handle.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors.
    pub fn append(&self, record: &[u8]) -> std::io::Result<(u64, u32)> {
        let mut inner = self.inner.lock();
        if inner.file.is_none() {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&inner.path)?;
            inner.file = Some(file);
        }
        let offset = inner.len;
        let file = inner.file.as_mut().expect("just created");
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(record)?;
        inner.len = offset + record.len() as u64;
        Ok((offset, record.len() as u32))
    }

    /// Reads back the record at `(offset, len)`.
    ///
    /// # Errors
    ///
    /// `Truncated` if the file ends early (e.g. a crash mid-append),
    /// `Io` for anything else.
    pub fn read(&self, offset: u64, len: u32) -> Result<Vec<u8>, SegmentDecodeError> {
        let mut inner = self.inner.lock();
        let file = inner
            .file
            .as_mut()
            .ok_or_else(|| SegmentDecodeError::Io("spill file never created".into()))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| SegmentDecodeError::Io(e.to_string()))?;
        let mut buf = vec![0u8; len as usize];
        let mut filled = 0usize;
        while filled < buf.len() {
            match file.read(&mut buf[filled..]) {
                Ok(0) => return Err(SegmentDecodeError::Truncated),
                Ok(n) => filled += n,
                Err(e) => return Err(SegmentDecodeError::Io(e.to_string())),
            }
        }
        Ok(buf)
    }
}

impl Default for SpillFile {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let inner = self.inner.lock();
        if inner.file.is_some() {
            let _ = std::fs::remove_file(&inner.path);
        }
    }
}

/// Whether a segment file exists at `path` (test/diagnostic helper —
/// lets thinning tests assert no spill reload happened).
pub fn segment_file_exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn keyframe_roundtrips_bitwise() {
        let params = vec![0.0f32, -0.0, 1.5, -3.25, f32::MIN_POSITIVE, f32::NAN];
        let rec = encode_keyframe(9, &params);
        let back = decode_model(&rec, 9, None).unwrap();
        assert_eq!(bits(&back), bits(&params));
    }

    #[test]
    fn delta_roundtrips_bitwise_and_requires_base() {
        let base = vec![1.0f32, 2.0, -3.0, 0.25];
        let cur = vec![1.0001f32, 1.9998, -3.002, 0.2501];
        let rec = encode_delta(5, 4, &base, &cur);
        let back = decode_model(&rec, 5, Some(&base)).unwrap();
        assert_eq!(bits(&back), bits(&cur));
        assert_eq!(
            decode_model(&rec, 5, None),
            Err(SegmentDecodeError::MissingBase(4))
        );
    }

    #[test]
    fn directions_roundtrip_verbatim() {
        let mut dirs = BTreeMap::new();
        dirs.insert(
            3 as ClientId,
            GradientDirection::from_signs(&[1, -1, 0, 0, 1]),
        );
        dirs.insert(11 as ClientId, GradientDirection::from_signs(&[0, 0, -1]));
        let rec = encode_directions(2, &dirs);
        let back = decode_directions(&rec, 2).unwrap();
        assert_eq!(back, dirs);
    }

    #[test]
    fn truncation_is_typed() {
        let rec = encode_keyframe(0, &[1.0, 2.0]);
        for cut in [
            3,
            HEADER_LEN - 1,
            rec.len() - TRAILER_LEN - 1,
            rec.len() - 1,
        ] {
            assert_eq!(
                decode_model(&rec[..cut], 0, None),
                Err(SegmentDecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let mut rec = encode_keyframe(0, &[1.0]);
        rec[0] ^= 0xFF;
        assert!(matches!(
            check_record(&rec),
            Err(SegmentDecodeError::BadMagic(_))
        ));

        let mut rec = encode_keyframe(0, &[1.0]);
        rec[4] = 0xEE;
        reseal(&mut rec); // version field is inside the checksummed body
        assert!(matches!(
            check_record(&rec),
            Err(SegmentDecodeError::BadVersion(_))
        ));

        let mut rec = encode_keyframe(0, &[1.0]);
        rec[6] = 99;
        reseal(&mut rec);
        assert_eq!(
            check_record(&rec).unwrap_err(),
            SegmentDecodeError::BadKind(99)
        );
    }

    #[test]
    fn checksum_catches_payload_rot() {
        let mut rec = encode_keyframe(1, &[1.0, 2.0, 3.0]);
        rec[HEADER_LEN + 5] ^= 0x01;
        assert!(matches!(
            decode_model(&rec, 1, None),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn stale_round_after_reseal_is_round_mismatch() {
        let mut rec = encode_keyframe(7, &[4.0, 5.0]);
        rec[ROUND_FIELD_OFFSET..ROUND_FIELD_OFFSET + 8].copy_from_slice(&3u64.to_le_bytes());
        reseal(&mut rec);
        assert_eq!(
            decode_model(&rec, 7, None),
            Err(SegmentDecodeError::RoundMismatch {
                expected: 7,
                found: 3
            })
        );
        // Without the reseal the checksum fires first.
        let mut rec2 = encode_keyframe(7, &[4.0, 5.0]);
        rec2[ROUND_FIELD_OFFSET] ^= 0x02;
        assert!(matches!(
            decode_model(&rec2, 7, None),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn model_vs_direction_kind_confusion_is_typed() {
        let rec = encode_keyframe(0, &[1.0]);
        assert!(matches!(
            decode_directions(&rec, 0),
            Err(SegmentDecodeError::BadKind(1))
        ));
        let dirs = BTreeMap::from([(1 as ClientId, GradientDirection::from_signs(&[1]))]);
        let rec = encode_directions(0, &dirs);
        assert!(matches!(
            decode_model(&rec, 0, None),
            Err(SegmentDecodeError::BadKind(3))
        ));
    }

    #[test]
    fn job_checkpoint_roundtrips_and_is_kind_checked() {
        let payload = vec![7u8, 0, 1, 2, 3, 255];
        let rec = encode_job_checkpoint(42, 9, &payload);
        assert_eq!(framed_len(&rec), Some(rec.len()));
        let (job, next_round, back) = decode_job_checkpoint(&rec).unwrap();
        assert_eq!(job, 42);
        assert_eq!(next_round, 9);
        assert_eq!(back, payload);

        // Kind confusion in both directions is typed.
        assert_eq!(
            decode_model(&rec, 9, None),
            Err(SegmentDecodeError::BadKind(4))
        );
        assert_eq!(
            decode_directions(&rec, 9),
            Err(SegmentDecodeError::BadKind(4))
        );
        let model_rec = encode_keyframe(9, &[1.0]);
        assert_eq!(
            decode_job_checkpoint(&model_rec),
            Err(SegmentDecodeError::BadKind(1))
        );

        // Tearing the sealed record is Truncated, rot is BadChecksum.
        assert_eq!(
            decode_job_checkpoint(&rec[..rec.len() - 3]),
            Err(SegmentDecodeError::Truncated)
        );
        let mut rot = rec;
        rot[HEADER_LEN + 1] ^= 0x10;
        assert!(matches!(
            decode_job_checkpoint(&rot),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn framed_len_needs_a_full_header() {
        let rec = encode_job_checkpoint(1, 0, &[9; 16]);
        assert_eq!(framed_len(&rec[..HEADER_LEN - 1]), None);
        assert_eq!(framed_len(&rec[..HEADER_LEN]), Some(rec.len()));
    }

    #[test]
    fn encode_record_frame_into_and_parts_agree() {
        let payload = [7u8, 1, 2, 250, 9, 0, 3];
        let whole = encode_record(RecordKind::SignUpload, 12, 34, &payload);
        let mut scratch = vec![0xAAu8; 3]; // stale contents must be cleared
        frame_into(&mut scratch, RecordKind::SignUpload, 12, 34, &payload);
        assert_eq!(scratch, whole);
        let (header, trailer) = frame_parts(RecordKind::SignUpload, 12, 34, &payload);
        let mut stitched = header.to_vec();
        stitched.extend_from_slice(&payload);
        stitched.extend_from_slice(&trailer);
        assert_eq!(stitched, whole);
        let (kind, round, base, body) = check_record(&whole).unwrap();
        assert_eq!(kind, RecordKind::SignUpload);
        assert_eq!(round, 12);
        assert_eq!(base, 34);
        assert_eq!(body, payload);
    }

    #[test]
    fn wire_kinds_round_trip_codes_and_are_not_models() {
        for kind in [
            RecordKind::Register,
            RecordKind::RoundModel,
            RecordKind::SignUpload,
            RecordKind::GradUpload,
            RecordKind::ForgetRequest,
            RecordKind::Control,
        ] {
            assert_eq!(RecordKind::from_code(kind.code()), Some(kind));
            let rec = encode_record(kind, 0, 0, &[0, 0, 0, 0]);
            assert_eq!(
                decode_model(&rec, 0, None),
                Err(SegmentDecodeError::BadKind(kind.code())),
                "{kind:?} must not decode as a model"
            );
        }
    }

    #[test]
    fn spill_file_appends_and_reads_back() {
        let spill = SpillFile::new();
        assert!(spill.is_empty());
        assert!(!spill.path().exists(), "lazy: no file before first append");

        let a = encode_keyframe(0, &[1.0, 2.0]);
        let b = encode_keyframe(1, &[3.0]);
        let (off_a, len_a) = spill.append(&a).unwrap();
        let (off_b, len_b) = spill.append(&b).unwrap();
        assert_eq!(off_a, 0);
        assert_eq!(off_b, a.len() as u64);
        assert_eq!(spill.len(), (a.len() + b.len()) as u64);

        assert_eq!(spill.read(off_a, len_a).unwrap(), a);
        assert_eq!(spill.read(off_b, len_b).unwrap(), b);

        let path = spill.path();
        assert!(path.exists());
        drop(spill);
        assert!(!path.exists(), "spill file removed on drop");
    }

    #[test]
    fn spill_file_truncation_surfaces_as_truncated() {
        let spill = SpillFile::new();
        let rec = encode_keyframe(0, &vec![1.0f32; 64]);
        let (off, len) = spill.append(&rec).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(spill.path())
            .unwrap()
            .set_len(u64::from(len) - 5)
            .unwrap();
        assert_eq!(spill.read(off, len), Err(SegmentDecodeError::Truncated));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(SegmentDecodeError::Truncated
            .to_string()
            .contains("truncated"));
        assert!(SegmentDecodeError::BadMagic(7)
            .to_string()
            .contains("magic"));
        assert!(SegmentDecodeError::MissingBase(3)
            .to_string()
            .contains("base"));
        assert!(SegmentDecodeError::RoundMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("stale"));
        assert!(SegmentDecodeError::BadChecksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(SegmentDecodeError::Io("x".into())
            .to_string()
            .contains("i/o"));
        assert!(SegmentDecodeError::BadVersion(9)
            .to_string()
            .contains("version"));
        assert!(SegmentDecodeError::BadKind(9).to_string().contains("kind"));
    }
}
