//! Property-based tests for the storage formats: serialisation
//! round-trips, thinning invariants, requantisation consistency, and the
//! tiered delta/spill codec.

use fuiov_storage::history::FullGradientStore;
use fuiov_storage::serialize::{decode_history, encode_history};
use fuiov_storage::{delta, GradientDirection, HistoryStore, Tier, TierConfig};
use proptest::prelude::*;

/// Arbitrary `f32` including every bit pattern class (subnormals, ±0,
/// infinities, NaN payloads) — the delta codec must be exact on all of
/// them.
fn arb_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn arb_history() -> impl Strategy<Value = HistoryStore> {
    let dim = 6usize;
    (1usize..8, 1usize..4).prop_flat_map(move |(rounds, clients)| {
        let models = prop::collection::vec(prop::collection::vec(-2.0f32..2.0, dim), rounds + 1);
        let grads = prop::collection::vec(
            prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), rounds),
            clients,
        );
        let joins = prop::collection::vec(0usize..rounds, clients);
        (models, grads, joins).prop_map(move |(models, grads, joins)| {
            let mut h = HistoryStore::new(1e-4);
            for (t, m) in models.into_iter().enumerate() {
                h.record_model(t, m);
            }
            for (c, (gs, &join)) in grads.iter().zip(&joins).enumerate() {
                h.record_join(c, join);
                h.set_weight(c, (c + 1) as f32);
                for (t, g) in gs.iter().enumerate().skip(join) {
                    h.record_gradient(t, c, g);
                }
            }
            h
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The binary history format round-trips every field exactly.
    #[test]
    fn serialisation_roundtrips(h in arb_history()) {
        let back = decode_history(&encode_history(&h)).expect("decodes");
        prop_assert_eq!(back.delta(), h.delta());
        prop_assert_eq!(back.rounds(), h.rounds());
        prop_assert_eq!(back.clients(), h.clients());
        for r in h.rounds() {
            prop_assert_eq!(back.model(r), h.model(r));
            for c in h.clients_in_round(r) {
                prop_assert_eq!(
                    back.direction(r, c).as_deref().map(GradientDirection::to_signs),
                    h.direction(r, c).as_deref().map(GradientDirection::to_signs)
                );
            }
        }
        for c in h.clients() {
            prop_assert_eq!(back.participation(c), h.participation(c));
            prop_assert_eq!(back.weight(c), h.weight(c));
        }
    }

    /// Thinning never increases model bytes, keeps endpoints, and the
    /// interpolated model at a *kept* round equals the stored one.
    #[test]
    fn thinning_invariants(h in arb_history(), keep in 1usize..6) {
        let thin = h.thinned_models(keep);
        prop_assert!(thin.model_bytes() <= h.model_bytes());
        let rounds = h.rounds();
        let (first, last) = (rounds[0], *rounds.last().unwrap());
        prop_assert!(thin.model(first).is_some());
        prop_assert!(thin.model(last).is_some());
        // Join rounds pinned.
        for c in h.clients() {
            let f = h.join_round(c).unwrap();
            prop_assert!(thin.model(f).is_some(), "join round {f} dropped");
        }
        // Interpolation at every round stays within the stored range and
        // matches exactly where a model survives.
        for r in rounds {
            let interp = thin.model_interpolated(r);
            prop_assert!(interp.is_some());
            if let Some(exact) = thin.model(r) {
                prop_assert_eq!(interp.unwrap(), exact.to_vec());
            }
        }
        // Directions untouched by thinning.
        prop_assert_eq!(thin.direction_bytes(), h.direction_bytes());
    }

    /// Requantising with the store's own δ from matching full gradients is
    /// the identity on directions.
    #[test]
    fn requantise_with_same_delta_is_identity(
        grads in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 5), 1..6),
    ) {
        let delta = 1e-3f32;
        let mut h = HistoryStore::new(delta);
        let mut full = FullGradientStore::new();
        h.record_model(0, vec![0.0; 5]);
        for (c, g) in grads.iter().enumerate() {
            h.record_join(c, 0);
            h.record_gradient(0, c, g);
            full.record(0, c, g.clone());
        }
        let re = h.requantized(&full, delta);
        for c in 0..grads.len() {
            prop_assert_eq!(
                re.direction(0, c).unwrap().to_signs(),
                h.direction(0, c).unwrap().to_signs()
            );
        }
    }

    /// Savings accounting is exact: packed bytes = Σ ⌈dim/4⌉ per entry.
    #[test]
    fn byte_accounting_is_exact(h in arb_history()) {
        let mut expected = 0usize;
        for r in h.rounds() {
            for c in h.clients_in_round(r) {
                expected += h.direction(r, c).unwrap().len().div_ceil(4);
            }
        }
        prop_assert_eq!(h.direction_bytes(), expected);
    }

    /// 2-bit pack/unpack round-trips every {-1, 0, +1} pattern at every
    /// length — including lengths that are not a multiple of 4, where the
    /// final byte is only partially used.
    #[test]
    fn direction_pack_unpack_roundtrips(
        signs in prop::collection::vec(-1i8..=1, 0..33),
    ) {
        let d = GradientDirection::from_signs(&signs);
        prop_assert_eq!(d.len(), signs.len());
        prop_assert_eq!(d.to_signs(), signs.clone());
        prop_assert_eq!(d.byte_size(), signs.len().div_ceil(4));
        // Element access agrees with bulk unpacking.
        for (i, &s) in signs.iter().enumerate() {
            prop_assert_eq!(d.sign(i), s);
        }
        // to_f32 is the same data widened.
        let f: Vec<f32> = signs.iter().map(|&s| f32::from(s)).collect();
        prop_assert_eq!(d.to_f32(), f);
    }

    /// Quantise→pack→unpack agrees with direct thresholding for arbitrary
    /// gradients and thresholds, and values at *exactly* ±δ fall in the
    /// dead zone (the threshold is strict).
    #[test]
    fn quantisation_boundary_is_strict(
        grad in prop::collection::vec(-2.0f32..2.0, 1..20),
        delta in 0.0f32..1.0,
        boundary_at in 0usize..19,
    ) {
        let mut grad = grad;
        if let Some(g) = grad.get_mut(boundary_at) {
            // Plant an exact ±δ element to probe the boundary.
            *g = if boundary_at % 2 == 0 { delta } else { -delta };
        }
        let d = GradientDirection::quantize(&grad, delta);
        prop_assert_eq!(d.len(), grad.len());
        for (i, &g) in grad.iter().enumerate() {
            let expected = if g > delta { 1 } else if g < -delta { -1 } else { 0 };
            prop_assert_eq!(
                d.sign(i), expected,
                "element {} = {} with delta {}", i, g, delta
            );
        }
        if boundary_at < grad.len() {
            prop_assert_eq!(d.sign(boundary_at), 0, "exact ±δ must quantise to 0");
        }
    }

    /// Packing is canonical: distinct sign vectors give distinct packed
    /// bytes, equal ones identical packed values (via PartialEq).
    #[test]
    fn packing_is_injective(
        a in prop::collection::vec(-1i8..=1, 1..16),
        b in prop::collection::vec(-1i8..=1, 1..16),
    ) {
        let da = GradientDirection::from_signs(&a);
        let db = GradientDirection::from_signs(&b);
        prop_assert_eq!(a == b, da == db);
    }

    /// The raw delta codec round-trips *any* f32 bit patterns exactly —
    /// including NaN payloads, ±0, infinities and subnormals.
    #[test]
    fn delta_codec_roundtrips_bitwise(
        pairs in prop::collection::vec((arb_f32_bits(), arb_f32_bits()), 0..64),
    ) {
        let base: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let cur: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let mut buf = Vec::new();
        delta::encode(&base, &cur, &mut buf);
        let back = delta::decode(&base, &buf, cur.len()).expect("decodes");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        prop_assert_eq!(bits(&back), bits(&cur));
    }

    /// Delta-checkpointed spill storage reconstructs every round bitwise
    /// for every keyframe interval k ∈ {1, 2, 5, 8}, with a zero budget
    /// forcing every round through the spill tier.
    #[test]
    fn spilled_checkpoints_roundtrip_bitwise_for_all_keyframe_intervals(
        models in prop::collection::vec(prop::collection::vec(arb_f32_bits(), 5), 1..20),
    ) {
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        for k in [1usize, 2, 5, 8] {
            let tier = TierConfig::bounded(0).with_keyframe_interval(k);
            let mut h = HistoryStore::with_tier(1e-4, tier);
            for (t, m) in models.iter().enumerate() {
                h.record_model(t, m.clone());
            }
            for (t, m) in models.iter().enumerate() {
                prop_assert_eq!(h.model_tier(t), Some(Tier::Spilled), "k={} t={}", k, t);
                let got = h.model(t).expect("spilled round decodes");
                prop_assert_eq!(bits(&got), bits(m), "k={} t={}", k, t);
            }
            prop_assert_eq!(h.tier_stats().decode_errors, 0);
        }
    }
}
