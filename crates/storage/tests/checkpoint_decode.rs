//! Exhaustive decode-error coverage for the checkpoint binary format.
//!
//! The fault-injection harness (`fuiov-testkit`) corrupts checkpoints at
//! arbitrary byte positions; these tests pin the contract it relies on:
//! *every* strict prefix is `Truncated`, any magic perturbation is
//! `BadMagic`, any version perturbation is `BadVersion`, and round-trips
//! are bit-exact for empty through large vectors.

use fuiov_storage::checkpoint::{decode, encode, DecodeError};

const HEADER: usize = 10; // u32 magic + u16 version + u32 len

#[test]
fn every_strict_prefix_is_truncated() {
    for params in [vec![], vec![1.0f32], vec![0.5, -0.5, 2.0]] {
        let blob = encode(&params);
        assert_eq!(blob.len(), HEADER + 4 * params.len());
        for cut in 0..blob.len() {
            assert_eq!(
                decode(&blob[..cut]),
                Err(DecodeError::Truncated),
                "prefix of {cut}/{} bytes must be Truncated",
                blob.len()
            );
        }
        // The full blob still decodes.
        assert_eq!(decode(&blob).unwrap(), params);
    }
}

#[test]
fn any_magic_byte_flip_is_bad_magic() {
    let blob = encode(&[1.0, 2.0]);
    for byte in 0..4 {
        for bit in 0..8 {
            let mut m = blob.to_vec();
            m[byte] ^= 1 << bit;
            match decode(&m) {
                Err(DecodeError::BadMagic(got)) => {
                    assert_ne!(got, 0x4655_494F, "reported magic must be the corrupted one");
                }
                other => panic!("magic byte {byte} bit {bit}: expected BadMagic, got {other:?}"),
            }
        }
    }
}

#[test]
fn any_version_change_is_bad_version() {
    let blob = encode(&[1.0]);
    for v in [0u16, 2, 3, 0x00FF, 0xFF00, u16::MAX] {
        let mut m = blob.to_vec();
        m[4..6].copy_from_slice(&v.to_le_bytes());
        assert_eq!(decode(&m), Err(DecodeError::BadVersion(v)), "version {v}");
    }
    // Version 1 (the current one) still decodes.
    assert_eq!(decode(&blob).unwrap(), vec![1.0]);
}

#[test]
fn magic_is_checked_before_version_and_length() {
    // A blob corrupt in *both* magic and version reports BadMagic: the
    // decoder validates outside-in, so corruption diagnostics are stable.
    let mut m = encode(&[1.0]).to_vec();
    m[0] ^= 0xFF;
    m[4] = 99;
    assert!(matches!(decode(&m), Err(DecodeError::BadMagic(_))));
}

#[test]
fn declared_length_longer_than_payload_is_truncated() {
    let mut m = encode(&[1.0, 2.0]).to_vec();
    // Inflate the declared element count without adding payload.
    m[6..10].copy_from_slice(&3u32.to_le_bytes());
    assert_eq!(decode(&m), Err(DecodeError::Truncated));
}

#[test]
fn empty_vector_roundtrips() {
    let blob = encode(&[]);
    assert_eq!(blob.len(), HEADER);
    assert_eq!(decode(&blob).unwrap(), Vec::<f32>::new());
}

#[test]
fn large_vector_roundtrips_bit_exactly() {
    // 10k elements spanning magnitudes, signed zero and subnormals.
    let params: Vec<f32> = (0..10_000)
        .map(|i| match i % 7 {
            0 => 0.0,
            1 => -0.0,
            2 => f32::MIN_POSITIVE / 2.0, // subnormal
            3 => -(i as f32) * 1e30,
            4 => (i as f32).sqrt(),
            5 => -1.0 / (i as f32 + 1.0),
            _ => i as f32,
        })
        .collect();
    let decoded = decode(&encode(&params)).unwrap();
    assert_eq!(decoded.len(), params.len());
    for (i, (a, b)) in params.iter().zip(&decoded).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i} changed bits");
    }
}

#[test]
fn non_finite_values_roundtrip_by_bits() {
    let params = [f32::INFINITY, f32::NEG_INFINITY, f32::NAN, -f32::NAN];
    let decoded = decode(&encode(&params)).unwrap();
    for (a, b) in params.iter().zip(&decoded) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn trailing_garbage_after_payload_is_tolerated() {
    // The format is length-prefixed; decode reads exactly what the header
    // declares. Extra bytes after the payload do not corrupt the result
    // (a reader over a larger buffer sees the same params).
    let mut m = encode(&[4.25]).to_vec();
    m.extend_from_slice(&[0xAB, 0xCD]);
    assert_eq!(decode(&m).unwrap(), vec![4.25]);
}
