//! SIMD == scalar bitwise pinning for the storage codecs: the 2-bit sign
//! decode kernels and the zigzag-LEB128 delta codec.
//!
//! Same discipline as `crates/tensor/tests/simd_props.rs`: the dispatched
//! kernel runs with the SIMD path forced on (resolving to scalar on
//! non-AVX2 hosts) and must match the pinned scalar reference bit for
//! bit; lengths sweep `0..=67` to cover every tail-residue class of the
//! 32-element sign blocks and 8-element varint groups.

use fuiov_storage::delta;
use fuiov_storage::direction::GradientDirection;
use fuiov_tensor::simd;
use proptest::prelude::*;

fn with_forced_simd<T>(f: impl FnOnce() -> T) -> T {
    let _g = simd::force_guard();
    simd::set_forced(Some(true));
    let out = f();
    simd::set_forced(None);
    out
}

/// Signs in {-1, 0, 1}.
fn arb_signs() -> impl Strategy<Value = Vec<i8>> {
    prop::collection::vec((0u8..3).prop_map(|v| v as i8 - 1), 0..=67)
}

/// Every `f32` bit pattern — the delta codec must be lossless for NaN
/// payloads, infinities, both zeros, and denormals alike.
fn arb_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// `(base, cur)` with a mix of nearby values (short varints, the SIMD
/// fast path) and arbitrary bit patterns (long varints, scalar re-entry).
#[allow(clippy::type_complexity)]
fn arb_delta_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0usize..=67)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(arb_f32_bits(), n),
                prop::collection::vec((any::<u8>(), any::<u32>()), n),
            )
        })
        .prop_map(|(base, perturb)| {
            let cur: Vec<f32> = base
                .iter()
                .zip(&perturb)
                .map(|(b, &(kind, bits))| match kind % 4 {
                    // Nearby: a few ulps away — single-byte varints.
                    0 | 1 => f32::from_bits(b.to_bits() ^ u32::from(kind % 64)),
                    // Identical: zero deltas.
                    2 => *b,
                    // Arbitrary: long varints interrupt the fast path.
                    _ => f32::from_bits(bits),
                })
                .collect();
            (base, cur)
        })
}

fn f32_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn direction_kernels_simd_match_scalar_bitwise(signs in arb_signs()) {
        let d = GradientDirection::from_signs(&signs);
        let n = signs.len();

        let fast_signs = with_forced_simd(|| d.to_signs());
        prop_assert_eq!(&fast_signs, &d.to_signs_scalar());
        prop_assert_eq!(&fast_signs, &signs);

        let mut fast_f32 = vec![7.0f32; n]; // poisoned: every slot written
        with_forced_simd(|| d.decode_into(&mut fast_f32));
        let mut scalar_f32 = vec![-7.0f32; n];
        d.decode_into_scalar(&mut scalar_f32);
        prop_assert_eq!(f32_bits(&fast_f32), f32_bits(&scalar_f32));

        // Negative `a` so the sign of `a · 0` (−0.0 contributions) is
        // exercised; bitwise equality must still hold.
        for a in [2.375f64, -0.625] {
            let init: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 3.0).collect();
            let mut fast_acc = init.clone();
            with_forced_simd(|| d.decode_axpy(a, &mut fast_acc));
            let mut scalar_acc = init;
            d.decode_axpy_scalar(a, &mut scalar_acc);
            let bits64 = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits64(&fast_acc), bits64(&scalar_acc), "a={}", a);
        }
    }

    #[test]
    fn delta_codec_simd_matches_scalar_bitwise((base, cur) in arb_delta_pair()) {
        let mut fast = Vec::new();
        with_forced_simd(|| delta::encode(&base, &cur, &mut fast));
        let mut scalar = Vec::new();
        delta::encode_scalar(&base, &cur, &mut scalar);
        prop_assert_eq!(&fast, &scalar, "encoded streams diverged");
        prop_assert_eq!(fast.len(), delta::encoded_len(&base, &cur));

        // Both decoders, both streams (they're equal, but decode each
        // through each path), bitwise-exact roundtrip.
        let n = base.len();
        let fast_dec = with_forced_simd(|| delta::decode(&base, &fast, n)).expect("roundtrip");
        let scalar_dec = delta::decode_scalar(&base, &scalar, n).expect("roundtrip");
        prop_assert_eq!(f32_bits(&fast_dec), f32_bits(&cur));
        prop_assert_eq!(f32_bits(&scalar_dec), f32_bits(&cur));

        // Malformed inputs must agree on `None` too: truncate mid-stream.
        if !fast.is_empty() {
            let cut = &fast[..fast.len() - 1];
            let a = with_forced_simd(|| delta::decode(&base, cut, n));
            let b = delta::decode_scalar(&base, cut, n);
            prop_assert_eq!(a.is_none(), b.is_none());
        }
    }
}

#[test]
fn direction_kernels_hit_every_tail_residue_class_deterministically() {
    // Guaranteed coverage of every length residue mod 32 (the SIMD block)
    // and mod 4 (the packed byte), beyond what sampling happens to draw.
    for n in (0usize..=35).chain([63, 64, 65, 67]) {
        let signs: Vec<i8> = (0..n).map(|i| [1i8, -1, 0, 0, 1, -1][i % 6]).collect();
        let d = GradientDirection::from_signs(&signs);
        assert_eq!(
            with_forced_simd(|| d.to_signs()),
            d.to_signs_scalar(),
            "n={n}"
        );
        let mut fast = vec![1.0f32; n];
        with_forced_simd(|| d.decode_into(&mut fast));
        let mut scalar = vec![-1.0f32; n];
        d.decode_into_scalar(&mut scalar);
        assert_eq!(f32_bits(&fast), f32_bits(&scalar), "n={n}");
    }
}
