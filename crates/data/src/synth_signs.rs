//! Synthetic GTSRB substitute: procedurally rendered traffic signs.
//!
//! Each class is a (board shape, pictogram, palette) triple rendered on a
//! noisy road-scene-like background with per-sample jitter in position,
//! scale, rotation, lighting and pixel noise — mimicking GTSRB's "varying
//! angle, lighting, and seasonal changes". Classes are harder to separate
//! than the digit task (3 colour channels, more visual overlap), matching
//! GTSRB's role in the paper as the lower-accuracy dataset.

use crate::image::Image;
use rand::Rng;

/// Board shapes used by real traffic signs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Board {
    Circle,
    Triangle,
    InvTriangle,
    Diamond,
    Octagon,
}

/// Inner pictogram drawn on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Picto {
    HBar,
    VBar,
    Cross,
    Dot,
    LeftArrow,
    RightArrow,
    Chevron,
    None,
}

struct ClassDef {
    board: Board,
    picto: Picto,
    /// RGB board fill colour.
    fill: [f32; 3],
    /// RGB pictogram colour.
    ink: [f32; 3],
}

const RED: [f32; 3] = [0.85, 0.10, 0.10];
const BLUE: [f32; 3] = [0.15, 0.25, 0.85];
const YELLOW: [f32; 3] = [0.95, 0.85, 0.15];
const WHITE: [f32; 3] = [0.95, 0.95, 0.95];
const BLACK: [f32; 3] = [0.05, 0.05, 0.05];

/// The class catalogue. The first [`NUM_CLASSES`] entries are used by
/// default; the catalogue deliberately contains visually-confusable pairs
/// (same board, different pictogram) so the task doesn't saturate.
const CLASSES: [ClassDef; 12] = [
    ClassDef {
        board: Board::Circle,
        picto: Picto::HBar,
        fill: RED,
        ink: WHITE,
    }, // no-entry
    ClassDef {
        board: Board::Circle,
        picto: Picto::None,
        fill: RED,
        ink: WHITE,
    }, // prohibition
    ClassDef {
        board: Board::Circle,
        picto: Picto::LeftArrow,
        fill: BLUE,
        ink: WHITE,
    },
    ClassDef {
        board: Board::Circle,
        picto: Picto::RightArrow,
        fill: BLUE,
        ink: WHITE,
    },
    ClassDef {
        board: Board::Triangle,
        picto: Picto::Cross,
        fill: YELLOW,
        ink: BLACK,
    },
    ClassDef {
        board: Board::Triangle,
        picto: Picto::VBar,
        fill: YELLOW,
        ink: BLACK,
    },
    ClassDef {
        board: Board::InvTriangle,
        picto: Picto::None,
        fill: WHITE,
        ink: RED,
    }, // yield
    ClassDef {
        board: Board::Octagon,
        picto: Picto::HBar,
        fill: RED,
        ink: WHITE,
    }, // stop
    ClassDef {
        board: Board::Diamond,
        picto: Picto::None,
        fill: YELLOW,
        ink: BLACK,
    }, // priority
    ClassDef {
        board: Board::Circle,
        picto: Picto::Dot,
        fill: BLUE,
        ink: WHITE,
    },
    ClassDef {
        board: Board::Triangle,
        picto: Picto::Chevron,
        fill: YELLOW,
        ink: BLACK,
    },
    ClassDef {
        board: Board::Diamond,
        picto: Picto::Dot,
        fill: YELLOW,
        ink: BLACK,
    },
];

/// Default number of sign classes generated.
pub const NUM_CLASSES: usize = 12;

/// Generation parameters for the sign renderer.
#[derive(Debug, Clone, Copy)]
pub struct SignStyle {
    /// Image side length (square, 3 channels).
    pub size: usize,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise_sigma: f32,
    /// Maximum absolute rotation (radians).
    pub max_rotation: f32,
    /// Random translation range (fraction of image size).
    pub max_shift: f32,
    /// Sign radius range (fraction of image size).
    pub radius: (f32, f32),
    /// Brightness factor range (lighting variation).
    pub brightness: (f32, f32),
}

impl Default for SignStyle {
    fn default() -> Self {
        SignStyle {
            size: 32,
            noise_sigma: 0.12,
            max_rotation: 0.18,
            max_shift: 0.10,
            radius: (0.26, 0.38),
            brightness: (0.55, 1.15),
        }
    }
}

impl SignStyle {
    /// Reduced 16×16 style for fast unit tests.
    pub fn small() -> Self {
        SignStyle {
            size: 16,
            ..Default::default()
        }
    }
}

fn regular_polygon(center: (f32, f32), r: f32, sides: usize, phase: f32) -> Vec<(f32, f32)> {
    (0..sides)
        .map(|i| {
            let a = phase + i as f32 * std::f32::consts::TAU / sides as f32;
            (center.0 + r * a.cos(), center.1 + r * a.sin())
        })
        .collect()
}

/// Renders one traffic sign of class `label` with per-sample jitter.
///
/// # Panics
///
/// Panics if `label >= NUM_CLASSES`.
pub fn render_sign<R: Rng>(rng: &mut R, label: usize, style: &SignStyle) -> Image {
    assert!(
        label < NUM_CLASSES,
        "render_sign: label {label} out of range"
    );
    let def = &CLASSES[label];

    // Road-scene background: sky-to-asphalt vertical gradient + noise.
    let mut img = Image::zeros(3, style.size, style.size);
    for y in 0..style.size {
        let t = y as f32 / style.size as f32;
        let sky = [0.55 - 0.25 * t, 0.65 - 0.30 * t, 0.75 - 0.40 * t];
        for x in 0..style.size {
            for (ch, &v) in sky.iter().enumerate() {
                img.put(ch, y as isize, x as isize, v);
            }
        }
    }

    let r = rng.gen_range(style.radius.0..style.radius.1);
    let cx = 0.5 + rng.gen_range(-style.max_shift..style.max_shift);
    let cy = 0.5 + rng.gen_range(-style.max_shift..style.max_shift);
    let center = (cx, cy);

    match def.board {
        Board::Circle => {
            img.fill_circle(center, r, &def.fill);
            img.draw_ring(center, r, 0.05, &WHITE);
        }
        Board::Triangle => {
            img.fill_convex_polygon(
                &regular_polygon(center, r * 1.15, 3, -std::f32::consts::FRAC_PI_2),
                &def.fill,
            );
        }
        Board::InvTriangle => {
            img.fill_convex_polygon(
                &regular_polygon(center, r * 1.15, 3, std::f32::consts::FRAC_PI_2),
                &def.fill,
            );
        }
        Board::Diamond => {
            img.fill_convex_polygon(&regular_polygon(center, r * 1.1, 4, 0.0), &def.fill);
        }
        Board::Octagon => {
            img.fill_convex_polygon(
                &regular_polygon(center, r * 1.05, 8, std::f32::consts::PI / 8.0),
                &def.fill,
            );
        }
    }

    let pr = r * 0.55;
    match def.picto {
        Picto::HBar => {
            img.draw_segment((cx - pr, cy), (cx + pr, cy), 0.08, &def.ink);
        }
        Picto::VBar => {
            img.draw_segment((cx, cy - pr), (cx, cy + pr), 0.08, &def.ink);
        }
        Picto::Cross => {
            img.draw_segment((cx - pr, cy - pr), (cx + pr, cy + pr), 0.06, &def.ink);
            img.draw_segment((cx - pr, cy + pr), (cx + pr, cy - pr), 0.06, &def.ink);
        }
        Picto::Dot => {
            img.fill_circle(center, pr * 0.5, &def.ink);
        }
        Picto::LeftArrow => {
            img.draw_segment((cx + pr, cy), (cx - pr, cy), 0.06, &def.ink);
            img.draw_segment(
                (cx - pr, cy),
                (cx - pr * 0.2, cy - pr * 0.7),
                0.06,
                &def.ink,
            );
            img.draw_segment(
                (cx - pr, cy),
                (cx - pr * 0.2, cy + pr * 0.7),
                0.06,
                &def.ink,
            );
        }
        Picto::RightArrow => {
            img.draw_segment((cx - pr, cy), (cx + pr, cy), 0.06, &def.ink);
            img.draw_segment(
                (cx + pr, cy),
                (cx + pr * 0.2, cy - pr * 0.7),
                0.06,
                &def.ink,
            );
            img.draw_segment(
                (cx + pr, cy),
                (cx + pr * 0.2, cy + pr * 0.7),
                0.06,
                &def.ink,
            );
        }
        Picto::Chevron => {
            img.draw_segment(
                (cx - pr, cy + pr * 0.5),
                (cx, cy - pr * 0.5),
                0.06,
                &def.ink,
            );
            img.draw_segment(
                (cx, cy - pr * 0.5),
                (cx + pr, cy + pr * 0.5),
                0.06,
                &def.ink,
            );
        }
        Picto::None => {}
    }

    let angle = rng.gen_range(-style.max_rotation..style.max_rotation);
    let mut img = img.rotated(angle, 0.3);
    img.scale_brightness(rng.gen_range(style.brightness.0..style.brightness.1));
    img.add_gaussian_noise(rng, style.noise_sigma);
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn renders_all_classes_in_rgb() {
        for label in 0..NUM_CLASSES {
            let img = render_sign(&mut rng(label as u64), label, &SignStyle::default());
            assert_eq!(img.channels(), 3);
            assert_eq!(img.height(), 32);
            assert!(img.mean() > 0.05);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = render_sign(&mut rng(4), 7, &SignStyle::default());
        let b = render_sign(&mut rng(4), 7, &SignStyle::default());
        assert_eq!(a, b);
    }

    #[test]
    fn red_classes_have_red_dominance_at_center_region() {
        // Class 0 (no-entry): red board around the centre.
        let style = SignStyle {
            noise_sigma: 0.0,
            max_rotation: 1e-6,
            max_shift: 1e-6,
            brightness: (0.99, 1.0),
            ..Default::default()
        };
        let img = render_sign(&mut rng(1), 0, &style);
        // Sample just off-centre (centre has the white bar).
        let y = 22;
        let x = 16;
        assert!(
            img.get(0, y, x) > img.get(2, y, x),
            "red channel should dominate"
        );
    }

    #[test]
    fn classes_are_pairwise_distinct() {
        let style = SignStyle {
            noise_sigma: 0.0,
            max_rotation: 1e-6,
            max_shift: 1e-6,
            brightness: (0.99, 1.0),
            ..Default::default()
        };
        let imgs: Vec<Image> = (0..NUM_CLASSES)
            .map(|l| render_sign(&mut rng(0), l, &style))
            .collect();
        for i in 0..NUM_CLASSES {
            for j in (i + 1)..NUM_CLASSES {
                let diff: f32 = imgs[i]
                    .as_slice()
                    .iter()
                    .zip(imgs[j].as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 5.0, "classes {i} and {j} are nearly identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_label_out_of_range() {
        let _ = render_sign(&mut rng(0), NUM_CLASSES, &SignStyle::default());
    }
}
