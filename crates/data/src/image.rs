//! Tiny software rasteriser used by the synthetic dataset generators.
//!
//! Images are `c × h × w` float maps in `[0, 1]`. Drawing primitives work
//! in a normalised `[0,1]²` coordinate space so glyph definitions are
//! resolution-independent; the generators then apply per-sample jitter
//! (translation, scale, rotation, noise) to create intra-class variance.

use rand::Rng;

/// A `c`-channel float image with values nominally in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    c: usize,
    h: usize,
    w: usize,
    pixels: Vec<f32>,
}

impl Image {
    /// Creates an image filled with a constant value in every channel.
    pub fn filled(c: usize, h: usize, w: usize, value: f32) -> Self {
        Image {
            c,
            h,
            w,
            pixels: vec![value; c * h * w],
        }
    }

    /// All-black image.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self::filled(c, h, w, 0.0)
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Flat CHW pixel buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.pixels
    }

    /// Consumes the image, returning the flat CHW buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.pixels
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        assert!(
            c < self.c && y < self.h && x < self.w,
            "Image::get: out of bounds"
        );
        self.pixels[(c * self.h + y) * self.w + x]
    }

    /// Pixel setter (no-op outside bounds, which simplifies jittered
    /// drawing near edges).
    pub fn put(&mut self, c: usize, y: isize, x: isize, v: f32) {
        if c < self.c && y >= 0 && x >= 0 && (y as usize) < self.h && (x as usize) < self.w {
            self.pixels[(c * self.h + y as usize) * self.w + x as usize] = v;
        }
    }

    /// Sets all channels at `(y, x)` to the given per-channel color
    /// (color length must be ≥ channel count; extra entries ignored).
    pub fn put_color(&mut self, y: isize, x: isize, color: &[f32]) {
        for (ch, &v) in color.iter().enumerate().take(self.c) {
            self.put(ch, y, x, v);
        }
    }

    /// Draws a line segment between normalised points `(x0,y0)`–`(x1,y1)`
    /// with the given normalised thickness, in all channels.
    pub fn draw_segment(&mut self, p0: (f32, f32), p1: (f32, f32), thickness: f32, color: &[f32]) {
        let (hw, hh) = (self.w as f32, self.h as f32);
        let half = (thickness * hw.min(hh) / 2.0).max(0.5);
        let ax = p0.0 * hw;
        let ay = p0.1 * hh;
        let bx = p1.0 * hw;
        let by = p1.1 * hh;
        let (minx, maxx) = ((ax.min(bx) - half).floor(), (ax.max(bx) + half).ceil());
        let (miny, maxy) = ((ay.min(by) - half).floor(), (ay.max(by) + half).ceil());
        let dx = bx - ax;
        let dy = by - ay;
        let len_sq = dx * dx + dy * dy;
        for y in (miny as isize)..=(maxy as isize) {
            for x in (minx as isize)..=(maxx as isize) {
                let px = x as f32 + 0.5;
                let py = y as f32 + 0.5;
                // Distance from pixel centre to the segment.
                let t = if len_sq == 0.0 {
                    0.0
                } else {
                    (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
                };
                let cx = ax + t * dx;
                let cy = ay + t * dy;
                let d = ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
                if d <= half {
                    self.put_color(y, x, color);
                }
            }
        }
    }

    /// Draws a circle outline centred at a normalised point.
    pub fn draw_ring(&mut self, center: (f32, f32), radius: f32, thickness: f32, color: &[f32]) {
        let scale = self.w.min(self.h) as f32;
        let cx = center.0 * self.w as f32;
        let cy = center.1 * self.h as f32;
        let r = radius * scale;
        let half = (thickness * scale / 2.0).max(0.5);
        for y in 0..self.h {
            for x in 0..self.w {
                let d = ((x as f32 + 0.5 - cx).powi(2) + (y as f32 + 0.5 - cy).powi(2)).sqrt();
                if (d - r).abs() <= half {
                    self.put_color(y as isize, x as isize, color);
                }
            }
        }
    }

    /// Fills a circle.
    pub fn fill_circle(&mut self, center: (f32, f32), radius: f32, color: &[f32]) {
        let scale = self.w.min(self.h) as f32;
        let cx = center.0 * self.w as f32;
        let cy = center.1 * self.h as f32;
        let r = radius * scale;
        for y in 0..self.h {
            for x in 0..self.w {
                let d = ((x as f32 + 0.5 - cx).powi(2) + (y as f32 + 0.5 - cy).powi(2)).sqrt();
                if d <= r {
                    self.put_color(y as isize, x as isize, color);
                }
            }
        }
    }

    /// Fills a convex polygon given normalised vertices (winding either way).
    pub fn fill_convex_polygon(&mut self, verts: &[(f32, f32)], color: &[f32]) {
        assert!(
            verts.len() >= 3,
            "fill_convex_polygon: need at least 3 vertices"
        );
        let pts: Vec<(f32, f32)> = verts
            .iter()
            .map(|&(x, y)| (x * self.w as f32, y * self.h as f32))
            .collect();
        for y in 0..self.h {
            for x in 0..self.w {
                let px = x as f32 + 0.5;
                let py = y as f32 + 0.5;
                // Inside test: consistent sign of cross products.
                let mut pos = false;
                let mut neg = false;
                for i in 0..pts.len() {
                    let (x1, y1) = pts[i];
                    let (x2, y2) = pts[(i + 1) % pts.len()];
                    let cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1);
                    if cross > 0.0 {
                        pos = true;
                    }
                    if cross < 0.0 {
                        neg = true;
                    }
                }
                if !(pos && neg) {
                    self.put_color(y as isize, x as isize, color);
                }
            }
        }
    }

    /// Fills an axis-aligned rectangle given normalised corners.
    pub fn fill_rect(&mut self, top_left: (f32, f32), bottom_right: (f32, f32), color: &[f32]) {
        let x0 = (top_left.0 * self.w as f32) as isize;
        let y0 = (top_left.1 * self.h as f32) as isize;
        let x1 = (bottom_right.0 * self.w as f32).ceil() as isize;
        let y1 = (bottom_right.1 * self.h as f32).ceil() as isize;
        for y in y0..y1 {
            for x in x0..x1 {
                self.put_color(y, x, color);
            }
        }
    }

    /// Adds i.i.d. Gaussian pixel noise (Box–Muller from the supplied RNG)
    /// and clamps back to `[0, 1]`.
    pub fn add_gaussian_noise<R: Rng>(&mut self, rng: &mut R, sigma: f32) {
        for v in &mut self.pixels {
            let u1: f32 = rng.gen_range(1e-7..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *v = (*v + sigma * z).clamp(0.0, 1.0);
        }
    }

    /// Multiplies all pixels by a brightness factor and clamps to `[0,1]`.
    pub fn scale_brightness(&mut self, factor: f32) {
        for v in &mut self.pixels {
            *v = (*v * factor).clamp(0.0, 1.0);
        }
    }

    /// Returns a copy rotated by `angle` radians about the image centre
    /// (nearest-neighbour sampling; out-of-range samples take `fill`).
    pub fn rotated(&self, angle: f32, fill: f32) -> Image {
        let mut out = Image::filled(self.c, self.h, self.w, fill);
        let cy = self.h as f32 / 2.0;
        let cx = self.w as f32 / 2.0;
        let (sin, cos) = angle.sin_cos();
        for y in 0..self.h {
            for x in 0..self.w {
                // Inverse-map output pixel to input coordinates.
                let dy = y as f32 + 0.5 - cy;
                let dx = x as f32 + 0.5 - cx;
                let sx = cos * dx + sin * dy + cx;
                let sy = -sin * dx + cos * dy + cy;
                if sx >= 0.0 && sy >= 0.0 && (sx as usize) < self.w && (sy as usize) < self.h {
                    for ch in 0..self.c {
                        let v = self.get(ch, sy as usize, sx as usize);
                        out.put(ch, y as isize, x as isize, v);
                    }
                }
            }
        }
        out
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        fuiov_tensor::stats::mean(&self.pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn filled_has_constant_pixels() {
        let img = Image::filled(1, 4, 4, 0.5);
        assert!(img.as_slice().iter().all(|&v| v == 0.5));
        assert_eq!(img.channels(), 1);
        assert_eq!((img.height(), img.width()), (4, 4));
    }

    #[test]
    fn put_out_of_bounds_is_noop() {
        let mut img = Image::zeros(1, 2, 2);
        img.put(0, -1, 0, 1.0);
        img.put(0, 0, 5, 1.0);
        assert!(img.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn segment_marks_pixels_along_line() {
        let mut img = Image::zeros(1, 16, 16);
        img.draw_segment((0.1, 0.5), (0.9, 0.5), 0.1, &[1.0]);
        // Middle row should be lit, corners dark.
        assert!(img.get(0, 8, 8) > 0.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert!(img.mean() > 0.01);
    }

    #[test]
    fn ring_is_hollow() {
        let mut img = Image::zeros(1, 32, 32);
        img.draw_ring((0.5, 0.5), 0.4, 0.08, &[1.0]);
        assert_eq!(img.get(0, 16, 16), 0.0, "centre should stay empty");
        assert!(img.get(0, 16, 3) > 0.0, "ring edge should be lit");
    }

    #[test]
    fn filled_circle_covers_centre() {
        let mut img = Image::zeros(1, 16, 16);
        img.fill_circle((0.5, 0.5), 0.3, &[1.0]);
        assert!(img.get(0, 8, 8) > 0.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn polygon_fill_triangle() {
        let mut img = Image::zeros(1, 16, 16);
        img.fill_convex_polygon(&[(0.5, 0.1), (0.9, 0.9), (0.1, 0.9)], &[1.0]);
        assert!(img.get(0, 10, 8) > 0.0, "triangle interior");
        assert_eq!(img.get(0, 2, 2), 0.0, "outside apex");
    }

    #[test]
    fn rect_fill_is_exact() {
        let mut img = Image::zeros(2, 8, 8);
        img.fill_rect((0.25, 0.25), (0.75, 0.75), &[1.0, 0.5]);
        assert_eq!(img.get(0, 4, 4), 1.0);
        assert_eq!(img.get(1, 4, 4), 0.5);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn noise_stays_in_unit_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut img = Image::filled(1, 8, 8, 0.5);
        img.add_gaussian_noise(&mut rng, 0.5);
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(img.as_slice().iter().any(|&v| v != 0.5));
    }

    #[test]
    fn rotation_by_zero_is_identity_interior() {
        let mut img = Image::zeros(1, 8, 8);
        img.fill_rect((0.25, 0.25), (0.75, 0.75), &[1.0]);
        let rot = img.rotated(0.0, 0.0);
        assert_eq!(rot, img);
    }

    #[test]
    fn rotation_moves_mass() {
        let mut img = Image::zeros(1, 16, 16);
        img.fill_rect((0.6, 0.4), (0.9, 0.6), &[1.0]);
        let rot = img.rotated(std::f32::consts::FRAC_PI_2, 0.0);
        assert_ne!(rot, img);
        // Mass approximately conserved (nearest neighbour loses a little).
        assert!((rot.mean() - img.mean()).abs() < 0.05);
    }
}
