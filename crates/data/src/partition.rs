//! Federated data partitioning: splitting one dataset across clients.
//!
//! Two strategies are provided, matching common FL evaluation practice:
//! IID (uniform random split) and label-skewed non-IID via a Dirichlet
//! distribution over class proportions per client.

use fuiov_tensor::rng::{rng_for, streams};
use rand::seq::SliceRandom;
use rand::Rng;

/// Splits `n_samples` indices uniformly at random into `n_clients`
/// near-equal shards.
///
/// Every client receives at least `⌊n/k⌋` samples; remainders go to the
/// first `n mod k` clients.
///
/// # Panics
///
/// Panics if `n_clients == 0` or `n_samples < n_clients`.
pub fn partition_iid(n_samples: usize, n_clients: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "partition_iid: need at least one client");
    assert!(
        n_samples >= n_clients,
        "partition_iid: fewer samples than clients"
    );
    let mut idx: Vec<usize> = (0..n_samples).collect();
    idx.shuffle(&mut rng_for(seed, streams::DATA + 10));
    let base = n_samples / n_clients;
    let extra = n_samples % n_clients;
    let mut out = Vec::with_capacity(n_clients);
    let mut cursor = 0;
    for k in 0..n_clients {
        let take = base + usize::from(k < extra);
        out.push(idx[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

/// Label-skewed non-IID partition: for each class, sample client
/// proportions from `Dirichlet(alpha)` and deal that class's samples
/// accordingly. Small `alpha` (e.g. 0.1) gives extreme skew; large `alpha`
/// approaches IID.
///
/// Clients that end up empty are given one sample stolen from the largest
/// client, so every client can train.
///
/// # Panics
///
/// Panics if `n_clients == 0`, `alpha <= 0`, or `labels.len() < n_clients`.
pub fn partition_dirichlet(
    labels: &[usize],
    n_clients: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(
        n_clients > 0,
        "partition_dirichlet: need at least one client"
    );
    assert!(alpha > 0.0, "partition_dirichlet: alpha must be positive");
    assert!(
        labels.len() >= n_clients,
        "partition_dirichlet: fewer samples than clients"
    );
    let mut rng = rng_for(seed, streams::DATA + 11);
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n_clients];

    for class in 0..num_classes {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        if members.is_empty() {
            continue;
        }
        members.shuffle(&mut rng);
        let props = dirichlet_sample(&mut rng, alpha, n_clients);
        // Convert proportions to cumulative boundaries over this class.
        let mut cursor = 0usize;
        let mut acc = 0.0f64;
        for (k, &p) in props.iter().enumerate() {
            acc += p;
            let end = if k + 1 == n_clients {
                members.len()
            } else {
                ((members.len() as f64) * acc).round() as usize
            }
            .min(members.len());
            out[k].extend_from_slice(&members[cursor..end]);
            cursor = end;
        }
    }

    // Rebalance empties so every client can participate.
    for k in 0..n_clients {
        if out[k].is_empty() {
            let donor = (0..n_clients)
                .max_by_key(|&j| out[j].len())
                .expect("non-empty client list");
            let sample = out[donor].pop().expect("donor has samples");
            out[k].push(sample);
        }
    }
    out
}

/// Samples from a symmetric Dirichlet via normalised Gamma draws
/// (Marsaglia–Tsang for shape ≥ 1, boosted for shape < 1).
fn dirichlet_sample<R: Rng>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate fall-back: uniform.
        return vec![1.0 / k as f64; k];
    }
    draws.into_iter().map(|d| d / sum).collect()
}

fn gamma_sample<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(1e-12..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    // Marsaglia & Tsang method.
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(1e-12..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn normal_sample<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_covers_every_sample_exactly_once() {
        let parts = partition_iid(103, 10, 1);
        assert_eq!(parts.len(), 10);
        let mut all: Vec<usize> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Sizes are 11 or 10.
        assert!(parts.iter().all(|p| p.len() == 10 || p.len() == 11));
    }

    #[test]
    fn iid_is_deterministic() {
        assert_eq!(partition_iid(50, 5, 9), partition_iid(50, 5, 9));
        assert_ne!(partition_iid(50, 5, 9), partition_iid(50, 5, 10));
    }

    #[test]
    fn dirichlet_covers_every_sample_exactly_once() {
        let labels: Vec<usize> = (0..200).map(|i| i % 10).collect();
        let parts = partition_dirichlet(&labels, 8, 0.5, 3);
        let mut all: Vec<usize> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn dirichlet_no_empty_clients() {
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let parts = partition_dirichlet(&labels, 20, 0.05, 7);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn small_alpha_is_more_skewed_than_large_alpha() {
        let labels: Vec<usize> = (0..1000).map(|i| i % 10).collect();
        let skewed = partition_dirichlet(&labels, 10, 0.1, 5);
        let uniform = partition_dirichlet(&labels, 10, 100.0, 5);
        let spread = |parts: &[Vec<usize>]| {
            let sizes: Vec<f32> = parts.iter().map(|p| p.len() as f32).collect();
            fuiov_tensor::stats::stddev(&sizes)
        };
        assert!(
            spread(&skewed) > spread(&uniform),
            "alpha=0.1 should be more size-skewed than alpha=100"
        );
    }

    #[test]
    fn gamma_sampler_has_right_mean() {
        let mut rng = rng_for(1, 2);
        for &shape in &[0.5f64, 1.0, 4.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "gamma mean {mean} far from shape {shape}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fewer samples than clients")]
    fn iid_rejects_tiny_datasets() {
        let _ = partition_iid(3, 5, 0);
    }
}
