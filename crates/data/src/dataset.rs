//! In-memory labelled image dataset with batching utilities.

use crate::image::Image;
use crate::synth_digits::{render_digit, DigitStyle};
use crate::synth_sensors::{render_maneuver, SensorStyle};
use crate::synth_signs::{render_sign, SignStyle};
use fuiov_nn::Tensor4;
use fuiov_tensor::rng::{rng_for, streams};
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset of fixed-shape images stored as flat CHW vectors.
#[derive(Debug, Clone)]
pub struct Dataset {
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    samples: Vec<Vec<f32>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset with the given shape and class count.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn empty(c: usize, h: usize, w: usize, num_classes: usize) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0 && num_classes > 0,
            "Dataset::empty: zero dimension"
        );
        Dataset {
            c,
            h,
            w,
            num_classes,
            samples: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Generates a balanced synthetic digit dataset (MNIST substitute).
    ///
    /// Samples cycle through the 10 classes so every class has
    /// `⌈n/10⌉`-ish representation.
    pub fn digits(n: usize, style: &DigitStyle, seed: u64) -> Self {
        let mut rng = rng_for(seed, streams::DATA);
        let mut ds = Dataset::empty(1, style.size, style.size, crate::synth_digits::NUM_CLASSES);
        for i in 0..n {
            let label = i % ds.num_classes;
            let img = render_digit(&mut rng, label, style);
            ds.push_image(img, label);
        }
        ds
    }

    /// Generates a balanced synthetic traffic-sign dataset (GTSRB
    /// substitute).
    pub fn signs(n: usize, style: &SignStyle, seed: u64) -> Self {
        let mut rng = rng_for(seed, streams::DATA + 1);
        let mut ds = Dataset::empty(3, style.size, style.size, crate::synth_signs::NUM_CLASSES);
        for i in 0..n {
            let label = i % ds.num_classes;
            let img = render_sign(&mut rng, label, style);
            ds.push_image(img, label);
        }
        ds
    }

    /// Generates a balanced synthetic IoT sensor dataset (the paper's
    /// §VI future-work extension: driving-manoeuvre windows as
    /// `3 × 1 × len` feature maps).
    pub fn sensors(n: usize, style: &SensorStyle, seed: u64) -> Self {
        let mut rng = rng_for(seed, streams::DATA + 2);
        let mut ds = Dataset::empty(3, 1, style.len, crate::synth_sensors::NUM_CLASSES);
        for i in 0..n {
            let label = i % ds.num_classes;
            let img = render_maneuver(&mut rng, label, style);
            ds.push_image(img, label);
        }
        ds
    }

    /// Appends an image with its label.
    ///
    /// # Panics
    ///
    /// Panics if the image shape or label doesn't match the dataset.
    pub fn push_image(&mut self, img: Image, label: usize) {
        assert_eq!(
            (img.channels(), img.height(), img.width()),
            (self.c, self.h, self.w),
            "push_image: shape mismatch"
        );
        assert!(label < self.num_classes, "push_image: label out of range");
        self.samples.push(img.into_vec());
        self.labels.push(label);
    }

    /// Appends a raw flat sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature length or label doesn't match.
    pub fn push_raw(&mut self, features: Vec<f32>, label: usize) {
        assert_eq!(
            features.len(),
            self.c * self.h * self.w,
            "push_raw: feature length"
        );
        assert!(label < self.num_classes, "push_raw: label out of range");
        self.samples.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample shape `(c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Features of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn features(&self, i: usize) -> &[f32] {
        &self.samples[i]
    }

    /// Mutable features of sample `i` (used by poisoning attacks to stamp
    /// backdoor triggers).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn features_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.samples[i]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Overwrites the label of sample `i` (used by label-flip attacks).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_label(&mut self, i: usize, label: usize) {
        assert!(label < self.num_classes, "set_label: label out of range");
        self.labels[i] = label;
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds the NCHW tensor + label vector for the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor4, Vec<usize>) {
        assert!(!indices.is_empty(), "gather: empty index set");
        let items: Vec<&[f32]> = indices.iter().map(|&i| self.features(i)).collect();
        let x = Tensor4::from_items(&items).reshape(self.c, self.h, self.w);
        let y = indices.iter().map(|&i| self.labels[i]).collect();
        (x, y)
    }

    /// Tensor + labels for the whole dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn full(&self) -> (Tensor4, Vec<usize>) {
        let all: Vec<usize> = (0..self.len()).collect();
        self.gather(&all)
    }

    /// A new dataset containing only the given samples (copied).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::empty(self.c, self.h, self.w, self.num_classes);
        for &i in indices {
            out.push_raw(self.samples[i].clone(), self.labels[i]);
        }
        out
    }

    /// Splits into `(train, test)` with `test_fraction` of samples held
    /// out, after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `(0, 1)`.
    pub fn train_test_split(&self, test_fraction: f32, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "train_test_split: fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng_for(seed, streams::DATA + 2));
        let n_test = ((self.len() as f32) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Shuffled mini-batches of indices for one epoch.
    ///
    /// The final short batch is kept (dropping it would bias small client
    /// datasets).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches<R: Rng>(&self, batch_size: usize, rng: &mut R) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batches: batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }

    /// Merges another dataset of identical shape/classes into this one.
    ///
    /// # Panics
    ///
    /// Panics if shapes or class counts differ.
    pub fn merge(&mut self, other: &Dataset) {
        assert_eq!(self.shape(), other.shape(), "merge: shape mismatch");
        assert_eq!(
            self.num_classes, other.num_classes,
            "merge: class count mismatch"
        );
        for i in 0..other.len() {
            self.samples.push(other.samples[i].clone());
            self.labels.push(other.labels[i]);
        }
    }

    /// A copy containing only the given classes (labels preserved).
    ///
    /// # Panics
    ///
    /// Panics if any listed class is out of range.
    pub fn filter_classes(&self, classes: &[usize]) -> Dataset {
        for &c in classes {
            assert!(c < self.num_classes, "filter_classes: class out of range");
        }
        let idx: Vec<usize> = (0..self.len())
            .filter(|&i| classes.contains(&self.labels[i]))
            .collect();
        self.subset(&idx)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Indices of all samples with the given label.
    pub fn indices_of_class(&self, label: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i] == label)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_digits() -> Dataset {
        Dataset::digits(40, &DigitStyle::small(), 7)
    }

    #[test]
    fn digits_are_balanced_and_shaped() {
        let ds = tiny_digits();
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.shape(), (1, 12, 12));
        assert_eq!(ds.num_classes(), 10);
        assert!(ds.class_counts().iter().all(|&c| c == 4));
    }

    #[test]
    fn signs_dataset_has_three_channels() {
        let ds = Dataset::signs(24, &SignStyle::small(), 3);
        assert_eq!(ds.shape(), (3, 16, 16));
        assert_eq!(ds.num_classes(), crate::synth_signs::NUM_CLASSES);
    }

    #[test]
    fn sensors_dataset_shape_and_balance() {
        let ds = Dataset::sensors(24, &SensorStyle::small(), 9);
        assert_eq!(ds.shape(), (3, 1, 24));
        assert_eq!(ds.num_classes(), 6);
        assert!(ds.class_counts().iter().all(|&c| c == 4));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::digits(10, &DigitStyle::small(), 5);
        let b = Dataset::digits(10, &DigitStyle::small(), 5);
        assert_eq!(a.features(3), b.features(3));
        let c = Dataset::digits(10, &DigitStyle::small(), 6);
        assert_ne!(a.features(3), c.features(3));
    }

    #[test]
    fn gather_builds_correct_tensor() {
        let ds = tiny_digits();
        let (x, y) = ds.gather(&[0, 5, 9]);
        assert_eq!(x.shape(), (3, 1, 12, 12));
        assert_eq!(y, vec![0, 5, 9]);
        assert_eq!(x.item(1), ds.features(5));
    }

    #[test]
    fn subset_copies_samples() {
        let ds = tiny_digits();
        let sub = ds.subset(&[1, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(0), ds.label(1));
        assert_eq!(sub.features(1), ds.features(2));
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = tiny_digits();
        let (train, test) = ds.train_test_split(0.25, 1);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn batches_cover_every_index_once() {
        let ds = tiny_digits();
        let mut rng = fuiov_tensor::rng::rng_for(0, 0);
        let batches = ds.batches(16, &mut rng);
        let mut seen: Vec<usize> = batches.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        assert_eq!(batches[0].len(), 16);
        assert_eq!(batches.last().unwrap().len(), 8);
    }

    #[test]
    fn set_label_and_mutate_features() {
        let mut ds = tiny_digits();
        ds.set_label(0, 9);
        assert_eq!(ds.label(0), 9);
        ds.features_mut(0)[0] = 1.0;
        assert_eq!(ds.features(0)[0], 1.0);
    }

    #[test]
    fn merge_concatenates_compatible_sets() {
        let mut a = tiny_digits();
        let b = Dataset::digits(20, &DigitStyle::small(), 99);
        let before = a.len();
        a.merge(&b);
        assert_eq!(a.len(), before + 20);
        assert_eq!(a.features(before), b.features(0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_different_shapes() {
        let mut a = tiny_digits();
        let b = Dataset::digits(10, &DigitStyle::default(), 1); // 28×28
        a.merge(&b);
    }

    #[test]
    fn filter_classes_keeps_only_listed() {
        let ds = tiny_digits();
        let f = ds.filter_classes(&[1, 3]);
        assert_eq!(f.len(), 8);
        assert!(f.labels().iter().all(|&l| l == 1 || l == 3));
    }

    #[test]
    fn indices_of_class_finds_all() {
        let ds = tiny_digits();
        let idx = ds.indices_of_class(3);
        assert_eq!(idx.len(), 4);
        assert!(idx.iter().all(|&i| ds.label(i) == 3));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn set_label_rejects_out_of_range() {
        let mut ds = tiny_digits();
        ds.set_label(0, 10);
    }
}
