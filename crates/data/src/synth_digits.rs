//! Synthetic MNIST substitute: procedurally rendered digit glyphs.
//!
//! Real MNIST is unavailable offline, so this module generates a 10-class
//! handwritten-digit-like task: each class is a stroke skeleton (a
//! seven-segment-style glyph with diagonals for 1/4/7) rendered with random
//! translation, scale, rotation, stroke width, brightness and pixel noise.
//! The result is a task a 2-conv CNN learns to high-but-not-perfect
//! accuracy over ~100 federated rounds — the same regime the paper's MNIST
//! experiments operate in (see DESIGN.md §2 for the substitution argument).

use crate::image::Image;
use rand::Rng;

/// Segment endpoints in glyph-local coordinates (a 0..1 box with margins).
/// Standard seven-segment layout plus two diagonals.
const SEG: [((f32, f32), (f32, f32)); 9] = [
    ((0.25, 0.15), (0.75, 0.15)), // 0: top
    ((0.75, 0.15), (0.75, 0.50)), // 1: top-right
    ((0.75, 0.50), (0.75, 0.85)), // 2: bottom-right
    ((0.25, 0.85), (0.75, 0.85)), // 3: bottom
    ((0.25, 0.50), (0.25, 0.85)), // 4: bottom-left
    ((0.25, 0.15), (0.25, 0.50)), // 5: top-left
    ((0.25, 0.50), (0.75, 0.50)), // 6: middle
    ((0.45, 0.15), (0.75, 0.15)), // 7: short top (for 1's flag)
    ((0.75, 0.15), (0.40, 0.85)), // 8: long diagonal (for 7)
];

/// Which segments each digit class lights up.
const GLYPHS: [&[usize]; 10] = [
    &[0, 1, 2, 3, 4, 5],    // 0
    &[1, 2, 7],             // 1 (with a little flag so it isn't a bare line)
    &[0, 1, 6, 4, 3],       // 2
    &[0, 1, 6, 2, 3],       // 3
    &[5, 6, 1, 2],          // 4
    &[0, 5, 6, 2, 3],       // 5
    &[0, 5, 4, 3, 2, 6],    // 6
    &[0, 8],                // 7 (top bar + diagonal)
    &[0, 1, 2, 3, 4, 5, 6], // 8
    &[6, 5, 0, 1, 2, 3],    // 9
];

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// Generation parameters for the digit renderer.
#[derive(Debug, Clone, Copy)]
pub struct DigitStyle {
    /// Image side length in pixels (images are square, 1 channel).
    pub size: usize,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise_sigma: f32,
    /// Maximum absolute rotation in radians.
    pub max_rotation: f32,
    /// Random translation range (fraction of image size).
    pub max_shift: f32,
    /// Stroke thickness range (fraction of image size).
    pub stroke: (f32, f32),
    /// Glyph scale range.
    pub scale: (f32, f32),
}

impl Default for DigitStyle {
    fn default() -> Self {
        DigitStyle {
            size: 28,
            noise_sigma: 0.15,
            max_rotation: 0.22, // ≈ 12.5°
            max_shift: 0.08,
            stroke: (0.06, 0.12),
            scale: (0.75, 1.05),
        }
    }
}

impl DigitStyle {
    /// A reduced 12×12 style for fast unit tests (same code path).
    pub fn small() -> Self {
        DigitStyle {
            size: 12,
            ..Default::default()
        }
    }
}

/// Renders one digit of class `label` with per-sample jitter from `rng`.
///
/// # Panics
///
/// Panics if `label >= 10`.
pub fn render_digit<R: Rng>(rng: &mut R, label: usize, style: &DigitStyle) -> Image {
    assert!(
        label < NUM_CLASSES,
        "render_digit: label {label} out of range"
    );
    let mut img = Image::zeros(1, style.size, style.size);
    let scale = rng.gen_range(style.scale.0..style.scale.1);
    let dx = rng.gen_range(-style.max_shift..style.max_shift);
    let dy = rng.gen_range(-style.max_shift..style.max_shift);
    let stroke = rng.gen_range(style.stroke.0..style.stroke.1);
    let ink = rng.gen_range(0.75..1.0);

    for &seg in GLYPHS[label] {
        let ((x0, y0), (x1, y1)) = SEG[seg];
        let map = |x: f32, y: f32| ((x - 0.5) * scale + 0.5 + dx, (y - 0.5) * scale + 0.5 + dy);
        img.draw_segment(map(x0, y0), map(x1, y1), stroke, &[ink]);
    }

    let angle = rng.gen_range(-style.max_rotation..style.max_rotation);
    let mut img = img.rotated(angle, 0.0);
    img.add_gaussian_noise(rng, style.noise_sigma);
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn renders_all_classes() {
        let style = DigitStyle::default();
        for label in 0..NUM_CLASSES {
            let img = render_digit(&mut rng(label as u64), label, &style);
            assert_eq!(img.channels(), 1);
            assert_eq!(img.height(), 28);
            // Some ink must be present.
            assert!(img.mean() > 0.02, "class {label} rendered empty");
        }
    }

    #[test]
    fn same_seed_same_image() {
        let style = DigitStyle::default();
        let a = render_digit(&mut rng(9), 3, &style);
        let b = render_digit(&mut rng(9), 3, &style);
        assert_eq!(a, b);
    }

    #[test]
    fn different_classes_have_different_skeletons() {
        // Render without noise/jitter to compare pure skeletons.
        let style = DigitStyle {
            noise_sigma: 0.0,
            max_rotation: 1e-6,
            max_shift: 1e-6,
            stroke: (0.08, 0.081),
            scale: (0.9, 0.901),
            size: 28,
        };
        let imgs: Vec<Image> = (0..10)
            .map(|l| render_digit(&mut rng(0), l, &style))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff: f32 = imgs[i]
                    .as_slice()
                    .iter()
                    .zip(imgs[j].as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 1.0, "classes {i} and {j} are nearly identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_label_out_of_range() {
        let _ = render_digit(&mut rng(0), 10, &DigitStyle::default());
    }

    #[test]
    fn small_style_renders() {
        let img = render_digit(&mut rng(1), 5, &DigitStyle::small());
        assert_eq!(img.height(), 12);
    }
}
