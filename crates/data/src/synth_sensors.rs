//! Synthetic IoT sensor dataset — the paper's §VI future-work direction
//! ("we plan to evaluate its performance in the Internet of Things
//! scenarios").
//!
//! Each sample is a 3-axis accelerometer window (longitudinal `ax`,
//! lateral `ay`, vertical `az`) of a driving manoeuvre, rendered as a
//! `3 × 1 × len` feature map. Classes are manoeuvre types with distinct
//! kinematic signatures plus per-sample jitter (amplitude, timing, sensor
//! noise, baseline drift) — a classification task of the kind an IoT/IoV
//! fleet would federate on without sharing raw telemetry.

use crate::image::Image;
use rand::Rng;

/// Driving-manoeuvre classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maneuver {
    /// Constant-speed cruising: all axes near baseline.
    Cruise,
    /// Acceleration: positive longitudinal bump.
    Accelerate,
    /// Braking: negative longitudinal bump.
    Brake,
    /// Left turn: positive lateral lobe.
    TurnLeft,
    /// Right turn: negative lateral lobe.
    TurnRight,
    /// Rough road: high-frequency vertical vibration bursts.
    RoughRoad,
}

/// All classes in label order.
pub const MANEUVERS: [Maneuver; 6] = [
    Maneuver::Cruise,
    Maneuver::Accelerate,
    Maneuver::Brake,
    Maneuver::TurnLeft,
    Maneuver::TurnRight,
    Maneuver::RoughRoad,
];

/// Number of manoeuvre classes.
pub const NUM_CLASSES: usize = MANEUVERS.len();

/// Generation parameters for the sensor renderer.
#[derive(Debug, Clone, Copy)]
pub struct SensorStyle {
    /// Window length in samples.
    pub len: usize,
    /// Std-dev of additive sensor noise.
    pub noise_sigma: f32,
    /// Manoeuvre amplitude range (fraction of full scale).
    pub amplitude: (f32, f32),
    /// Random time shift of the manoeuvre centre (fraction of window).
    pub max_shift: f32,
    /// Baseline drift amplitude.
    pub drift: f32,
}

impl Default for SensorStyle {
    fn default() -> Self {
        SensorStyle {
            len: 64,
            noise_sigma: 0.04,
            amplitude: (0.25, 0.45),
            max_shift: 0.15,
            drift: 0.05,
        }
    }
}

impl SensorStyle {
    /// Shorter windows for fast unit tests.
    pub fn small() -> Self {
        SensorStyle {
            len: 24,
            ..Default::default()
        }
    }
}

/// A smooth bump centred at `c` with half-width `w`, evaluated at `t`
/// (all in `[0,1]`).
fn bump(t: f32, c: f32, w: f32) -> f32 {
    let d = (t - c) / w;
    (-d * d).exp()
}

/// Renders one manoeuvre window with per-sample jitter.
///
/// Values are baseline `0.5` ± signal, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `label >= NUM_CLASSES`.
pub fn render_maneuver<R: Rng>(rng: &mut R, label: usize, style: &SensorStyle) -> Image {
    assert!(
        label < NUM_CLASSES,
        "render_maneuver: label {label} out of range"
    );
    let maneuver = MANEUVERS[label];
    let len = style.len;
    let mut img = Image::filled(3, 1, len, 0.5);

    let amp = rng.gen_range(style.amplitude.0..style.amplitude.1);
    let centre = 0.5 + rng.gen_range(-style.max_shift..=style.max_shift);
    let drift_slope = rng.gen_range(-style.drift..=style.drift);
    let vib_phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);

    for i in 0..len {
        let t = i as f32 / len as f32;
        let drift = drift_slope * (t - 0.5);
        let (ax, ay, az) = match maneuver {
            Maneuver::Cruise => (0.0, 0.0, 0.0),
            Maneuver::Accelerate => (amp * bump(t, centre, 0.18), 0.0, 0.0),
            Maneuver::Brake => (-amp * bump(t, centre, 0.18), 0.0, 0.0),
            Maneuver::TurnLeft => (
                0.0,
                amp * bump(t, centre, 0.22),
                0.08 * amp * bump(t, centre, 0.22),
            ),
            Maneuver::TurnRight => (
                0.0,
                -amp * bump(t, centre, 0.22),
                0.08 * amp * bump(t, centre, 0.22),
            ),
            Maneuver::RoughRoad => {
                let vib = (vib_phase + t * 55.0).sin();
                let envelope = bump(t, centre, 0.3);
                (0.0, 0.0, amp * vib * envelope)
            }
        };
        img.put(0, 0, i as isize, (0.5 + ax + drift).clamp(0.0, 1.0));
        img.put(1, 0, i as isize, (0.5 + ay + drift).clamp(0.0, 1.0));
        img.put(2, 0, i as isize, (0.5 + az + drift).clamp(0.0, 1.0));
    }
    img.add_gaussian_noise(rng, style.noise_sigma);
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn renders_all_classes() {
        for label in 0..NUM_CLASSES {
            let img = render_maneuver(&mut rng(label as u64), label, &SensorStyle::default());
            assert_eq!(img.channels(), 3);
            assert_eq!(img.height(), 1);
            assert_eq!(img.width(), 64);
            assert!(img.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = render_maneuver(&mut rng(5), 2, &SensorStyle::default());
        let b = render_maneuver(&mut rng(5), 2, &SensorStyle::default());
        assert_eq!(a, b);
    }

    #[test]
    fn accelerate_and_brake_are_mirrored_on_ax() {
        let style = SensorStyle {
            noise_sigma: 0.0,
            max_shift: 0.0,
            drift: 0.0,
            ..Default::default()
        };
        let acc = render_maneuver(&mut rng(1), 1, &style);
        let brk = render_maneuver(&mut rng(1), 2, &style);
        // Same jitter draw → ax channels mirror about the 0.5 baseline.
        for i in 0..style.len {
            let a = acc.get(0, 0, i) - 0.5;
            let b = brk.get(0, 0, i) - 0.5;
            assert!((a + b).abs() < 1e-5, "at {i}: {a} vs {b}");
        }
    }

    #[test]
    fn turns_live_on_the_lateral_axis() {
        let style = SensorStyle {
            noise_sigma: 0.0,
            max_shift: 0.0,
            drift: 0.0,
            ..Default::default()
        };
        let left = render_maneuver(&mut rng(2), 3, &style);
        let mid = style.len / 2;
        assert!(left.get(1, 0, mid) > 0.6, "lateral lobe missing");
        assert!(
            (left.get(0, 0, mid) - 0.5).abs() < 0.05,
            "longitudinal should stay flat"
        );
    }

    #[test]
    fn rough_road_is_high_frequency_on_az() {
        let style = SensorStyle {
            noise_sigma: 0.0,
            max_shift: 0.0,
            drift: 0.0,
            ..Default::default()
        };
        let rough = render_maneuver(&mut rng(3), 5, &style);
        // Count sign changes of az − baseline around the window centre.
        let mut flips = 0;
        let mut prev = rough.get(2, 0, style.len / 4) - 0.5;
        for i in style.len / 4..3 * style.len / 4 {
            let v = rough.get(2, 0, i) - 0.5;
            if v.signum() != prev.signum() && v.abs() > 0.01 && prev.abs() > 0.01 {
                flips += 1;
            }
            prev = v;
        }
        assert!(flips >= 4, "vibration should oscillate, got {flips} flips");
    }

    #[test]
    fn classes_pairwise_distinct() {
        let style = SensorStyle {
            noise_sigma: 0.0,
            max_shift: 0.0,
            drift: 0.0,
            ..Default::default()
        };
        let imgs: Vec<Image> = (0..NUM_CLASSES)
            .map(|l| render_maneuver(&mut rng(0), l, &style))
            .collect();
        for i in 0..NUM_CLASSES {
            for j in (i + 1)..NUM_CLASSES {
                let diff: f32 = imgs[i]
                    .as_slice()
                    .iter()
                    .zip(imgs[j].as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 0.5, "classes {i} and {j} nearly identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let _ = render_maneuver(&mut rng(0), NUM_CLASSES, &SensorStyle::default());
    }
}
