//! Synthetic datasets and federated partitioning for the FUIOV stack.
//!
//! Real MNIST/GTSRB are unavailable offline, so this crate provides
//! procedurally generated substitutes (see `DESIGN.md` §2 for the
//! substitution rationale):
//!
//! - [`synth_digits`]: a 10-class digit-glyph task standing in for MNIST;
//! - [`synth_signs`]: a 12-class traffic-sign task standing in for GTSRB;
//! - [`dataset`]: the in-memory [`Dataset`] container with batching;
//! - [`partition`]: IID and Dirichlet non-IID splits across FL clients;
//! - [`image`]: the tiny rasteriser behind the generators.
//!
//! # Example
//!
//! ```
//! use fuiov_data::{Dataset, DigitStyle, partition::partition_iid};
//!
//! let ds = Dataset::digits(100, &DigitStyle::small(), 42);
//! let shards = partition_iid(ds.len(), 5, 42);
//! assert_eq!(shards.len(), 5);
//! let client0 = ds.subset(&shards[0]);
//! assert_eq!(client0.len(), 20);
//! ```

pub mod augment;
pub mod dataset;
pub mod image;
pub mod partition;
pub mod synth_digits;
pub mod synth_sensors;
pub mod synth_signs;

pub use augment::{augment_dataset, Transform};
pub use dataset::Dataset;
pub use image::Image;
pub use synth_digits::DigitStyle;
pub use synth_sensors::SensorStyle;
pub use synth_signs::SignStyle;
