//! Data augmentation transforms.
//!
//! Clients can expand their local datasets with label-preserving
//! transforms — useful both for the honest training pipeline (more
//! effective data per vehicle) and for the attack experiments (attackers
//! curating extra samples). All transforms are deterministic given an RNG
//! and operate on flat CHW feature vectors via [`crate::image::Image`]
//! semantics.

use crate::dataset::Dataset;
use fuiov_tensor::rng::{rng_for, streams};
use rand::Rng;

/// A label-preserving image transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Horizontal flip (mirror columns).
    FlipHorizontal,
    /// Rotation by a uniform angle in `[-max_radians, max_radians]`
    /// (nearest-neighbour, zero fill).
    Rotate {
        /// Maximum absolute rotation.
        max_radians: f32,
    },
    /// Circular shift by up to `max_pixels` in each axis.
    Translate {
        /// Maximum shift per axis.
        max_pixels: usize,
    },
    /// Additive Gaussian pixel noise, clamped to `[0, 1]`.
    Noise {
        /// Standard deviation.
        sigma: f32,
    },
    /// Multiply by a brightness factor in `[lo, hi]`, clamped to `[0,1]`.
    Brightness {
        /// Factor lower bound.
        lo: f32,
        /// Factor upper bound.
        hi: f32,
    },
}

impl Transform {
    /// Applies the transform to one flat CHW sample.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != c*h*w` or transform parameters are
    /// degenerate (`lo > hi`).
    pub fn apply<R: Rng>(
        &self,
        rng: &mut R,
        features: &[f32],
        shape: (usize, usize, usize),
    ) -> Vec<f32> {
        let (c, h, w) = shape;
        assert_eq!(
            features.len(),
            c * h * w,
            "Transform::apply: feature length mismatch"
        );
        match *self {
            Transform::FlipHorizontal => {
                let mut out = features.to_vec();
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w / 2 {
                            let a = (ch * h + y) * w + x;
                            let b = (ch * h + y) * w + (w - 1 - x);
                            out.swap(a, b);
                        }
                    }
                }
                out
            }
            Transform::Rotate { max_radians } => {
                let angle = rng.gen_range(-max_radians..=max_radians);
                let (sin, cos) = angle.sin_cos();
                let cy = h as f32 / 2.0;
                let cx = w as f32 / 2.0;
                let mut out = vec![0.0f32; features.len()];
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let dy = y as f32 + 0.5 - cy;
                            let dx = x as f32 + 0.5 - cx;
                            let sx = cos * dx + sin * dy + cx;
                            let sy = -sin * dx + cos * dy + cy;
                            if sx >= 0.0 && sy >= 0.0 && (sx as usize) < w && (sy as usize) < h {
                                out[(ch * h + y) * w + x] =
                                    features[(ch * h + sy as usize) * w + sx as usize];
                            }
                        }
                    }
                }
                out
            }
            Transform::Translate { max_pixels } => {
                let dy = rng.gen_range(0..=2 * max_pixels) as isize - max_pixels as isize;
                let dx = rng.gen_range(0..=2 * max_pixels) as isize - max_pixels as isize;
                let mut out = vec![0.0f32; features.len()];
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let sy = (y as isize - dy).rem_euclid(h as isize) as usize;
                            let sx = (x as isize - dx).rem_euclid(w as isize) as usize;
                            out[(ch * h + y) * w + x] = features[(ch * h + sy) * w + sx];
                        }
                    }
                }
                out
            }
            Transform::Noise { sigma } => {
                let mut out = features.to_vec();
                for v in &mut out {
                    let u1: f32 = rng.gen_range(1e-7..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    *v = (*v + sigma * z).clamp(0.0, 1.0);
                }
                out
            }
            Transform::Brightness { lo, hi } => {
                assert!(lo <= hi, "Transform::Brightness: lo > hi");
                let f = rng.gen_range(lo..=hi);
                features.iter().map(|v| (v * f).clamp(0.0, 1.0)).collect()
            }
        }
    }
}

/// Appends `per_sample` augmented copies of every sample to the dataset,
/// cycling through `transforms`. Returns the number of samples added.
///
/// # Panics
///
/// Panics if `transforms` is empty.
pub fn augment_dataset(
    data: &mut Dataset,
    transforms: &[Transform],
    per_sample: usize,
    seed: u64,
) -> usize {
    assert!(!transforms.is_empty(), "augment_dataset: no transforms");
    let shape = data.shape();
    let original_len = data.len();
    let mut rng = rng_for(seed, streams::DATA + 42);
    let mut added = 0;
    for i in 0..original_len {
        for k in 0..per_sample {
            let t = transforms[(i + k) % transforms.len()];
            let new = t.apply(&mut rng, data.features(i), shape);
            data.push_raw(new, data.label(i));
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth_digits::DigitStyle;
    use fuiov_tensor::rng::rng_for;

    fn sample() -> (Vec<f32>, (usize, usize, usize)) {
        // 1×2×4 gradient image.
        (vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7], (1, 2, 4))
    }

    #[test]
    fn flip_mirrors_columns() {
        let (f, shape) = sample();
        let mut rng = rng_for(0, 0);
        let out = Transform::FlipHorizontal.apply(&mut rng, &f, shape);
        assert_eq!(out, vec![0.3, 0.2, 0.1, 0.0, 0.7, 0.6, 0.5, 0.4]);
        // Involution.
        let back = Transform::FlipHorizontal.apply(&mut rng, &out, shape);
        assert_eq!(back, f);
    }

    #[test]
    fn translate_is_circular() {
        let (f, shape) = sample();
        let mut rng = rng_for(1, 1);
        let out = Transform::Translate { max_pixels: 1 }.apply(&mut rng, &f, shape);
        // Mass conserved under circular shift.
        let sum_in: f32 = f.iter().sum();
        let sum_out: f32 = out.iter().sum();
        assert!((sum_in - sum_out).abs() < 1e-6);
    }

    #[test]
    fn noise_keeps_unit_range() {
        let (f, shape) = sample();
        let mut rng = rng_for(2, 2);
        let out = Transform::Noise { sigma: 0.5 }.apply(&mut rng, &f, shape);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
        assert_ne!(out, f);
    }

    #[test]
    fn brightness_scales() {
        let (f, shape) = sample();
        let mut rng = rng_for(3, 3);
        let out = Transform::Brightness { lo: 0.5, hi: 0.5 }.apply(&mut rng, &f, shape);
        for (o, i) in out.iter().zip(&f) {
            assert!((o - i * 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_zero_angle_is_identity() {
        let (f, shape) = sample();
        let mut rng = rng_for(4, 4);
        let out = Transform::Rotate { max_radians: 0.0 }.apply(&mut rng, &f, shape);
        assert_eq!(out, f);
    }

    #[test]
    fn augment_dataset_grows_and_preserves_labels() {
        let mut d = Dataset::digits(20, &DigitStyle::small(), 5);
        let added = augment_dataset(
            &mut d,
            &[Transform::FlipHorizontal, Transform::Noise { sigma: 0.05 }],
            2,
            7,
        );
        assert_eq!(added, 40);
        assert_eq!(d.len(), 60);
        // Augmented copies keep the source labels (balanced → still balanced).
        assert!(d.class_counts().iter().all(|&c| c == 6));
    }

    #[test]
    fn augmentation_is_deterministic() {
        let mut a = Dataset::digits(10, &DigitStyle::small(), 5);
        let mut b = Dataset::digits(10, &DigitStyle::small(), 5);
        augment_dataset(&mut a, &[Transform::Noise { sigma: 0.1 }], 1, 9);
        augment_dataset(&mut b, &[Transform::Noise { sigma: 0.1 }], 1, 9);
        assert_eq!(a.features(15), b.features(15));
    }
}
