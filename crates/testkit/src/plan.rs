//! Seeded fault plans.
//!
//! A [`FaultPlan`] is the complete, pre-drawn list of faults one run will
//! suffer: which vehicle drops out of which round, which sign uploads are
//! corrupted, where checkpoint bytes are cut. Everything is sampled up
//! front from a single `u64` seed through the workspace's stream-seeded
//! RNG ([`fuiov_tensor::rng`]), so a failing run is reproduced exactly by
//! its seed — on any machine, at any `FUIOV_THREADS` — and the plan can be
//! printed alongside the failure.

use fuiov_storage::{ClientId, Round};
use fuiov_tensor::rng::{rng_for, streams};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// The fault taxonomy the harness injects (ISSUE 2 / DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// A polled vehicle fails to upload (mid-round connectivity loss).
    Dropout,
    /// Elements of a 2-bit sign upload arrive with flipped direction.
    SignFlip,
    /// An upload arrives one round late (the server aggregates round
    /// `r−1`'s gradient at round `r`).
    Delay,
    /// An upload is counted twice by the aggregator (re-transmission that
    /// the server fails to deduplicate).
    Duplicate,
    /// A persisted checkpoint loses its tail (partial write / disk loss).
    CheckpointTruncation,
    /// A persisted checkpoint's header is corrupted (bad magic bytes).
    CheckpointMagic,
    /// The stored direction for `(round, client)` is replaced by an older
    /// round's direction — the stale vector-pair source recovery then
    /// seeds from.
    StaleDirections,
    /// A spill-segment record loses its tail (torn append to the history
    /// store's on-disk tier).
    SegmentTruncation,
    /// A spill-segment record's bytes rot in place (its FNV trailer no
    /// longer matches).
    SegmentChecksum,
    /// A spilled keyframe carries the wrong round number — the record is
    /// internally consistent but belongs to a different round.
    StaleKeyframe,
    /// A running unlearning job is preempted (its in-memory replay state
    /// lost) at a seeded replay round and must resume from its last
    /// sealed checkpoint.
    JobPreempt,
    /// The job-checkpoint log loses its tail (`set_len` truncation mid
    /// record — a crash during a checkpoint append).
    TornJobCheckpoint,
    /// The same forget request is submitted more than once; the job
    /// service must collapse the duplicates onto one job.
    DuplicateForget,
    /// A wire frame is cut mid-byte-stream (the vehicle's connection dies
    /// partway through an upload); the server must surface a typed
    /// truncation and treat the vehicle as a dropout.
    TornFrame,
    /// A vehicle's connection drops cleanly before it uploads; it comes
    /// back through the seeded retry/backoff path.
    ConnectionDrop,
    /// A vehicle transmits the same round's upload twice; the server's
    /// first-wins inbox must deduplicate it.
    DuplicateUpload,
}

impl FaultClass {
    /// All classes, in declaration order.
    pub const ALL: [FaultClass; 16] = [
        FaultClass::Dropout,
        FaultClass::SignFlip,
        FaultClass::Delay,
        FaultClass::Duplicate,
        FaultClass::CheckpointTruncation,
        FaultClass::CheckpointMagic,
        FaultClass::StaleDirections,
        FaultClass::SegmentTruncation,
        FaultClass::SegmentChecksum,
        FaultClass::StaleKeyframe,
        FaultClass::JobPreempt,
        FaultClass::TornJobCheckpoint,
        FaultClass::DuplicateForget,
        FaultClass::TornFrame,
        FaultClass::ConnectionDrop,
        FaultClass::DuplicateUpload,
    ];
}

/// One concrete fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `client` does not answer the server's poll in `round`.
    Dropout {
        /// The affected vehicle.
        client: ClientId,
        /// The missed round.
        round: Round,
    },
    /// The listed gradient elements of `client`'s upload in `round` have
    /// their direction flipped before quantisation.
    SignFlip {
        /// The affected vehicle.
        client: ClientId,
        /// The corrupted round.
        round: Round,
        /// Parameter indices whose sign flips.
        elements: Vec<usize>,
    },
    /// `client`'s upload in `round` is the gradient it computed for the
    /// previous round it participated in.
    Delay {
        /// The affected vehicle.
        client: ClientId,
        /// The round receiving the stale upload.
        round: Round,
    },
    /// `client`'s upload in `round` is aggregated twice (its FedAvg
    /// weight doubles for that round).
    Duplicate {
        /// The affected vehicle.
        client: ClientId,
        /// The double-counted round.
        round: Round,
    },
    /// A checkpoint byte buffer keeps only a prefix. The stored value is
    /// reduced modulo the buffer length at application time
    /// ([`crate::Corruptor::truncate`]), so one plan applies to any blob.
    TruncateCheckpoint {
        /// Raw draw; effective prefix is `prefix % len`.
        prefix: usize,
    },
    /// A checkpoint's magic word is XOR-scrambled.
    CorruptCheckpointMagic,
    /// The direction stored for `(round, client)` is replaced by the one
    /// from `round − lag` (when both exist).
    StaleDirections {
        /// The affected vehicle.
        client: ClientId,
        /// The round whose record goes stale.
        round: Round,
        /// How many rounds old the replacement is.
        lag: usize,
    },
    /// The spill-segment record holding `round`'s model loses its final
    /// byte ([`crate::Corruptor::truncate_spill_record`]).
    TruncateSpillRecord {
        /// The round whose spilled record is torn.
        round: Round,
    },
    /// A byte of the spill-segment record holding `round`'s model is
    /// flipped in place ([`crate::Corruptor::corrupt_spill_checksum`]).
    CorruptSpillChecksum {
        /// The round whose spilled record rots.
        round: Round,
    },
    /// The spilled record for `round` is resealed under round
    /// `round + shift` ([`crate::Corruptor::stale_keyframe`]), so decode
    /// sees a checksum-valid record for the wrong round.
    StaleKeyframe {
        /// The round whose spilled record goes stale.
        round: Round,
        /// How far the recorded round number is shifted.
        shift: usize,
    },
    /// Every running unlearning job is preempted when its replay reaches
    /// `round` (reduced modulo the job's window at application time), and
    /// must resume from its newest sealed checkpoint.
    JobPreempt {
        /// Raw replay-round draw; reduce modulo the replay window.
        round: Round,
    },
    /// The job-checkpoint log loses its last `cut` bytes
    /// ([`crate::Corruptor::torn_job_log`] reduces modulo the file
    /// length), simulating a crash mid-append.
    TornJobCheckpoint {
        /// Raw byte-count draw; effective cut is `1 + cut % len`.
        cut: usize,
    },
    /// The same forget request is submitted `1 + times` times in total.
    DuplicateForget {
        /// Extra submissions beyond the first.
        times: usize,
    },
    /// `client`'s upload frame in `round` is cut mid-stream; the raw
    /// `cut` draw is reduced modulo the frame length at application time
    /// (mirroring [`Fault::TruncateCheckpoint`]), so one plan applies to
    /// any payload width.
    TornFrame {
        /// The affected vehicle.
        client: ClientId,
        /// The round whose upload is torn.
        round: Round,
        /// Raw byte-offset draw; effective cut is `1 + cut % (len - 1)`.
        cut: usize,
    },
    /// `client`'s connection drops cleanly before it answers `round`.
    ConnectionDrop {
        /// The affected vehicle.
        client: ClientId,
        /// The round it misses.
        round: Round,
    },
    /// `client` transmits its upload for `round` twice back-to-back.
    DuplicateUpload {
        /// The affected vehicle.
        client: ClientId,
        /// The double-sent round.
        round: Round,
    },
}

impl Fault {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            Fault::Dropout { .. } => FaultClass::Dropout,
            Fault::SignFlip { .. } => FaultClass::SignFlip,
            Fault::Delay { .. } => FaultClass::Delay,
            Fault::Duplicate { .. } => FaultClass::Duplicate,
            Fault::TruncateCheckpoint { .. } => FaultClass::CheckpointTruncation,
            Fault::CorruptCheckpointMagic => FaultClass::CheckpointMagic,
            Fault::StaleDirections { .. } => FaultClass::StaleDirections,
            Fault::TruncateSpillRecord { .. } => FaultClass::SegmentTruncation,
            Fault::CorruptSpillChecksum { .. } => FaultClass::SegmentChecksum,
            Fault::StaleKeyframe { .. } => FaultClass::StaleKeyframe,
            Fault::JobPreempt { .. } => FaultClass::JobPreempt,
            Fault::TornJobCheckpoint { .. } => FaultClass::TornJobCheckpoint,
            Fault::DuplicateForget { .. } => FaultClass::DuplicateForget,
            Fault::TornFrame { .. } => FaultClass::TornFrame,
            Fault::ConnectionDrop { .. } => FaultClass::ConnectionDrop,
            Fault::DuplicateUpload { .. } => FaultClass::DuplicateUpload,
        }
    }
}

/// Shape and density of the plan to sample.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Vehicles in the federation.
    pub clients: usize,
    /// Training rounds.
    pub rounds: usize,
    /// Model parameter dimension (bounds sign-flip element indices).
    pub dim: usize,
    /// Per-(client, round) probability of each client-side fault class.
    pub client_fault_prob: f64,
    /// Sign elements flipped per [`Fault::SignFlip`] event.
    pub flips_per_event: usize,
    /// Checkpoint truncation events to draw.
    pub truncations: usize,
    /// Maximum staleness lag (draws are `1..=max_stale_lag`).
    pub max_stale_lag: usize,
}

impl FaultSpec {
    /// A small default spec for a `clients × rounds` federation.
    ///
    /// # Panics
    ///
    /// Panics if any of `clients`, `rounds`, `dim` is zero.
    pub fn small(clients: usize, rounds: usize, dim: usize) -> Self {
        assert!(
            clients > 0 && rounds > 0 && dim > 0,
            "FaultSpec: empty federation"
        );
        FaultSpec {
            clients,
            rounds,
            dim,
            client_fault_prob: 0.08,
            flips_per_event: 3,
            truncations: 4,
            max_stale_lag: 3,
        }
    }
}

/// A fully-drawn fault plan; see the module docs.
///
/// Sampling guarantees *at least one* fault of every class in
/// [`FaultClass::ALL`], so a fault-matrix run over any seed exercises the
/// whole taxonomy; `client_fault_prob` only controls density beyond that
/// floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
    // Index: (client, round) → position in `faults`, client-side only.
    by_cell: BTreeMap<(ClientId, Round), usize>,
}

impl FaultPlan {
    /// Draws a plan from `seed`. Deterministic: equal seeds and specs give
    /// equal plans.
    pub fn sample(seed: u64, spec: &FaultSpec) -> Self {
        let mut faults: Vec<Fault> = Vec::new();
        let mut occupied: BTreeSet<(ClientId, Round)> = BTreeSet::new();

        // Pass 1: density sampling. One stream per class keeps the draw
        // for class X independent of whether class Y is enabled.
        let client_side = [
            FaultClass::Dropout,
            FaultClass::Delay,
            FaultClass::Duplicate,
            FaultClass::SignFlip,
            FaultClass::StaleDirections,
        ];
        for (k, &class) in client_side.iter().enumerate() {
            let mut rng = rng_for(seed, streams::TESTKIT + k as u64);
            for client in 0..spec.clients {
                for round in 0..spec.rounds {
                    if occupied.contains(&(client, round)) || !rng.gen_bool(spec.client_fault_prob)
                    {
                        continue;
                    }
                    occupied.insert((client, round));
                    faults.push(Self::make_client_fault(
                        class, client, round, spec, &mut rng,
                    ));
                }
            }
        }

        // Pass 2: guarantee the floor — one fault per class that pass 1
        // left empty, placed on the first free cell after a seeded start.
        let mut rng = rng_for(seed, streams::TESTKIT + 0x40);
        for &class in &client_side {
            if faults.iter().any(|f| f.class() == class) {
                continue;
            }
            let start = rng.gen_range(0..spec.clients * spec.rounds);
            let cell = (0..spec.clients * spec.rounds)
                .map(|o| {
                    let i = (start + o) % (spec.clients * spec.rounds);
                    (i / spec.rounds, i % spec.rounds)
                })
                .find(|cell| !occupied.contains(cell));
            if let Some((client, round)) = cell {
                occupied.insert((client, round));
                faults.push(Self::make_client_fault(
                    class, client, round, spec, &mut rng,
                ));
            }
        }

        // Checkpoint faults are not per-cell; always at least one of each.
        let mut rng = rng_for(seed, streams::TESTKIT + 0x41);
        for _ in 0..spec.truncations.max(1) {
            faults.push(Fault::TruncateCheckpoint {
                prefix: rng.gen_range(0..10_000usize),
            });
        }
        faults.push(Fault::CorruptCheckpointMagic);

        // Spill-segment faults (the history store's on-disk tier): also
        // global, also floored at one of each. A separate stream keeps
        // earlier draws stable across taxonomy growth.
        let mut rng = rng_for(seed, streams::TESTKIT + 0x42);
        faults.push(Fault::TruncateSpillRecord {
            round: rng.gen_range(0..spec.rounds),
        });
        faults.push(Fault::CorruptSpillChecksum {
            round: rng.gen_range(0..spec.rounds),
        });
        faults.push(Fault::StaleKeyframe {
            round: rng.gen_range(0..spec.rounds),
            shift: rng.gen_range(1..=spec.max_stale_lag.max(1)),
        });

        // Job-service faults (ISSUE 7): preemption at a seeded replay
        // round, a torn job-checkpoint log, duplicate forget submission.
        // Global and always floored at one of each, on a fresh stream so
        // every earlier draw stays stable across taxonomy growth.
        let mut rng = rng_for(seed, streams::TESTKIT + 0x43);
        faults.push(Fault::JobPreempt {
            round: rng.gen_range(0..spec.rounds),
        });
        faults.push(Fault::TornJobCheckpoint {
            cut: rng.gen_range(0..10_000usize),
        });
        faults.push(Fault::DuplicateForget {
            times: rng.gen_range(1..=3usize),
        });

        // Wire faults (the networked plane, PR 9): torn frame, clean
        // connection drop, duplicate transmission. Global, floored at one
        // of each, on their own stream so every earlier draw is stable.
        // Cells are drawn independently of the client-side grid — a wire
        // fault may land on a cell that also has e.g. a dropout, which is
        // exactly the compound failure a real lossy link produces.
        let mut rng = rng_for(seed, streams::TESTKIT + 0x44);
        faults.push(Fault::TornFrame {
            client: rng.gen_range(0..spec.clients),
            round: rng.gen_range(0..spec.rounds),
            cut: rng.gen_range(0..10_000usize),
        });
        faults.push(Fault::ConnectionDrop {
            client: rng.gen_range(0..spec.clients),
            round: rng.gen_range(0..spec.rounds),
        });
        faults.push(Fault::DuplicateUpload {
            client: rng.gen_range(0..spec.clients),
            round: rng.gen_range(0..spec.rounds),
        });

        let by_cell = faults
            .iter()
            .enumerate()
            .filter_map(|(i, f)| match f {
                Fault::Dropout { client, round }
                | Fault::SignFlip { client, round, .. }
                | Fault::Delay { client, round }
                | Fault::Duplicate { client, round }
                | Fault::StaleDirections { client, round, .. } => Some(((*client, *round), i)),
                _ => None,
            })
            .collect();

        FaultPlan {
            seed,
            faults,
            by_cell,
        }
    }

    /// Builds a plan from an explicit fault list (no sampling) — for
    /// tests that need exact fault placement. `seed` is recorded for
    /// display only.
    ///
    /// # Panics
    ///
    /// Panics if two client-side faults share a `(client, round)` cell.
    pub fn from_faults(seed: u64, faults: Vec<Fault>) -> Self {
        let mut by_cell = BTreeMap::new();
        for (i, f) in faults.iter().enumerate() {
            if let Fault::Dropout { client, round }
            | Fault::SignFlip { client, round, .. }
            | Fault::Delay { client, round }
            | Fault::Duplicate { client, round }
            | Fault::StaleDirections { client, round, .. } = f
            {
                let prev = by_cell.insert((*client, *round), i);
                assert!(
                    prev.is_none(),
                    "from_faults: cell ({client}, {round}) used twice"
                );
            }
        }
        FaultPlan {
            seed,
            faults,
            by_cell,
        }
    }

    fn make_client_fault(
        class: FaultClass,
        client: ClientId,
        round: Round,
        spec: &FaultSpec,
        rng: &mut rand::rngs::StdRng,
    ) -> Fault {
        match class {
            FaultClass::Dropout => Fault::Dropout { client, round },
            FaultClass::Delay => Fault::Delay { client, round },
            FaultClass::Duplicate => Fault::Duplicate { client, round },
            FaultClass::SignFlip => {
                let mut elements: BTreeSet<usize> = BTreeSet::new();
                while elements.len() < spec.flips_per_event.min(spec.dim) {
                    elements.insert(rng.gen_range(0..spec.dim));
                }
                Fault::SignFlip {
                    client,
                    round,
                    elements: elements.into_iter().collect(),
                }
            }
            FaultClass::StaleDirections => Fault::StaleDirections {
                client,
                round,
                lag: rng.gen_range(1..=spec.max_stale_lag.max(1)),
            },
            _ => unreachable!("make_client_fault: {class:?} is not client-side"),
        }
    }

    /// The seed the plan was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every drawn fault.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Distinct classes present in the plan.
    pub fn classes(&self) -> BTreeSet<FaultClass> {
        self.faults.iter().map(Fault::class).collect()
    }

    fn cell(&self, client: ClientId, round: Round) -> Option<&Fault> {
        self.by_cell.get(&(client, round)).map(|&i| &self.faults[i])
    }

    /// Whether `client` drops out of `round`.
    pub fn is_dropout(&self, client: ClientId, round: Round) -> bool {
        matches!(self.cell(client, round), Some(Fault::Dropout { .. }))
    }

    /// Sign-flip element indices for `(client, round)`, if any.
    pub fn sign_flips(&self, client: ClientId, round: Round) -> Option<&[usize]> {
        match self.cell(client, round) {
            Some(Fault::SignFlip { elements, .. }) => Some(elements),
            _ => None,
        }
    }

    /// Whether `client`'s upload in `round` is delayed.
    pub fn is_delayed(&self, client: ClientId, round: Round) -> bool {
        matches!(self.cell(client, round), Some(Fault::Delay { .. }))
    }

    /// Whether `client`'s upload in `round` is double-counted.
    pub fn is_duplicated(&self, client: ClientId, round: Round) -> bool {
        matches!(self.cell(client, round), Some(Fault::Duplicate { .. }))
    }

    /// All staleness faults as `(client, round, lag)`.
    pub fn stale_directions(&self) -> Vec<(ClientId, Round, usize)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::StaleDirections { client, round, lag } => Some((*client, *round, *lag)),
                _ => None,
            })
            .collect()
    }

    /// All raw truncation draws (reduce modulo blob length to apply).
    pub fn truncations(&self) -> Vec<usize> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::TruncateCheckpoint { prefix } => Some(*prefix),
                _ => None,
            })
            .collect()
    }

    /// All spill-segment faults, in plan order (apply with
    /// [`crate::Corruptor::apply_segment_faults`]).
    pub fn segment_faults(&self) -> Vec<&Fault> {
        self.faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Fault::TruncateSpillRecord { .. }
                        | Fault::CorruptSpillChecksum { .. }
                        | Fault::StaleKeyframe { .. }
                )
            })
            .collect()
    }

    /// All job-service faults (preemption, torn checkpoint log, duplicate
    /// submission), in plan order. Kept separate from
    /// [`FaultPlan::segment_faults`] so the spill-tier count every
    /// existing fault-matrix assertion pins is untouched.
    pub fn job_faults(&self) -> Vec<&Fault> {
        self.faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Fault::JobPreempt { .. }
                        | Fault::TornJobCheckpoint { .. }
                        | Fault::DuplicateForget { .. }
                )
            })
            .collect()
    }

    /// All wire faults (torn frame, connection drop, duplicate upload),
    /// in plan order. Like [`FaultPlan::job_faults`], a separate accessor
    /// so the spill-tier and job-service counts existing fault-matrix
    /// assertions pin are untouched.
    pub fn net_faults(&self) -> Vec<&Fault> {
        self.faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Fault::TornFrame { .. }
                        | Fault::ConnectionDrop { .. }
                        | Fault::DuplicateUpload { .. }
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec::small(4, 10, 50)
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = FaultPlan::sample(42, &spec());
        let b = FaultPlan::sample(42, &spec());
        assert_eq!(a, b);
        let c = FaultPlan::sample(43, &spec());
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn every_class_is_guaranteed() {
        // Even with zero density, the floor pass places one fault of each
        // class.
        let mut s = spec();
        s.client_fault_prob = 0.0;
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let plan = FaultPlan::sample(seed, &s);
            let classes = plan.classes();
            for class in FaultClass::ALL {
                assert!(classes.contains(&class), "seed {seed}: missing {class:?}");
            }
        }
    }

    #[test]
    fn one_client_side_fault_per_cell() {
        let mut s = spec();
        s.client_fault_prob = 0.5; // dense: collisions would be common
        let plan = FaultPlan::sample(9, &s);
        let mut seen = BTreeSet::new();
        for f in plan.faults() {
            if let Fault::Dropout { client, round }
            | Fault::SignFlip { client, round, .. }
            | Fault::Delay { client, round }
            | Fault::Duplicate { client, round }
            | Fault::StaleDirections { client, round, .. } = f
            {
                assert!(
                    seen.insert((*client, *round)),
                    "cell ({client},{round}) reused"
                );
            }
        }
    }

    #[test]
    fn accessors_agree_with_fault_list() {
        let plan = FaultPlan::sample(5, &spec());
        for f in plan.faults() {
            match f {
                Fault::Dropout { client, round } => {
                    assert!(plan.is_dropout(*client, *round));
                }
                Fault::SignFlip {
                    client,
                    round,
                    elements,
                } => {
                    assert_eq!(plan.sign_flips(*client, *round), Some(&elements[..]));
                    assert!(elements.iter().all(|&e| e < spec().dim));
                }
                Fault::Delay { client, round } => assert!(plan.is_delayed(*client, *round)),
                Fault::Duplicate { client, round } => {
                    assert!(plan.is_duplicated(*client, *round));
                }
                Fault::StaleDirections { client, round, lag } => {
                    assert!(plan.stale_directions().contains(&(*client, *round, *lag)));
                    assert!(*lag >= 1);
                }
                Fault::TruncateCheckpoint { prefix } => {
                    assert!(plan.truncations().contains(prefix));
                }
                Fault::CorruptCheckpointMagic => {}
                Fault::TruncateSpillRecord { round } | Fault::CorruptSpillChecksum { round } => {
                    assert!(*round < spec().rounds);
                    assert!(plan.segment_faults().contains(&f));
                }
                Fault::StaleKeyframe { round, shift } => {
                    assert!(*round < spec().rounds);
                    assert!(*shift >= 1);
                    assert!(plan.segment_faults().contains(&f));
                }
                Fault::JobPreempt { round } => {
                    assert!(*round < spec().rounds);
                    assert!(plan.job_faults().contains(&f));
                }
                Fault::TornJobCheckpoint { .. } => {
                    assert!(plan.job_faults().contains(&f));
                }
                Fault::DuplicateForget { times } => {
                    assert!(*times >= 1);
                    assert!(plan.job_faults().contains(&f));
                }
                Fault::TornFrame { client, round, .. }
                | Fault::ConnectionDrop { client, round }
                | Fault::DuplicateUpload { client, round } => {
                    assert!(*client < spec().clients && *round < spec().rounds);
                    assert!(plan.net_faults().contains(&f));
                }
            }
        }
    }

    #[test]
    fn job_faults_are_disjoint_from_segment_faults() {
        let plan = FaultPlan::sample(11, &spec());
        assert_eq!(plan.job_faults().len(), 3);
        assert_eq!(plan.segment_faults().len(), 3);
        for f in plan.job_faults() {
            assert!(!plan.segment_faults().contains(&f));
        }
    }

    #[test]
    fn net_faults_are_their_own_floored_family() {
        let plan = FaultPlan::sample(11, &spec());
        assert_eq!(plan.net_faults().len(), 3);
        for f in plan.net_faults() {
            assert!(!plan.segment_faults().contains(&f));
            assert!(!plan.job_faults().contains(&f));
        }
    }
}
