//! Differential and metamorphic oracles.
//!
//! Small, reusable checks the harness's integration tests compose:
//!
//! - **bitwise identity** — two parameter vectors agree bit for bit
//!   (serial vs parallel, before vs after a save/load round-trip,
//!   re-running an idempotent pipeline);
//! - **thread invariance** — a computation repeated under different
//!   `FUIOV_THREADS` overrides yields identical bits;
//! - **divergence bound** — the recovered model stays within a relative
//!   L2 distance of the retrained-from-scratch reference (the paper's
//!   gold standard);
//! - **round-trip identity** — checkpoint and history encodings decode to
//!   exactly what was encoded.

use fuiov_storage::serialize::{decode_history, encode_history, HistoryDecodeError};
use fuiov_storage::{checkpoint, HistoryStore};
use fuiov_tensor::{pool, vector};

/// Whether `a` and `b` are identical *bit patterns* (stricter than `==`:
/// `0.0 != -0.0`, and NaNs compare by payload).
pub fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    first_bit_mismatch(a, b).is_none()
}

/// Index of the first element whose bit pattern differs, or the shorter
/// length on a length mismatch.
pub fn first_bit_mismatch(a: &[f32], b: &[f32]) -> Option<usize> {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i].to_bits() != b[i].to_bits() {
            return Some(i);
        }
    }
    (a.len() != b.len()).then_some(n)
}

/// Relative L2 divergence `‖a − b‖ / max(‖b‖, ε)` — `b` is the reference
/// (e.g. the retrained model).
pub fn rel_l2_divergence(a: &[f32], b: &[f32]) -> f32 {
    vector::l2_distance(a, b) / vector::l2_norm(b).max(1e-12)
}

/// Runs `f` once per thread width, asserting every result is bitwise
/// identical to the first, and restores the hardware-default width before
/// returning the baseline result.
///
/// Call only while holding [`crate::thread_lock`] — the width override is
/// process-global.
///
/// # Errors
///
/// Returns a description of the first mismatch (widths and element index).
pub fn check_thread_invariant(
    widths: &[usize],
    mut f: impl FnMut() -> Vec<f32>,
) -> Result<Vec<f32>, String> {
    assert!(!widths.is_empty(), "check_thread_invariant: no widths");
    let mut baseline: Option<(usize, Vec<f32>)> = None;
    let mut failure = None;
    for &w in widths {
        pool::set_threads(w);
        let got = f();
        match &baseline {
            None => baseline = Some((w, got)),
            Some((w0, expect)) => {
                if let Some(i) = first_bit_mismatch(expect, &got) {
                    failure = Some(format!(
                        "thread-invariance violated: widths {w0} vs {w} first differ at \
                         element {i} ({:?} vs {:?})",
                        expect.get(i),
                        got.get(i)
                    ));
                    break;
                }
            }
        }
    }
    pool::set_threads(0);
    if let Some(msg) = failure {
        return Err(msg);
    }
    Ok(baseline.expect("at least one width ran").1)
}

/// Checks that a checkpoint encode→decode round-trip reproduces `params`
/// bit for bit.
///
/// # Errors
///
/// Returns the decode error or the first differing element index.
pub fn checkpoint_roundtrip_identity(params: &[f32]) -> Result<(), String> {
    let decoded = checkpoint::decode(&checkpoint::encode(params))
        .map_err(|e| format!("round-trip decode failed: {e}"))?;
    match first_bit_mismatch(params, &decoded) {
        None => Ok(()),
        Some(i) => Err(format!(
            "checkpoint round-trip altered element {i}: {:?} -> {:?}",
            params.get(i),
            decoded.get(i)
        )),
    }
}

/// Checks that a history encode→decode round-trip preserves every model,
/// direction, participation record and weight.
///
/// # Errors
///
/// Returns a description of the first discrepancy.
pub fn history_roundtrip_identity(h: &HistoryStore) -> Result<(), String> {
    let back: HistoryStore = decode_history(&encode_history(h))
        .map_err(|e: HistoryDecodeError| format!("round-trip decode failed: {e}"))?;
    if back.rounds() != h.rounds() {
        return Err(format!(
            "rounds changed: {:?} -> {:?}",
            h.rounds(),
            back.rounds()
        ));
    }
    for r in h.rounds() {
        let (a, b) = (h.model(r), back.model(r));
        let (a, b) = (a.as_deref().unwrap_or(&[]), b.as_deref().unwrap_or(&[]));
        if let Some(i) = first_bit_mismatch(a, b) {
            return Err(format!("model at round {r} altered at element {i}"));
        }
        if back.clients_in_round(r) != h.clients_in_round(r) {
            return Err(format!("participants of round {r} changed"));
        }
        for c in h.clients_in_round(r) {
            if back.direction(r, c).map(|d| d.to_signs()) != h.direction(r, c).map(|d| d.to_signs())
            {
                return Err(format!("direction ({r}, {c}) changed"));
            }
        }
    }
    if back.clients() != h.clients() {
        return Err("client set changed".into());
    }
    for c in h.clients() {
        if back.participation(c) != h.participation(c) {
            return Err(format!("participation of client {c} changed"));
        }
        if back.weight(c).to_bits() != h.weight(c).to_bits() {
            return Err(format!("weight of client {c} changed"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_eq_is_strict() {
        assert!(bitwise_eq(&[1.0, -0.0], &[1.0, -0.0]));
        assert!(!bitwise_eq(&[0.0], &[-0.0]));
        assert!(!bitwise_eq(&[1.0], &[1.0, 2.0]));
        assert_eq!(first_bit_mismatch(&[1.0, 2.0], &[1.0, 3.0]), Some(1));
        assert_eq!(first_bit_mismatch(&[1.0], &[1.0, 3.0]), Some(1));
        assert_eq!(first_bit_mismatch(&[], &[]), None);
    }

    #[test]
    fn divergence_is_relative() {
        assert_eq!(rel_l2_divergence(&[2.0], &[2.0]), 0.0);
        let d = rel_l2_divergence(&[2.2], &[2.0]);
        assert!((d - 0.1).abs() < 1e-6, "10% relative error, got {d}");
    }

    #[test]
    fn thread_invariance_holds_for_pool_work() {
        let _guard = crate::thread_lock();
        let out = check_thread_invariant(&[1, 2, 4], || {
            let items: Vec<f32> = (0..257).map(|i| i as f32 * 0.25).collect();
            pool::par_map(&items, 16, |_, &x| x.sqrt().sin())
        })
        .expect("par_map must be width-invariant");
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn thread_invariance_reports_mismatch() {
        let _guard = crate::thread_lock();
        let mut calls = 0u32;
        let r = check_thread_invariant(&[1, 2], || {
            calls += 1;
            vec![calls as f32]
        });
        let msg = r.unwrap_err();
        assert!(msg.contains("element 0"), "message locates the diff: {msg}");
    }

    #[test]
    fn checkpoint_roundtrip_covers_odd_values() {
        checkpoint_roundtrip_identity(&[]).unwrap();
        checkpoint_roundtrip_identity(&[0.0, -0.0, f32::MIN_POSITIVE, 1e30, -1e-30]).unwrap();
    }

    #[test]
    fn history_roundtrip_on_small_store() {
        let mut h = HistoryStore::new(1e-6);
        h.record_model(0, vec![0.5; 5]);
        h.record_model(1, vec![-0.5; 5]);
        h.record_join(2, 0);
        h.record_leave(2, 1);
        h.set_weight(2, 17.0);
        h.record_gradient(0, 2, &[0.1, -0.1, 0.0, 0.2, -0.2]);
        h.record_gradient(1, 2, &[-0.1, 0.1, 0.3, 0.0, 0.0]);
        history_roundtrip_identity(&h).unwrap();
    }
}
