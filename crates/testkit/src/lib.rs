//! Deterministic fault-injection and differential-oracle harness.
//!
//! The paper's value proposition is that server-side recovery (backtrack +
//! L-BFGS gradient estimation, §IV) stays faithful to retraining even
//! though no client participates. An IoV deployment stresses exactly the
//! inputs that claim depends on: vehicles drop out mid-round, 2-bit sign
//! uploads arrive corrupted or late, checkpoints truncate, vector pairs go
//! stale. This crate makes those failure modes *reproducible from one
//! `u64` seed* and checks the system against oracles, so every later
//! perf/robustness PR is regression-pinned.
//!
//! Four pieces:
//!
//! - [`plan`] — a seeded [`FaultPlan`]: which client fails how in which
//!   round, sampled deterministically via the workspace's stream-seeded
//!   RNG. Same seed, same faults, on every machine and thread count.
//! - [`faultable`] — [`FaultableClient`], a wrapper over any
//!   `fuiov_fl::Client` that executes the client-side faults (mid-round
//!   dropout via the `Client::responds_in` hook, sign flips, delayed and
//!   duplicated uploads).
//! - [`corrupt`] — the storage-corruption shim: truncate/corrupt
//!   checkpoint bytes, flip packed sign entries, stale-replace vector-pair
//!   source directions, and drop models from a [`HistoryStore`].
//! - [`golden`] + [`oracles`] — trace digests (per-round model hashes)
//!   with a JSON golden-file workflow, plus the differential and
//!   metamorphic oracles (recovered-vs-retrained bound, serial == parallel
//!   bitwise, save/load identity, never-joined no-op, idempotent re-run).
//!
//! The golden workflow and fault classes are documented in DESIGN.md §6
//! ("Verification strategy").
//!
//! [`FaultPlan`]: plan::FaultPlan
//! [`FaultableClient`]: faultable::FaultableClient
//! [`HistoryStore`]: fuiov_storage::HistoryStore

pub mod corrupt;
pub mod faultable;
pub mod golden;
pub mod oracles;
pub mod plan;
pub mod scenario;

pub use corrupt::Corruptor;
pub use faultable::FaultableClient;
pub use golden::{check_or_bless, digest_params, GoldenError, GoldenStatus, Trace};
pub use oracles::{bitwise_eq, first_bit_mismatch, rel_l2_divergence};
pub use plan::{Fault, FaultClass, FaultPlan, FaultSpec};
pub use scenario::{CanonicalRun, TrainedRun};

/// Serialises tests that toggle the global `fuiov_tensor::pool` thread
/// override. The override never changes output bytes (that is the point
/// of the determinism contract), but two tests flipping it concurrently
/// would race on *which* width they are asserting about.
pub fn thread_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
