//! Fault-injecting client wrapper.
//!
//! [`FaultableClient`] wraps any [`Client`] and executes the *client-side*
//! faults of a [`FaultPlan`]: mid-round dropout (via the
//! [`Client::responds_in`] hook the server consults before collecting
//! gradients), sign corruption of the upload, one-round-late uploads, and
//! duplicated (double-counted) uploads. Storage-side faults live in
//! [`crate::corrupt`].

use crate::plan::FaultPlan;
use fuiov_fl::Client;
use fuiov_storage::{ClientId, Round};
use std::sync::Arc;

/// Magnitude given to sign-flipped elements. Any value far above the
/// history store's δ works; 1.0 guarantees the flip survives quantisation.
const FLIP_MAGNITUDE: f32 = 1.0;

/// A [`Client`] that misbehaves according to a [`FaultPlan`].
///
/// Fault semantics:
///
/// - **Dropout** — [`Client::responds_in`] returns `false` for the planned
///   round, so the server records nothing for this vehicle that round.
/// - **SignFlip** — after computing the true gradient, each planned
///   element is replaced by `∓1.0` (opposite of its true sign), modelling
///   a corrupted 2-bit upload.
/// - **Delay** — the upload for round `r` is the gradient computed for the
///   vehicle's *previous* participation; the fresh gradient is still
///   computed (and buffered for the next delay). A delay with no prior
///   upload degrades to an on-time upload.
/// - **Duplicate** — the server double-counts the upload: the vehicle's
///   FedAvg weight doubles for that round (the wrapper reports `2 ×
///   weight` until its next `gradient` call, and the server reads the
///   weight immediately after the gradient each round).
pub struct FaultableClient {
    inner: Box<dyn Client>,
    plan: Arc<FaultPlan>,
    prev_upload: Option<Vec<f32>>,
    duplicated_now: bool,
}

impl std::fmt::Debug for FaultableClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultableClient")
            .field("id", &self.inner.id())
            .field("plan_seed", &self.plan.seed())
            .finish()
    }
}

impl FaultableClient {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Box<dyn Client>, plan: Arc<FaultPlan>) -> Self {
        FaultableClient {
            inner,
            plan,
            prev_upload: None,
            duplicated_now: false,
        }
    }

    /// Wraps every client of a federation under one shared plan.
    pub fn wrap_all(clients: Vec<Box<dyn Client>>, plan: &Arc<FaultPlan>) -> Vec<Box<dyn Client>> {
        clients
            .into_iter()
            .map(|c| Box::new(FaultableClient::new(c, Arc::clone(plan))) as Box<dyn Client>)
            .collect()
    }

    /// The plan driving this wrapper.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Client for FaultableClient {
    fn id(&self) -> ClientId {
        self.inner.id()
    }

    fn weight(&self) -> f32 {
        if self.duplicated_now {
            2.0 * self.inner.weight()
        } else {
            self.inner.weight()
        }
    }

    fn responds_in(&self, round: Round) -> bool {
        !self.plan.is_dropout(self.inner.id(), round) && self.inner.responds_in(round)
    }

    fn gradient(&mut self, params: &[f32], round: Round) -> Vec<f32> {
        let id = self.inner.id();
        let fresh = self.inner.gradient(params, round);

        let mut upload = if self.plan.is_delayed(id, round) {
            self.prev_upload.clone().unwrap_or_else(|| fresh.clone())
        } else {
            fresh.clone()
        };
        self.prev_upload = Some(fresh);

        if let Some(flips) = self.plan.sign_flips(id, round) {
            for &i in flips {
                if i < upload.len() {
                    upload[i] = if upload[i] >= 0.0 {
                        -FLIP_MAGNITUDE
                    } else {
                        FLIP_MAGNITUDE
                    };
                }
            }
        }

        self.duplicated_now = self.plan.is_duplicated(id, round);
        upload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    /// A deterministic scripted client: gradient = `[base + round; dim]`.
    struct Scripted {
        id: ClientId,
        dim: usize,
    }

    impl Client for Scripted {
        fn id(&self) -> ClientId {
            self.id
        }
        fn weight(&self) -> f32 {
            10.0
        }
        fn gradient(&mut self, _params: &[f32], round: Round) -> Vec<f32> {
            vec![1.0 + round as f32; self.dim]
        }
    }

    fn plan_with(faults: &[Fault]) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::from_faults(0, faults.to_vec()))
    }

    #[test]
    fn dropout_suppresses_response() {
        let plan = plan_with(&[Fault::Dropout {
            client: 0,
            round: 1,
        }]);
        let c = FaultableClient::new(Box::new(Scripted { id: 0, dim: 4 }), plan);
        assert!(!c.responds_in(1));
        assert!(
            c.responds_in(0),
            "other rounds unaffected (cell exclusivity)"
        );
    }

    #[test]
    fn delay_reports_previous_upload() {
        let plan = plan_with(&[Fault::Delay {
            client: 1,
            round: 2,
        }]);
        let mut c = FaultableClient::new(Box::new(Scripted { id: 1, dim: 3 }), plan);
        let g0 = c.gradient(&[], 0);
        assert_eq!(g0, vec![1.0; 3], "round 0 on time");
        let _g1 = c.gradient(&[], 1);
        let g2 = c.gradient(&[], 2);
        assert_eq!(g2, vec![2.0; 3], "round 2 uploads round 1's gradient");
        let g3 = c.gradient(&[], 3);
        assert_eq!(g3, vec![4.0; 3], "round 3 back on time");
    }

    #[test]
    fn delay_without_history_degrades_to_on_time() {
        let plan = plan_with(&[Fault::Delay {
            client: 1,
            round: 0,
        }]);
        let mut c = FaultableClient::new(Box::new(Scripted { id: 1, dim: 2 }), plan);
        assert_eq!(c.gradient(&[], 0), vec![1.0; 2]);
    }

    #[test]
    fn duplicate_doubles_weight_for_that_round_only() {
        let plan = plan_with(&[Fault::Duplicate {
            client: 0,
            round: 1,
        }]);
        let mut c = FaultableClient::new(Box::new(Scripted { id: 0, dim: 2 }), plan);
        let _ = c.gradient(&[], 0);
        assert_eq!(c.weight(), 10.0);
        let _ = c.gradient(&[], 1);
        assert_eq!(c.weight(), 20.0);
        let _ = c.gradient(&[], 2);
        assert_eq!(c.weight(), 10.0);
    }

    #[test]
    fn sign_flip_inverts_planned_elements() {
        let plan = plan_with(&[Fault::SignFlip {
            client: 0,
            round: 1,
            elements: vec![0, 2],
        }]);
        let mut c = FaultableClient::new(Box::new(Scripted { id: 0, dim: 4 }), plan);
        let g = c.gradient(&[], 1);
        assert_eq!(g, vec![-FLIP_MAGNITUDE, 2.0, -FLIP_MAGNITUDE, 2.0]);
        let g2 = c.gradient(&[], 2);
        assert_eq!(g2, vec![3.0; 4], "other rounds untouched");
    }
}
