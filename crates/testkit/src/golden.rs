//! Golden-trace regression digests.
//!
//! A [`Trace`] is an ordered list of `(label, digest)` pairs, where each
//! digest is a 64-bit FNV-1a hash over the exact bit pattern of a
//! parameter vector. Because the whole stack is bitwise deterministic
//! (serial == parallel, any `FUIOV_THREADS`), the trace of the canonical
//! run is a constant — any drift in any round of training *or* recovery
//! changes a digest and fails the comparison with a per-round diff.
//!
//! Workflow (also in DESIGN.md §6):
//!
//! 1. `cargo test -p fuiov-testkit --test golden_trace` compares against
//!    `tests/golden/*.json` at the repo root and fails on drift.
//! 2. After an *intentional* numeric change, re-bless with
//!    `FUIOV_BLESS=1 cargo test -p fuiov-testkit --test golden_trace` and
//!    commit the updated JSON alongside the change that explains it.
//!
//! The JSON is hand-rolled (the container vendors no serde); the format is
//! the fixed schema written by [`Trace::to_json`].

use std::fmt;
use std::path::Path;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over the little-endian bit patterns of `params`.
///
/// Bit-exact: `-0.0` and `+0.0` differ, every NaN payload is distinct.
pub fn digest_params(params: &[f32]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in params {
        for b in p.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Error in the golden workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenError {
    /// The golden file is missing — run once with `FUIOV_BLESS=1`.
    Missing(String),
    /// Reading or writing the golden file failed.
    Io(String),
    /// The golden file does not parse as a trace.
    Parse(String),
    /// The run's trace differs from the golden one.
    Drift(String),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Missing(p) => write!(
                f,
                "golden file {p} missing; bless it with FUIOV_BLESS=1 and commit the result"
            ),
            GoldenError::Io(e) => write!(f, "golden file I/O error: {e}"),
            GoldenError::Parse(e) => write!(f, "golden file parse error: {e}"),
            GoldenError::Drift(d) => write!(f, "golden trace drift:\n{d}"),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Outcome of [`check_or_bless`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The trace matched the stored golden file.
    Matched,
    /// `FUIOV_BLESS=1` was set: the golden file was (re)written.
    Blessed,
}

/// An ordered digest trace of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    seed: u64,
    entries: Vec<(String, u64)>,
}

impl Trace {
    /// Creates an empty trace. `name` and labels must stay within
    /// `[A-Za-z0-9_.-]` (no JSON escaping is implemented).
    ///
    /// # Panics
    ///
    /// Panics if `name` contains characters outside that set.
    pub fn new(name: &str, seed: u64) -> Self {
        assert!(label_ok(name), "Trace::new: invalid name {name:?}");
        Trace {
            name: name.to_string(),
            seed,
            entries: Vec::new(),
        }
    }

    /// Appends the digest of `params` under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` contains characters outside `[A-Za-z0-9_.-]`.
    pub fn push(&mut self, label: &str, params: &[f32]) {
        self.push_digest(label, digest_params(params));
    }

    /// Appends a precomputed digest under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` contains characters outside `[A-Za-z0-9_.-]`.
    pub fn push_digest(&mut self, label: &str, digest: u64) {
        assert!(label_ok(label), "Trace::push: invalid label {label:?}");
        self.entries.push((label.to_string(), digest));
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed the traced run used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(label, digest)` entries in order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Serialises to the golden JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"entries\": [\n");
        for (i, (label, digest)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"label\": \"{label}\", \"digest\": \"{digest:016x}\" }}{comma}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the schema written by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError::Parse`] on any structural mismatch.
    pub fn from_json(text: &str) -> Result<Trace, GoldenError> {
        let mut p = Parser { rest: text };
        p.expect("{")?;
        p.expect("\"name\"")?;
        p.expect(":")?;
        let name = p.string()?;
        p.expect(",")?;
        p.expect("\"seed\"")?;
        p.expect(":")?;
        let seed = p.number()?;
        p.expect(",")?;
        p.expect("\"entries\"")?;
        p.expect(":")?;
        p.expect("[")?;
        let mut entries = Vec::new();
        if !p.try_expect("]") {
            loop {
                p.expect("{")?;
                p.expect("\"label\"")?;
                p.expect(":")?;
                let label = p.string()?;
                p.expect(",")?;
                p.expect("\"digest\"")?;
                p.expect(":")?;
                let digest_hex = p.string()?;
                let digest = u64::from_str_radix(&digest_hex, 16)
                    .map_err(|e| GoldenError::Parse(format!("digest {digest_hex:?}: {e}")))?;
                p.expect("}")?;
                entries.push((label, digest));
                if !p.try_expect(",") {
                    break;
                }
            }
            p.expect("]")?;
        }
        p.expect("}")?;
        if !p.rest.trim().is_empty() {
            return Err(GoldenError::Parse(format!(
                "trailing content: {:?}",
                p.rest.trim()
            )));
        }
        if !label_ok(&name) || entries.iter().any(|(l, _)| !label_ok(l)) {
            return Err(GoldenError::Parse(
                "invalid name or label characters".into(),
            ));
        }
        Ok(Trace {
            name,
            seed,
            entries,
        })
    }

    /// Compares this (freshly computed) trace against the `golden` one.
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError::Drift`] listing every differing entry.
    pub fn compare(&self, golden: &Trace) -> Result<(), GoldenError> {
        let mut diffs = Vec::new();
        if self.name != golden.name {
            diffs.push(format!(
                "name: got {:?}, golden {:?}",
                self.name, golden.name
            ));
        }
        if self.seed != golden.seed {
            diffs.push(format!("seed: got {}, golden {}", self.seed, golden.seed));
        }
        let n = self.entries.len().max(golden.entries.len());
        for i in 0..n {
            match (self.entries.get(i), golden.entries.get(i)) {
                (Some((la, da)), Some((lb, db))) => {
                    if la != lb {
                        diffs.push(format!("entry {i}: label {la:?} vs golden {lb:?}"));
                    } else if da != db {
                        diffs.push(format!("entry {i} ({la}): {da:016x} vs golden {db:016x}"));
                    }
                }
                (Some((la, _)), None) => diffs.push(format!("entry {i} ({la}): extra vs golden")),
                (None, Some((lb, _))) => diffs.push(format!("entry {i} ({lb}): missing vs golden")),
                (None, None) => unreachable!(),
            }
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(GoldenError::Drift(diffs.join("\n")))
        }
    }
}

fn label_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn try_expect(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(token) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), GoldenError> {
        if self.try_expect(token) {
            Ok(())
        } else {
            let at: String = self.rest.chars().take(24).collect();
            Err(GoldenError::Parse(format!("expected {token:?} at {at:?}")))
        }
    }

    fn string(&mut self) -> Result<String, GoldenError> {
        self.expect("\"")?;
        let Some(end) = self.rest.find('"') else {
            return Err(GoldenError::Parse("unterminated string".into()));
        };
        let s = self.rest[..end].to_string();
        self.rest = &self.rest[end + 1..];
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, GoldenError> {
        self.skip_ws();
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return Err(GoldenError::Parse("expected a number".into()));
        }
        self.rest = &self.rest[digits.len()..];
        digits
            .parse()
            .map_err(|e| GoldenError::Parse(format!("number {digits:?}: {e}")))
    }
}

/// Compares `trace` against the golden file at `path`, or (re)writes the
/// file when the `FUIOV_BLESS` environment variable is `1`.
///
/// # Errors
///
/// [`GoldenError::Missing`] when no golden exists (and blessing is off),
/// [`GoldenError::Drift`] on digest mismatch, [`GoldenError::Io`] /
/// [`GoldenError::Parse`] on file trouble.
pub fn check_or_bless(trace: &Trace, path: &Path) -> Result<GoldenStatus, GoldenError> {
    if std::env::var("FUIOV_BLESS").as_deref() == Ok("1") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| GoldenError::Io(e.to_string()))?;
        }
        std::fs::write(path, trace.to_json()).map_err(|e| GoldenError::Io(e.to_string()))?;
        return Ok(GoldenStatus::Blessed);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(GoldenError::Missing(path.display().to_string()));
        }
        Err(e) => return Err(GoldenError::Io(e.to_string())),
    };
    let golden = Trace::from_json(&text)?;
    trace.compare(&golden)?;
    Ok(GoldenStatus::Matched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_bit_exact() {
        assert_eq!(digest_params(&[1.0, 2.0]), digest_params(&[1.0, 2.0]));
        assert_ne!(digest_params(&[1.0, 2.0]), digest_params(&[2.0, 1.0]));
        assert_ne!(
            digest_params(&[0.0]),
            digest_params(&[-0.0]),
            "signed zero differs"
        );
        assert_ne!(digest_params(&[]), digest_params(&[0.0]));
        // Reference FNV-1a: empty input is the offset basis.
        assert_eq!(digest_params(&[]), FNV_OFFSET);
    }

    fn sample() -> Trace {
        let mut t = Trace::new("canonical-v1", 7);
        t.push("init", &[0.5, -0.5]);
        t.push("train_round_0", &[0.25, -0.75]);
        t.push_digest("recover_final", 0xDEAD_BEEF_0123_4567);
        t
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let t = sample();
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.name(), "canonical-v1");
        assert_eq!(back.seed(), 7);
        assert_eq!(back.entries().len(), 3);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", 0);
        assert_eq!(Trace::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn compare_reports_each_drift() {
        let a = sample();
        let mut b = sample();
        b.entries[1].1 ^= 1;
        let err = a.compare(&b).unwrap_err();
        let GoldenError::Drift(msg) = &err else {
            panic!("expected drift, got {err:?}")
        };
        assert!(msg.contains("train_round_0"), "diff names the entry: {msg}");
        assert!(a.compare(&a).is_ok());
    }

    #[test]
    fn compare_detects_length_mismatch() {
        let a = sample();
        let mut b = sample();
        b.push_digest("extra", 1);
        assert!(matches!(a.compare(&b), Err(GoldenError::Drift(_))));
        assert!(matches!(b.compare(&a), Err(GoldenError::Drift(_))));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        for bad in [
            "",
            "{",
            "{\"name\": \"x\"}",
            "{\"name\": \"x\", \"seed\": 1, \"entries\": [}",
            "{\"name\": \"x\", \"seed\": 1, \"entries\": []} trailing",
            "{\"name\": \"x\", \"seed\": 1, \"entries\": [{\"label\": \"a\", \"digest\": \"zz\"}]}",
        ] {
            assert!(
                matches!(Trace::from_json(bad), Err(GoldenError::Parse(_))),
                "should not parse: {bad:?}"
            );
        }
    }

    #[test]
    fn invalid_labels_are_rejected() {
        let mut t = Trace::new("ok", 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push("has space", &[1.0]);
        }));
        assert!(r.is_err());
    }
}
