//! The canonical MNIST-analogue federation the golden traces pin.
//!
//! One fixed, fully-seeded configuration — small synthetic-digit MLP,
//! three vehicles, six rounds, vehicle 2 joining late at round 2 (so
//! unlearning it exercises a non-trivial backtrack) — used by the
//! golden-trace regression test, the oracle suite and the fault matrix.
//! Everything derives from [`CanonicalRun::seed`]; two runs with the same
//! seed are bitwise identical at any thread count.

use crate::golden::Trace;
use crate::plan::FaultPlan;
use crate::{Corruptor, FaultableClient};
use fuiov_core::{recover, NoOracle, RecoveryConfig, RecoveryOutcome, UnlearnError};
use fuiov_data::{Dataset, DigitStyle};
use fuiov_fl::mobility::{ChurnSchedule, Membership};
use fuiov_fl::{Client, FlConfig, HonestClient, Server};
use fuiov_nn::ModelSpec;
use fuiov_storage::{ClientId, HistoryStore, Round};
use std::sync::Arc;

/// The canonical federation (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct CanonicalRun {
    /// Master seed for data, init and client shuffling.
    pub seed: u64,
    /// Number of vehicles.
    pub clients: usize,
    /// Federated rounds `T`.
    pub rounds: usize,
    /// The vehicle the scenario unlearns.
    pub forgotten: ClientId,
    /// Round the forgotten vehicle joins at (its backtrack point `F`).
    pub forgotten_joins: Round,
}

/// Result of training the canonical federation.
pub struct TrainedRun {
    /// Final global parameters `w_T`.
    pub params: Vec<f32>,
    /// The recorded history (spans rounds `0..=T`).
    pub history: HistoryStore,
    /// Parameters observed by the per-round callback, in round order.
    pub round_params: Vec<(Round, Vec<f32>)>,
}

impl CanonicalRun {
    /// The standard scenario: 3 vehicles, 6 rounds, vehicle 2 joins at
    /// round 2 and is the unlearning target.
    pub fn standard() -> Self {
        CanonicalRun {
            seed: 7,
            clients: 3,
            rounds: 6,
            forgotten: 2,
            forgotten_joins: 2,
        }
    }

    /// The MNIST-analogue model (12×12 synthetic digits, one hidden
    /// layer).
    pub fn model_spec(&self) -> ModelSpec {
        ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        }
    }

    /// Initial global parameters (seeded init, shared by every variant of
    /// the run so differential comparisons start from the same point).
    pub fn initial_params(&self) -> Vec<f32> {
        self.model_spec().build(self.seed).params()
    }

    /// Fresh clients over an IID partition of the synthetic digit set.
    pub fn make_clients(&self) -> Vec<Box<dyn Client>> {
        let spec = self.model_spec();
        let data = Dataset::digits(20 * self.clients, &DigitStyle::small(), self.seed);
        let parts = fuiov_data::partition::partition_iid(data.len(), self.clients, self.seed);
        parts
            .into_iter()
            .enumerate()
            .map(|(id, idx)| {
                Box::new(HonestClient::new(
                    id,
                    spec,
                    data.subset(&idx),
                    10,
                    self.seed,
                )) as Box<dyn Client>
            })
            .collect()
    }

    /// The membership schedule: everyone always in range except the
    /// forgotten vehicle, which joins late.
    pub fn schedule(&self) -> ChurnSchedule {
        let mut s = ChurnSchedule::static_membership(self.clients, self.rounds);
        s.set_membership(
            self.forgotten,
            Membership {
                joined: self.forgotten_joins,
                leaves_after: None,
                dropouts: vec![],
            },
        );
        s
    }

    /// Training configuration (parallel client fan-out on, so the run
    /// exercises the determinism contract end to end).
    pub fn fl_config(&self) -> FlConfig {
        FlConfig::new(self.rounds, 0.3).batch_size(10)
    }

    /// Recovery configuration with the learning rate calibrated from the
    /// stored history: replayed ±1 directions have different magnitudes
    /// than true gradients, and [`fuiov_core::calibrate_lr`] measures the
    /// ratio from data the server already has. Falls back to the training
    /// rate on a degenerate history.
    pub fn recovery_config(&self, history: &HistoryStore) -> RecoveryConfig {
        RecoveryConfig::new(fuiov_core::calibrate_lr(history).unwrap_or(0.3))
    }

    /// Trains the federation, recording per-round parameters.
    pub fn train(&self) -> TrainedRun {
        self.train_clients(self.make_clients())
    }

    /// Trains with the client thread pool disabled — the reference serial
    /// path the parallel fan-out must match bitwise.
    pub fn train_serial(&self) -> TrainedRun {
        self.train_clients_with(
            self.fl_config().parallel_clients(false),
            self.make_clients(),
        )
    }

    /// Trains with the provided clients (e.g. fault-wrapped ones).
    pub fn train_clients(&self, clients: Vec<Box<dyn Client>>) -> TrainedRun {
        self.train_clients_with(self.fl_config(), clients)
    }

    /// Trains with an explicit configuration and client set.
    pub fn train_clients_with(
        &self,
        cfg: FlConfig,
        mut clients: Vec<Box<dyn Client>>,
    ) -> TrainedRun {
        let mut server = Server::new(cfg, self.initial_params());
        let mut round_params = Vec::with_capacity(self.rounds);
        server.train_with(&mut clients, &self.schedule(), |t, params| {
            round_params.push((t, params.to_vec()));
        });
        let (params, history, _) = server.into_parts();
        TrainedRun {
            params,
            history,
            round_params,
        }
    }

    /// Trains under a fault plan: clients wrapped in [`FaultableClient`],
    /// then the plan's staleness faults applied to the recorded history.
    pub fn train_faulted(&self, plan: &Arc<FaultPlan>) -> TrainedRun {
        let clients = FaultableClient::wrap_all(self.make_clients(), plan);
        let mut run = self.train_clients(clients);
        Corruptor::apply_stale_faults(&mut run.history, plan);
        run
    }

    /// Unlearns the scenario's forgotten vehicle from `history` (paper
    /// pipeline, no oracle), tracing each replayed round into `on_round`.
    ///
    /// # Errors
    ///
    /// Propagates any [`UnlearnError`] from the pipeline.
    pub fn recover_forgotten(
        &self,
        history: &HistoryStore,
        on_round: impl FnMut(Round, &[f32]),
    ) -> Result<RecoveryOutcome, UnlearnError> {
        recover(
            history,
            self.forgotten,
            &self.recovery_config(history),
            &mut NoOracle,
            on_round,
        )
    }

    /// The full golden trace: initial params, every training round, the
    /// final model, every recovery round, the recovered model.
    pub fn trace(&self) -> Trace {
        let mut t = Trace::new("canonical-v1", self.seed);
        t.push("init", &self.initial_params());
        let run = self.train();
        for (round, params) in &run.round_params {
            t.push(&format!("train_round_{round}"), params);
        }
        t.push("train_final", &run.params);
        let outcome = self
            .recover_forgotten(&run.history, |round, params| {
                t.push(&format!("recover_round_{round}"), params);
            })
            .expect("canonical recovery must succeed");
        t.push("recover_final", &outcome.params);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::bitwise_eq;

    #[test]
    fn training_is_reproducible() {
        let run_a = CanonicalRun::standard().train();
        let run_b = CanonicalRun::standard().train();
        assert!(bitwise_eq(&run_a.params, &run_b.params));
        assert_eq!(run_a.round_params.len(), 6);
    }

    #[test]
    fn forgotten_vehicle_joins_late() {
        let run = CanonicalRun::standard().train();
        assert_eq!(run.history.join_round(2), Some(2));
        assert_eq!(run.history.clients_in_round(0), vec![0, 1]);
        assert_eq!(run.history.clients_in_round(2), vec![0, 1, 2]);
        // History spans 0..=T.
        assert_eq!(run.history.rounds().len(), 7);
    }

    #[test]
    fn recovery_replays_the_forgetting_window() {
        let scenario = CanonicalRun::standard();
        let run = scenario.train();
        let mut replayed = Vec::new();
        let out = scenario
            .recover_forgotten(&run.history, |t, _| replayed.push(t))
            .unwrap();
        assert_eq!(out.start_round, 2);
        assert_eq!(out.end_round, 6);
        assert_eq!(out.rounds_replayed, 4);
        assert_eq!(replayed.len(), 4);
        assert!(out.params.iter().all(|v| v.is_finite()));
    }
}
