//! Storage-side corruption shim.
//!
//! [`Corruptor`] mutates the *persisted* artefacts of a run — checkpoint
//! byte blobs ([`fuiov_storage::checkpoint`]), serialised histories
//! ([`fuiov_storage::serialize`]) and live [`HistoryStore`]s — the way an
//! RSU's flaky disk or interrupted write would. Every operation is a pure
//! function of its inputs, so a seeded [`FaultPlan`] fully determines the
//! corruption a run suffers.
//!
//! [`FaultPlan`]: crate::plan::FaultPlan

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};

use fuiov_storage::direction::GradientDirection;
use fuiov_storage::{segment, ClientId, HistoryStore, Round};

/// Namespace for the corruption operations (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Corruptor;

impl Corruptor {
    /// Keeps only a strict prefix of `bytes`. The raw draw from a fault
    /// plan is reduced modulo the blob length, so one plan applies to any
    /// blob; an empty input stays empty.
    pub fn truncate(bytes: &[u8], raw_prefix: usize) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        bytes[..raw_prefix % bytes.len()].to_vec()
    }

    /// Scrambles the 4-byte little-endian magic word at the front of a
    /// checkpoint or history blob. XOR with a non-zero constant guarantees
    /// the result differs from any valid magic.
    pub fn scramble_magic(bytes: &mut [u8]) {
        for b in bytes.iter_mut().take(4) {
            *b ^= 0x5A;
        }
    }

    /// Overwrites the version field (bytes 4..6, little-endian) with an
    /// unsupported version number.
    pub fn bump_version(bytes: &mut [u8]) {
        if bytes.len() >= 6 {
            bytes[4] = 0xFF;
            bytes[5] = 0xFF;
        }
    }

    /// XOR-flips every bit of one byte (index reduced modulo length).
    pub fn flip_byte(bytes: &mut [u8], raw_index: usize) {
        if bytes.is_empty() {
            return;
        }
        let i = raw_index % bytes.len();
        bytes[i] ^= 0xFF;
    }

    /// Flips the stored sign of the listed `elements` of the direction
    /// recorded for `(round, client)`: `+1 ↔ −1`, and `0 → +1` (a 2-bit
    /// cell changing `00 → 01`). Returns `false` if no direction is
    /// recorded there.
    pub fn flip_signs(
        history: &mut HistoryStore,
        round: Round,
        client: ClientId,
        elements: &[usize],
    ) -> bool {
        let Some(dir) = history.direction(round, client) else {
            return false;
        };
        let mut signs = dir.to_signs();
        for &i in elements {
            if let Some(s) = signs.get_mut(i) {
                *s = match *s {
                    1 => -1,
                    -1 => 1,
                    _ => 1,
                };
            }
        }
        history.record_direction(round, client, GradientDirection::from_signs(&signs));
        true
    }

    /// Replaces the direction stored for `(round, client)` with the one
    /// from `round − lag` — the stale vector-pair source the recovery
    /// stage then seeds from. Returns `false` when either record is
    /// missing (the fault is a no-op on that history).
    pub fn stale_replace(
        history: &mut HistoryStore,
        round: Round,
        client: ClientId,
        lag: usize,
    ) -> bool {
        let Some(older_round) = round.checked_sub(lag) else {
            return false;
        };
        if history.direction(round, client).is_none() {
            return false;
        }
        let Some(older) = history.direction(older_round, client).map(|d| (*d).clone()) else {
            return false;
        };
        history.record_direction(round, client, older);
        true
    }

    /// Drops the model checkpoint recorded for `round`.
    pub fn drop_model(history: &mut HistoryStore, round: Round) -> bool {
        history.remove_model(round).is_some()
    }

    /// Drops the direction recorded for `(round, client)`.
    pub fn drop_direction(history: &mut HistoryStore, round: Round, client: ClientId) -> bool {
        history.remove_direction(round, client).is_some()
    }

    /// Applies every staleness fault of `plan` to `history`, returning how
    /// many actually landed (faults pointing at unrecorded cells are
    /// no-ops).
    pub fn apply_stale_faults(history: &mut HistoryStore, plan: &crate::plan::FaultPlan) -> usize {
        plan.stale_directions()
            .into_iter()
            .filter(|&(client, round, lag)| Self::stale_replace(history, round, client, lag))
            .count()
    }

    /// Ensures `round`'s model lives in the on-disk tier, returning its
    /// `(offset, len)` extent in the spill file. Spills the whole store if
    /// the record is still hot; `None` when no model is recorded at all.
    fn spilled_extent(history: &mut HistoryStore, round: Round) -> Option<(u64, u32)> {
        if history.spilled_model_extent(round).is_none() {
            history.model(round)?;
            history.force_spill_all();
        }
        history.spilled_model_extent(round)
    }

    /// Tears the tail off the spill-segment record holding `round`'s
    /// model, the way a crash mid-append would: the file is cut one byte
    /// short of the record's end, which also destroys any records written
    /// after it. Decoding the round afterwards yields
    /// [`segment::SegmentDecodeError::Truncated`]. Returns `false` when no
    /// model is recorded for `round`.
    pub fn truncate_spill_record(history: &mut HistoryStore, round: Round) -> bool {
        let Some((offset, len)) = Self::spilled_extent(history, round) else {
            return false;
        };
        let Ok(file) = OpenOptions::new().write(true).open(history.spill_path()) else {
            return false;
        };
        if file.set_len(offset + u64::from(len) - 1).is_err() {
            return false;
        }
        history.invalidate_caches();
        true
    }

    /// Flips the final byte (part of the FNV trailer) of the spill-segment
    /// record holding `round`'s model. The frame stays intact, so decoding
    /// yields [`segment::SegmentDecodeError::BadChecksum`] — even for an
    /// empty payload. Returns `false` when no model is recorded for
    /// `round`.
    pub fn corrupt_spill_checksum(history: &mut HistoryStore, round: Round) -> bool {
        let Some((offset, len)) = Self::spilled_extent(history, round) else {
            return false;
        };
        let Ok(mut file) = OpenOptions::new()
            .read(true)
            .write(true)
            .open(history.spill_path())
        else {
            return false;
        };
        let pos = offset + u64::from(len) - 1;
        let mut byte = [0u8; 1];
        if file.seek(SeekFrom::Start(pos)).is_err() || file.read_exact(&mut byte).is_err() {
            return false;
        }
        byte[0] ^= 0xFF;
        if file.seek(SeekFrom::Start(pos)).is_err() || file.write_all(&byte).is_err() {
            return false;
        }
        history.invalidate_caches();
        true
    }

    /// Rewrites the round field of `round`'s spilled record to
    /// `round + shift` and reseals the FNV trailer, producing a
    /// checksum-valid record that belongs to the wrong round — the stale
    /// keyframe an RSU would serve after replaying an old write. Decoding
    /// yields [`segment::SegmentDecodeError::RoundMismatch`]. Returns
    /// `false` when no model is recorded for `round`.
    pub fn stale_keyframe(history: &mut HistoryStore, round: Round, shift: usize) -> bool {
        let Some((offset, len)) = Self::spilled_extent(history, round) else {
            return false;
        };
        let Ok(mut file) = OpenOptions::new()
            .read(true)
            .write(true)
            .open(history.spill_path())
        else {
            return false;
        };
        let mut record = vec![0u8; len as usize];
        if file.seek(SeekFrom::Start(offset)).is_err() || file.read_exact(&mut record).is_err() {
            return false;
        }
        let wrong = (round + shift.max(1)) as u64;
        record[segment::ROUND_FIELD_OFFSET..segment::ROUND_FIELD_OFFSET + 8]
            .copy_from_slice(&wrong.to_le_bytes());
        segment::reseal(&mut record);
        if file.seek(SeekFrom::Start(offset)).is_err() || file.write_all(&record).is_err() {
            return false;
        }
        history.invalidate_caches();
        true
    }

    /// Applies every spill-segment fault of `plan` to `history`, returning
    /// how many landed. Checksum and stale-keyframe faults go first;
    /// truncations last, because tearing the file also destroys every
    /// record appended after the torn one.
    pub fn apply_segment_faults(
        history: &mut HistoryStore,
        plan: &crate::plan::FaultPlan,
    ) -> usize {
        use crate::plan::Fault;
        let faults: Vec<Fault> = plan.segment_faults().into_iter().cloned().collect();
        let mut landed = 0;
        for f in &faults {
            landed += match f {
                Fault::CorruptSpillChecksum { round } => {
                    usize::from(Self::corrupt_spill_checksum(history, *round))
                }
                Fault::StaleKeyframe { round, shift } => {
                    usize::from(Self::stale_keyframe(history, *round, *shift))
                }
                _ => 0,
            };
        }
        for f in &faults {
            if let Fault::TruncateSpillRecord { round } = f {
                landed += usize::from(Self::truncate_spill_record(history, *round));
            }
        }
        landed
    }

    /// Tears the tail off a job-checkpoint log on disk: `set_len` to drop
    /// the last `1 + raw_cut % len` bytes, the way a crash mid-append
    /// leaves a torn record behind ([`Fault::TornJobCheckpoint`]). Returns
    /// `false` (no-op) when the file is missing or empty.
    ///
    /// [`Fault::TornJobCheckpoint`]: crate::plan::Fault::TornJobCheckpoint
    pub fn torn_job_log(path: &std::path::Path, raw_cut: usize) -> bool {
        let Ok(meta) = std::fs::metadata(path) else {
            return false;
        };
        let len = meta.len();
        if len == 0 {
            return false;
        }
        let cut = 1 + (raw_cut as u64) % len;
        let Ok(file) = OpenOptions::new().write(true).open(path) else {
            return false;
        };
        file.set_len(len - cut).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_storage::checkpoint;

    #[test]
    fn truncate_reduces_modulo_length() {
        let blob = checkpoint::encode(&[1.0, 2.0]);
        let t = Corruptor::truncate(&blob, blob.len() + 3);
        assert_eq!(t.len(), 3);
        assert!(Corruptor::truncate(&[], 7).is_empty());
    }

    #[test]
    fn scrambled_magic_is_rejected() {
        let mut blob = checkpoint::encode(&[1.0]).to_vec();
        Corruptor::scramble_magic(&mut blob);
        assert!(matches!(
            checkpoint::decode(&blob),
            Err(checkpoint::DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn bumped_version_is_rejected() {
        let mut blob = checkpoint::encode(&[1.0]).to_vec();
        Corruptor::bump_version(&mut blob);
        assert!(matches!(
            checkpoint::decode(&blob),
            Err(checkpoint::DecodeError::BadVersion(0xFFFF))
        ));
    }

    #[test]
    fn flip_byte_changes_exactly_one_byte() {
        let blob = checkpoint::encode(&[3.5, -1.0]);
        let mut mutated = blob.to_vec();
        Corruptor::flip_byte(&mut mutated, blob.len() + 1);
        let diff: Vec<usize> = (0..blob.len()).filter(|&i| blob[i] != mutated[i]).collect();
        assert_eq!(diff, vec![1]);
    }

    fn tiny_history() -> HistoryStore {
        let mut h = HistoryStore::new(1e-6);
        h.record_model(0, vec![0.0; 4]);
        h.record_model(1, vec![0.1; 4]);
        h.record_join(3, 0);
        h.record_gradient(0, 3, &[0.5, -0.5, 0.0, 0.1]);
        h.record_gradient(1, 3, &[-0.5, 0.5, 0.2, -0.1]);
        h
    }

    #[test]
    fn flip_signs_inverts_selected_elements() {
        let mut h = tiny_history();
        assert!(Corruptor::flip_signs(&mut h, 0, 3, &[0, 2, 99]));
        assert_eq!(h.direction(0, 3).unwrap().to_signs(), vec![-1, -1, 1, 1]);
        assert!(
            !Corruptor::flip_signs(&mut h, 5, 3, &[0]),
            "missing cell is a no-op"
        );
    }

    #[test]
    fn stale_replace_copies_older_direction() {
        let mut h = tiny_history();
        let older = (*h.direction(0, 3).unwrap()).clone();
        assert!(Corruptor::stale_replace(&mut h, 1, 3, 1));
        assert_eq!(h.direction(1, 3).as_deref(), Some(&older));
        // Underflow, missing target, missing source: all no-ops.
        assert!(!Corruptor::stale_replace(&mut h, 0, 3, 1));
        assert!(!Corruptor::stale_replace(&mut h, 7, 3, 1));
    }

    #[test]
    fn segment_faults_yield_typed_errors_never_panics() {
        use fuiov_storage::segment::SegmentDecodeError;

        // Truncation: the torn record reads back as Truncated.
        let mut h = tiny_history();
        assert!(Corruptor::truncate_spill_record(&mut h, 1));
        assert!(matches!(
            h.try_model(1),
            Err(SegmentDecodeError::Truncated | SegmentDecodeError::Io(_))
        ));
        assert!(h.model(1).is_none(), "lenient accessor degrades to None");
        assert!(
            !Corruptor::truncate_spill_record(&mut h, 9),
            "missing round is a no-op"
        );

        // Checksum rot: frame intact, trailer wrong.
        let mut h = tiny_history();
        assert!(Corruptor::corrupt_spill_checksum(&mut h, 0));
        assert!(matches!(
            h.try_model(0),
            Err(SegmentDecodeError::BadChecksum { .. })
        ));
        assert!(h.model(0).is_none());

        // Stale keyframe: checksum-valid record for the wrong round.
        let mut h = tiny_history();
        assert!(Corruptor::stale_keyframe(&mut h, 0, 3));
        assert!(matches!(
            h.try_model(0),
            Err(SegmentDecodeError::RoundMismatch {
                expected: 0,
                found: 3
            })
        ));
        assert!(h.model(0).is_none());
        assert!(h.tier_stats().decode_errors > 0, "errors are counted");
    }

    #[test]
    fn apply_segment_faults_orders_truncation_last() {
        use crate::plan::{Fault, FaultPlan};
        let mut h = tiny_history();
        // Round 0's record precedes round 1's in the spill file; if the
        // truncation at round 0 ran first it would also destroy round 1's
        // record and the checksum fault could not land.
        let plan = FaultPlan::from_faults(
            7,
            vec![
                Fault::TruncateSpillRecord { round: 0 },
                Fault::CorruptSpillChecksum { round: 1 },
            ],
        );
        assert_eq!(Corruptor::apply_segment_faults(&mut h, &plan), 2);
        assert!(h.model(0).is_none());
        assert!(h.model(1).is_none());
    }

    #[test]
    fn drop_operations_remove_records() {
        let mut h = tiny_history();
        assert!(Corruptor::drop_model(&mut h, 1));
        assert!(h.model(1).is_none());
        assert!(!Corruptor::drop_model(&mut h, 1));
        assert!(Corruptor::drop_direction(&mut h, 0, 3));
        assert!(h.direction(0, 3).is_none());
        assert!(!Corruptor::drop_direction(&mut h, 0, 3));
    }
}
