//! Obs counters as a second-channel oracle for the fault matrix: an
//! injected fault must leave a machine-readable fingerprint in the metric
//! registry, not just a typed error on the direct call path. A fault class
//! whose counter stays flat is a fault the operator cannot see in a run
//! report.

use fuiov_obs::Snapshot;
use fuiov_testkit::{CanonicalRun, Corruptor, FaultPlan, FaultSpec};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    match std::env::var("FUIOV_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("FUIOV_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 29],
    }
}

fn plan_for(scenario: &CanonicalRun, seed: u64) -> Arc<FaultPlan> {
    let dim = scenario.initial_params().len();
    let spec = FaultSpec::small(scenario.clients, scenario.rounds, dim);
    Arc::new(FaultPlan::sample(seed, &spec))
}

#[test]
fn trailer_flip_fingerprints_the_checksum_counter() {
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let scenario = CanonicalRun::standard();
    let mut run = scenario.train();
    // Flip the FNV trailer of the first spilled model record.
    let flipped = run
        .history
        .rounds()
        .into_iter()
        .find(|&t| Corruptor::corrupt_spill_checksum(&mut run.history, t));
    let flipped = flipped.expect("canonical run must spill at least one model record");
    let before = Snapshot::capture();
    assert!(
        run.history.try_model(flipped).is_err(),
        "flipped trailer must fail decode"
    );
    // The lenient read path is the one that counts decode errors.
    assert!(run.history.model(flipped).is_none());
    let delta = Snapshot::capture().delta(&before);
    assert!(
        delta.counter("storage.segment_checksum_failures") > 0,
        "a trailer flip must fingerprint storage.segment_checksum_failures"
    );
    assert!(
        delta.counter("storage.decode_errors") > 0,
        "the decode-error counter must also move"
    );
}

#[test]
fn fault_matrix_runs_leave_counter_fingerprints() {
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let scenario = CanonicalRun::standard();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        let before = Snapshot::capture();
        let mut run = scenario.train_faulted(&plan);
        let delta = Snapshot::capture().delta(&before);
        // Training under any plan drives the fl round/byte counters.
        assert!(
            delta.counter("fl.rounds") >= scenario.rounds as u64,
            "seed {seed}: every training round must be counted"
        );
        assert!(
            delta.counter("fl.upload_bytes_sign") > 0,
            "seed {seed}: comms accounting flat"
        );
        // Scheduled dropouts that the plan injects show up as fl.dropouts
        // (a dropout for a vehicle that is not in range never gets polled,
        // so only scheduled ones can leave a fingerprint).
        let scheduled = |client: usize, round: usize| {
            client != scenario.forgotten || round >= scenario.forgotten_joins
        };
        let injected_dropouts = plan
            .faults()
            .iter()
            .filter(|f| match **f {
                fuiov_testkit::Fault::Dropout { client, round } => scheduled(client, round),
                _ => false,
            })
            .count();
        if injected_dropouts > 0 {
            assert!(
                delta.counter("fl.dropouts") > 0,
                "seed {seed}: {injected_dropouts} dropouts injected but counter flat"
            );
        }
        // Segment faults that land must fingerprint the storage counters
        // once the damaged rounds are read back.
        let before = Snapshot::capture();
        let landed = Corruptor::apply_segment_faults(&mut run.history, &plan);
        for t in run.history.rounds() {
            let _ = run.history.model(t);
        }
        let delta = Snapshot::capture().delta(&before);
        if landed > 0 {
            assert!(
                delta.counter("storage.decode_errors") > 0,
                "seed {seed}: {landed} segment faults landed but storage.decode_errors is flat"
            );
        }
        // Recovery (typed error or success) drives the core counters.
        let before = Snapshot::capture();
        if scenario.recover_forgotten(&run.history, |_, _| {}).is_ok() {
            let delta = Snapshot::capture().delta(&before);
            assert!(
                delta.counter("core.replay_rounds") > 0,
                "seed {seed}: successful recovery must count replay rounds"
            );
        }
    }
}
