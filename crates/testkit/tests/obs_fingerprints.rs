//! Obs counters as a second-channel oracle for the fault matrix: an
//! injected fault must leave a machine-readable fingerprint in the metric
//! registry, not just a typed error on the direct call path. A fault class
//! whose counter stays flat is a fault the operator cannot see in a run
//! report.

use fuiov_core::jobs::{JobConfig, JobService};
use fuiov_core::{NoOracle, RecoveryConfig};
use fuiov_obs::Snapshot;
use fuiov_storage::HistoryStore;
use fuiov_testkit::{CanonicalRun, Corruptor, FaultPlan, FaultSpec};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    match std::env::var("FUIOV_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("FUIOV_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 29],
    }
}

fn plan_for(scenario: &CanonicalRun, seed: u64) -> Arc<FaultPlan> {
    let dim = scenario.initial_params().len();
    let spec = FaultSpec::small(scenario.clients, scenario.rounds, dim);
    Arc::new(FaultPlan::sample(seed, &spec))
}

#[test]
fn trailer_flip_fingerprints_the_checksum_counter() {
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let scenario = CanonicalRun::standard();
    let mut run = scenario.train();
    // Flip the FNV trailer of the first spilled model record.
    let flipped = run
        .history
        .rounds()
        .into_iter()
        .find(|&t| Corruptor::corrupt_spill_checksum(&mut run.history, t));
    let flipped = flipped.expect("canonical run must spill at least one model record");
    let before = Snapshot::capture();
    assert!(
        run.history.try_model(flipped).is_err(),
        "flipped trailer must fail decode"
    );
    // The lenient read path is the one that counts decode errors.
    assert!(run.history.model(flipped).is_none());
    let delta = Snapshot::capture().delta(&before);
    assert!(
        delta.counter("storage.segment_checksum_failures") > 0,
        "a trailer flip must fingerprint storage.segment_checksum_failures"
    );
    assert!(
        delta.counter("storage.decode_errors") > 0,
        "the decode-error counter must also move"
    );
}

/// The job service leaves a full counter trail: submissions, snapshot
/// isolation, starts, sealed checkpoints, preemption/resume cycles,
/// duplicate collapses, cross-job sweeps, and completions all move their
/// counters by exact, seed-independent amounts on this fixed scenario.
#[test]
fn job_lifecycle_fingerprints_the_jobs_counters() {
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);

    // Tiny synthetic federation: clients 1 and 2 join late so the two
    // jobs replay overlapping windows. Gradient signs alternate with a
    // period-3 round pattern — the 2-bit store keeps signs only, so
    // without per-round flips every L-BFGS pair would collapse to
    // `Δg = 0` and the stacked (batchable) sweep would never engage.
    let (dim, rounds) = (8usize, 10usize);
    let joins = [0usize, 2, 3, 0];
    let mut h = HistoryStore::new(1e-6);
    for (c, &join) in joins.iter().enumerate() {
        h.record_join(c, join);
    }
    let mut w = vec![0.0f32; dim];
    for t in 0..rounds {
        h.record_model(t, w.clone());
        let mut grads = Vec::new();
        for (c, &join) in joins.iter().enumerate() {
            if t < join {
                continue;
            }
            let g: Vec<f32> = (0..dim)
                .map(|j| {
                    let sign = if (t + j) % 3 < 2 { 1.0f32 } else { -1.0 };
                    sign * (1.0 + 0.1 * c as f32 + 0.05 * j as f32)
                })
                .collect();
            h.record_gradient(t, c, &g);
            grads.push(g);
        }
        let n = grads.len() as f32;
        for j in 0..dim {
            w[j] -= 0.05 * grads.iter().map(|g| g[j]).sum::<f32>() / n;
        }
    }
    h.record_model(rounds, w);

    let before = Snapshot::capture();
    let mut svc = JobService::new(JobConfig::new(RecoveryConfig::new(0.05)).checkpoint_interval(2));
    // Both sets backtrack to client 1's join round, so the two jobs
    // replay the same rounds and the cross-job batched sweep engages.
    let a = svc.submit(&h, &[1]);
    let b = svc.submit(&h, &[1, 2]);
    assert_eq!(svc.submit(&h, &[1]), a, "duplicate must collapse");
    // One step activates both jobs (sealing the round-zero checkpoint),
    // then a preemption forces a resume on the next step.
    assert!(svc.step(&mut NoOracle));
    svc.preempt(a);
    svc.run_to_completion(&mut NoOracle);
    assert!(svc.take_outcome(a).expect("job a done").is_ok());
    assert!(svc.take_outcome(b).expect("job b done").is_ok());

    let delta = Snapshot::capture().delta(&before);
    assert_eq!(delta.counter("jobs.submitted"), 2, "two distinct jobs");
    assert_eq!(
        delta.counter("jobs.duplicates"),
        1,
        "one collapsed resubmit"
    );
    assert_eq!(
        delta.counter("storage.snapshots"),
        2,
        "one snapshot per job"
    );
    assert_eq!(delta.counter("jobs.started"), 2, "both jobs started fresh");
    assert_eq!(delta.counter("jobs.preempted"), 1, "one preemption");
    assert_eq!(delta.counter("jobs.resumed"), 1, "preempted job resumed");
    assert_eq!(delta.counter("jobs.completed"), 2, "both jobs finished");
    assert_eq!(delta.counter("jobs.failed"), 0, "no job may fail");
    assert!(
        delta.counter("jobs.checkpoints_sealed") >= 4,
        "round-zero seals plus interval seals must be recorded"
    );
    assert!(
        delta.counter("jobs.cross_job_sweeps") > 0,
        "overlapping replay rounds must batch the stacked sweep"
    );
}

#[test]
fn fault_matrix_runs_leave_counter_fingerprints() {
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let scenario = CanonicalRun::standard();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        let before = Snapshot::capture();
        let mut run = scenario.train_faulted(&plan);
        let delta = Snapshot::capture().delta(&before);
        // Training under any plan drives the fl round/byte counters.
        assert!(
            delta.counter("fl.rounds") >= scenario.rounds as u64,
            "seed {seed}: every training round must be counted"
        );
        assert!(
            delta.counter("fl.upload_bytes_sign") > 0,
            "seed {seed}: comms accounting flat"
        );
        // Scheduled dropouts that the plan injects show up as fl.dropouts
        // (a dropout for a vehicle that is not in range never gets polled,
        // so only scheduled ones can leave a fingerprint).
        let scheduled = |client: usize, round: usize| {
            client != scenario.forgotten || round >= scenario.forgotten_joins
        };
        let injected_dropouts = plan
            .faults()
            .iter()
            .filter(|f| match **f {
                fuiov_testkit::Fault::Dropout { client, round } => scheduled(client, round),
                _ => false,
            })
            .count();
        if injected_dropouts > 0 {
            assert!(
                delta.counter("fl.dropouts") > 0,
                "seed {seed}: {injected_dropouts} dropouts injected but counter flat"
            );
        }
        // Segment faults that land must fingerprint the storage counters
        // once the damaged rounds are read back.
        let before = Snapshot::capture();
        let landed = Corruptor::apply_segment_faults(&mut run.history, &plan);
        for t in run.history.rounds() {
            let _ = run.history.model(t);
        }
        let delta = Snapshot::capture().delta(&before);
        if landed > 0 {
            assert!(
                delta.counter("storage.decode_errors") > 0,
                "seed {seed}: {landed} segment faults landed but storage.decode_errors is flat"
            );
        }
        // Recovery (typed error or success) drives the core counters.
        let before = Snapshot::capture();
        if scenario.recover_forgotten(&run.history, |_, _| {}).is_ok() {
            let delta = Snapshot::capture().delta(&before);
            assert!(
                delta.counter("core.replay_rounds") > 0,
                "seed {seed}: successful recovery must count replay rounds"
            );
        }
    }
}

#[test]
fn hierarchical_cohort_fingerprints_the_hierarchy_counters() {
    use fuiov_fl::hierarchy::{run_cohort, sampled, CohortConfig};

    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);

    // 16 vehicles in 4-vehicle leaves, edge fan-out 2: the RSU tier has
    // 4 nodes and the edge tree over those leaves has widths [2, 1] —
    // 7 reductions per round, every round.
    let (n, rounds) = (16usize, 4usize);
    let cfg = || {
        CohortConfig::new(n)
            .group_size(4)
            .fanout(2)
            .dim(8)
            .rounds(rounds)
            .seed(9)
    };

    let before = Snapshot::capture();
    let run = run_cohort(cfg());
    let delta = Snapshot::capture().delta(&before);
    assert_eq!(
        delta.counter("hierarchy.nodes_reduced"),
        (rounds * (4 + 3)) as u64,
        "4 leaves + 3 edge nodes, every round"
    );
    assert_eq!(
        delta.counter("hierarchy.sampled_out"),
        0,
        "no sampling knob, nobody sampled out"
    );
    assert_eq!(
        delta.counter("storage.subtree_seals"),
        (rounds * 4) as u64,
        "every leaf seals its aggregate every round"
    );

    // Subtree-scoped forget: one scoped replay, and each of the 3
    // sibling leaves reuses its sealed aggregate in every replayed round.
    let before = Snapshot::capture();
    let rec = fuiov_core::recover_vehicle(&run, 5, &RecoveryConfig::new(run.cfg.lr), &mut NoOracle)
        .expect("subtree recovery succeeds");
    let delta = Snapshot::capture().delta(&before);
    assert_eq!(delta.counter("hierarchy.subtree_replays"), 1);
    assert_eq!(
        delta.counter("hierarchy.sibling_aggregates_reused"),
        (3 * rec.outcome.rounds_replayed) as u64,
        "3 sibling leaves reused per replayed round"
    );

    // Sampled cohort: the counter must agree exactly with the pure
    // predicate the run consulted.
    let frac = 0.5;
    let expected: u64 = (0..rounds)
        .map(|t| (0..n).filter(|&v| !sampled(9, t, v, frac)).count() as u64)
        .sum();
    assert!(expected > 0, "seed 9 must sample somebody out");
    let before = Snapshot::capture();
    let _ = run_cohort(cfg().sample_frac(frac));
    let delta = Snapshot::capture().delta(&before);
    assert_eq!(
        delta.counter("hierarchy.sampled_out"),
        expected,
        "sampled-out tally must equal the predicate, vehicle for vehicle"
    );
}
