//! Golden-trace regression: the per-round digests of the canonical run
//! must match `tests/golden/canonical.json` at the repo root, bit for bit,
//! at every thread width and across repeated runs.
//!
//! To bless a new golden after an intentional numeric change:
//! `FUIOV_BLESS=1 cargo test -p fuiov-testkit --test golden_trace`.

use fuiov_testkit::{check_or_bless, thread_lock, CanonicalRun, GoldenStatus};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/canonical.json")
}

#[test]
fn canonical_trace_matches_golden() {
    let _guard = thread_lock();
    let trace = CanonicalRun::standard().trace();
    match check_or_bless(&trace, &golden_path()) {
        Ok(GoldenStatus::Matched) => {}
        Ok(GoldenStatus::Blessed) => {
            println!(
                "golden {} re-blessed with {} entries",
                golden_path().display(),
                trace.entries().len()
            );
        }
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn trace_covers_training_and_recovery() {
    let _guard = thread_lock();
    let trace = CanonicalRun::standard().trace();
    let labels: Vec<&str> = trace.entries().iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(labels.first(), Some(&"init"));
    assert!(labels.contains(&"train_round_0"));
    assert!(labels.contains(&"train_final"));
    assert!(
        labels.contains(&"recover_round_2"),
        "replay starts at F = 2"
    );
    assert_eq!(labels.last(), Some(&"recover_final"));
    // init + 6 training rounds + final + 4 recovery rounds + recovered.
    assert_eq!(labels.len(), 13);
}

#[test]
fn trace_digests_identical_with_obs_on_and_off() {
    // The observability layer's determinism contract: metric collection is
    // purely observational, so the canonical digests are bit-identical
    // whether the registry is recording or not.
    let _guard = thread_lock();
    let _obs = fuiov_obs::test_lock();
    fuiov_obs::set_enabled(true);
    let on = CanonicalRun::standard().trace();
    fuiov_obs::set_enabled(false);
    let off = CanonicalRun::standard().trace();
    fuiov_obs::set_enabled(true);
    assert_eq!(on, off, "obs-on and obs-off traces diverged");
}

#[test]
fn trace_digests_identical_with_simd_forced_on_and_off() {
    // The SIMD dispatch determinism contract (DESIGN.md §5): every AVX2
    // kernel is bitwise identical to its scalar reference, so forcing
    // either path — the in-process equivalent of FUIOV_SIMD=1 / 0 — must
    // reproduce the same per-round FNV digests. On a host without AVX2
    // both runs resolve to scalar and the assertion is trivially true.
    let _guard = thread_lock();
    let _simd = fuiov_tensor::simd::force_guard();
    fuiov_tensor::simd::set_forced(Some(false));
    let scalar = CanonicalRun::standard().trace();
    fuiov_tensor::simd::set_forced(Some(true));
    let simd = CanonicalRun::standard().trace();
    fuiov_tensor::simd::set_forced(None);
    assert_eq!(
        scalar, simd,
        "FUIOV_SIMD=0 and FUIOV_SIMD=1 traces diverged"
    );
}

#[test]
fn trace_is_stable_across_reruns_and_thread_widths() {
    let _guard = thread_lock();
    let baseline = CanonicalRun::standard().trace();
    assert_eq!(
        baseline,
        CanonicalRun::standard().trace(),
        "repeated run drifted"
    );
    for width in [1usize, 2, 4] {
        fuiov_tensor::pool::set_threads(width);
        let t = CanonicalRun::standard().trace();
        fuiov_tensor::pool::set_threads(0);
        assert_eq!(baseline, t, "digests changed at FUIOV_THREADS={width}");
    }
}
