//! Differential and metamorphic oracles over the canonical run.
//!
//! - recovered-vs-retrained divergence bound (differential, vs the gold
//!   standard baseline);
//! - serial vs parallel client fan-out bitwise identity;
//! - history/checkpoint save→load round-trip identity, including the
//!   recovery computed from a reloaded history;
//! - unlearning a never-joined client is a typed no-op;
//! - forget→recover is idempotent under re-run.

use fuiov_baselines::retrain;
use fuiov_core::{RecoveryConfig, UnlearnError, Unlearner};
use fuiov_storage::serialize::{decode_history, encode_history};
use fuiov_testkit::oracles::{checkpoint_roundtrip_identity, history_roundtrip_identity};
use fuiov_testkit::{bitwise_eq, rel_l2_divergence, thread_lock, CanonicalRun};

#[test]
fn recovered_model_stays_near_the_retrained_reference() {
    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    let recovered = scenario.recover_forgotten(&run.history, |_, _| {}).unwrap();
    let mut clients = scenario.make_clients();
    let retrained = retrain(
        scenario.initial_params(),
        scenario.fl_config(),
        &mut clients,
        &scenario.schedule(),
        scenario.forgotten,
    );

    let div_recovered = rel_l2_divergence(&recovered.params, &retrained);
    assert!(div_recovered.is_finite(), "divergence must be finite");
    // Differential bound: recovery replays only stored ±1 directions, so
    // it will not match retraining bitwise, but it must stay in the same
    // region of parameter space. The canonical run sits near 0.06; the
    // bound catches order-of-magnitude regressions.
    assert!(
        div_recovered < 0.5,
        "recovered model diverged from retrained reference: {div_recovered}"
    );
    // Metamorphic: replaying rounds F..T must bring the model *closer* to
    // the retrained reference than backtracking alone — otherwise the
    // recovery stage adds nothing over Eq. 5.
    let backtracked = run.history.model(scenario.forgotten_joins).unwrap();
    assert!(!bitwise_eq(&recovered.params, &backtracked));
    let div_backtracked = rel_l2_divergence(&backtracked, &retrained);
    assert!(
        div_recovered < div_backtracked,
        "recovery did not improve on backtracking: {div_recovered} >= {div_backtracked}"
    );
}

#[test]
fn serial_and_parallel_client_paths_are_bitwise_identical() {
    let _guard = thread_lock();
    let scenario = CanonicalRun::standard();
    let parallel = scenario.train();
    let serial = scenario.train_serial();
    assert!(
        bitwise_eq(&parallel.params, &serial.params),
        "parallel fan-out must reproduce the serial reference bit for bit"
    );
    for ((ra, a), (rb, b)) in parallel.round_params.iter().zip(&serial.round_params) {
        assert_eq!(ra, rb);
        assert!(bitwise_eq(a, b), "round {ra} diverged");
    }
}

#[test]
fn save_load_roundtrip_preserves_history_and_recovery() {
    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    checkpoint_roundtrip_identity(&run.params).unwrap();
    history_roundtrip_identity(&run.history).unwrap();

    let reloaded = decode_history(&encode_history(&run.history)).unwrap();
    let from_original = scenario.recover_forgotten(&run.history, |_, _| {}).unwrap();
    let from_reloaded = scenario.recover_forgotten(&reloaded, |_, _| {}).unwrap();
    assert!(
        bitwise_eq(&from_original.params, &from_reloaded.params),
        "recovery from a reloaded history must be bitwise identical"
    );
    assert_eq!(from_original.rounds_replayed, from_reloaded.rounds_replayed);
    assert_eq!(
        from_original.estimator_fallbacks,
        from_reloaded.estimator_fallbacks
    );
}

#[test]
fn unlearning_a_never_joined_client_is_a_typed_noop() {
    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    let snapshot = encode_history(&run.history);
    let unlearner = Unlearner::new(&run.history, RecoveryConfig::new(0.3));
    assert_eq!(
        unlearner.forget(99).unwrap_err(),
        UnlearnError::UnknownClient(99)
    );
    assert_eq!(
        unlearner.forget_and_recover(99).unwrap_err(),
        UnlearnError::UnknownClient(99)
    );
    assert_eq!(
        encode_history(&run.history),
        snapshot,
        "a rejected request must leave the history byte-identical"
    );
}

#[test]
fn forget_and_recover_is_idempotent_under_rerun() {
    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    let mut rounds_a = Vec::new();
    let mut rounds_b = Vec::new();
    let a = scenario
        .recover_forgotten(&run.history, |t, p| rounds_a.push((t, p.to_vec())))
        .unwrap();
    let b = scenario
        .recover_forgotten(&run.history, |t, p| rounds_b.push((t, p.to_vec())))
        .unwrap();
    assert!(
        bitwise_eq(&a.params, &b.params),
        "re-running recovery drifted"
    );
    assert_eq!(a.update_norms.len(), b.update_norms.len());
    for (x, y) in a.update_norms.iter().zip(&b.update_norms) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(rounds_a.len(), rounds_b.len());
    for ((ta, pa), (tb, pb)) in rounds_a.iter().zip(&rounds_b) {
        assert_eq!(ta, tb);
        assert!(bitwise_eq(pa, pb), "replayed round {ta} drifted");
    }
}
