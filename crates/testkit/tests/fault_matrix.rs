//! The fault matrix: run the canonical federation under seeded fault
//! plans and check the stack degrades in *typed*, deterministic ways —
//! no panics, no silent corruption.
//!
//! Seeds default to two fixed values; set `FUIOV_FAULT_SEED=<u64>` to
//! reproduce a specific plan (every fault a run suffers derives from that
//! one number).

use fuiov_storage::checkpoint::{self, DecodeError};
use fuiov_storage::serialize::{encode_history, HistoryDecodeError};
use fuiov_testkit::{bitwise_eq, CanonicalRun, Corruptor, Fault, FaultClass, FaultPlan, FaultSpec};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    match std::env::var("FUIOV_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("FUIOV_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 29],
    }
}

fn plan_for(scenario: &CanonicalRun, seed: u64) -> Arc<FaultPlan> {
    let dim = scenario.initial_params().len();
    let spec = FaultSpec::small(scenario.clients, scenario.rounds, dim);
    Arc::new(FaultPlan::sample(seed, &spec))
}

/// Whether `client` is scheduled to be in range at `round`.
fn scheduled(scenario: &CanonicalRun, client: usize, round: usize) -> bool {
    client != scenario.forgotten || round >= scenario.forgotten_joins
}

/// Whether the plan contains at least one fault guaranteed to perturb the
/// trained parameters (see the per-class reasoning inline).
fn has_effective_fault(scenario: &CanonicalRun, plan: &FaultPlan) -> bool {
    let responding = |c: usize, r: usize| scheduled(scenario, c, r) && !plan.is_dropout(c, r);
    plan.faults().iter().any(|f| match *f {
        // A scheduled vehicle that fails to upload changes the aggregate.
        Fault::Dropout { client, round } => scheduled(scenario, client, round),
        // A corrupted upload element always differs from the true one.
        Fault::SignFlip { client, round, .. } => responding(client, round),
        // A stale upload differs only if there *is* an earlier upload.
        Fault::Delay { client, round } => {
            responding(client, round) && (0..round).any(|r| responding(client, r))
        }
        // Doubling one weight shifts FedAvg only with ≥ 2 participants.
        Fault::Duplicate { client, round } => {
            responding(client, round)
                && (0..scenario.clients)
                    .filter(|&c| responding(c, round))
                    .count()
                    >= 2
        }
        // Storage-side faults do not touch the training trajectory.
        _ => false,
    })
}

#[test]
fn plans_cover_the_fault_taxonomy() {
    let scenario = CanonicalRun::standard();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        let classes = plan.classes();
        assert!(
            classes.len() >= 5,
            "seed {seed}: only {} fault classes exercised",
            classes.len()
        );
        for class in FaultClass::ALL {
            assert!(classes.contains(&class), "seed {seed}: missing {class:?}");
        }
        assert_eq!(
            *plan,
            *plan_for(&scenario, seed),
            "plan not reproducible from seed"
        );
    }
}

#[test]
fn faulted_training_stays_finite_and_faults_bite() {
    let scenario = CanonicalRun::standard();
    let clean = scenario.train();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        let run = scenario.train_faulted(&plan);
        assert!(
            run.params.iter().all(|v| v.is_finite()),
            "seed {seed}: faulted training produced non-finite parameters"
        );
        // History invariant: a dropped-out vehicle leaves no trace in its
        // round.
        for f in plan.faults() {
            if let Fault::Dropout { client, round } = *f {
                if scheduled(&scenario, client, round) {
                    assert!(
                        !run.history.clients_in_round(round).contains(&client),
                        "seed {seed}: dropout ({client}, {round}) still recorded"
                    );
                    assert!(run.history.direction(round, client).is_none());
                }
            }
        }
        // Staleness faults that landed really did copy the older record.
        for (client, round, lag) in plan.stale_directions() {
            if let (Some(now), Some(older)) = (
                run.history.direction(round, client),
                round
                    .checked_sub(lag)
                    .and_then(|r| run.history.direction(r, client)),
            ) {
                assert_eq!(
                    now.to_signs(),
                    older.to_signs(),
                    "seed {seed}: stale fault ({client}, {round}, lag {lag}) not applied"
                );
            }
        }
        if has_effective_fault(&scenario, &plan) {
            assert!(
                !bitwise_eq(&run.params, &clean.params),
                "seed {seed}: plan has effective faults but the model is unchanged"
            );
        }
    }
}

#[test]
fn recovery_under_faults_is_typed_never_a_panic() {
    let scenario = CanonicalRun::standard();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        let run = scenario.train_faulted(&plan);
        match scenario.recover_forgotten(&run.history, |_, _| {}) {
            Ok(out) => {
                assert!(
                    out.params.iter().all(|v| v.is_finite()),
                    "seed {seed}: recovered parameters not finite"
                );
                assert_eq!(out.clients, vec![scenario.forgotten]);
            }
            Err(e) => {
                // A typed error is an acceptable degradation; its Display
                // must describe the failure.
                assert!(!e.to_string().is_empty(), "seed {seed}: silent error");
            }
        }
    }
}

#[test]
fn corrupted_checkpoints_fail_with_typed_errors() {
    let scenario = CanonicalRun::standard();
    let run = scenario.train();
    let blob = checkpoint::encode(&run.params);
    let history_blob = encode_history(&run.history);
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        assert!(
            !plan.truncations().is_empty(),
            "plans always draw truncations"
        );
        for raw in plan.truncations() {
            let t = Corruptor::truncate(&blob, raw);
            assert_eq!(
                checkpoint::decode(&t),
                Err(DecodeError::Truncated),
                "seed {seed}: {}-byte prefix of a checkpoint must be Truncated",
                t.len()
            );
            let th = Corruptor::truncate(&history_blob, raw);
            assert_eq!(
                fuiov_storage::serialize::decode_history(&th).unwrap_err(),
                HistoryDecodeError::Truncated,
                "seed {seed}: {}-byte prefix of a history blob must be Truncated",
                th.len()
            );
        }
    }
    let mut magic = blob.to_vec();
    Corruptor::scramble_magic(&mut magic);
    assert!(matches!(
        checkpoint::decode(&magic),
        Err(DecodeError::BadMagic(_))
    ));
    let mut version = blob.to_vec();
    Corruptor::bump_version(&mut version);
    assert_eq!(
        checkpoint::decode(&version),
        Err(DecodeError::BadVersion(0xFFFF))
    );
}

#[test]
fn segment_faults_degrade_to_typed_errors_and_are_counted() {
    let scenario = CanonicalRun::standard();
    for seed in seeds() {
        let plan = plan_for(&scenario, seed);
        assert_eq!(
            plan.segment_faults().len(),
            3,
            "plans floor one fault per segment class"
        );
        let mut run = scenario.train();
        let landed = Corruptor::apply_segment_faults(&mut run.history, &plan);
        assert!(landed >= 1, "seed {seed}: no segment fault landed");
        // Every stored round must now read back as either a clean model or
        // a typed decode error — never a panic.
        let mut typed = 0usize;
        for t in run.history.rounds() {
            match run.history.try_model(t) {
                Ok(_) => {}
                Err(e) => {
                    typed += 1;
                    assert!(!e.to_string().is_empty(), "seed {seed}: silent error");
                    assert!(run.history.model(t).is_none(), "lenient path must agree");
                }
            }
        }
        assert!(
            typed >= 1,
            "seed {seed}: {landed} faults landed but none surfaced"
        );
        assert!(
            run.history.tier_stats().decode_errors >= typed,
            "seed {seed}: decode errors must be counted"
        );
        // Recovery over the damaged store is typed, never a panic.
        match scenario.recover_forgotten(&run.history, |_, _| {}) {
            Ok(out) => assert!(out.params.iter().all(|v| v.is_finite())),
            Err(e) => assert!(!e.to_string().is_empty(), "seed {seed}: silent error"),
        }
    }
}

#[test]
fn lost_replay_checkpoint_is_a_typed_recovery_error() {
    // Drop a model inside the replay window F..T: recovery must return a
    // typed error (or succeed via interpolation when enabled), not panic.
    let scenario = CanonicalRun::standard();
    let mut run = scenario.train();
    assert!(Corruptor::drop_model(
        &mut run.history,
        scenario.forgotten_joins + 1
    ));
    let err = scenario
        .recover_forgotten(&run.history, |_, _| {})
        .expect_err("missing replay model must be reported");
    assert!(
        err.to_string().contains("model"),
        "error should name the missing model: {err}"
    );
}
