//! From-scratch neural-network substrate for the FUIOV stack.
//!
//! The paper's experiments (§V-A) train small CNNs — two convolutional
//! layers plus one or two fully-connected layers — with plain SGD. This
//! crate implements exactly that, with manual backpropagation, so that:
//!
//! - gradients are bit-reproducible given a seed (every experiment in the
//!   repository is deterministic), and
//! - the whole model round-trips through a **flat `Vec<f32>` parameter
//!   vector**, the representation the federated-unlearning math
//!   (backtracking, L-BFGS, Cauchy-MVT recovery) operates on.
//!
//! # Example
//!
//! ```
//! use fuiov_nn::{ModelSpec, Tensor4};
//!
//! // Deterministic tiny CNN; same seed → same weights.
//! let spec = ModelSpec::tiny_cnn(1, 8, 4);
//! let mut model = spec.build(42);
//! let x = Tensor4::zeros(2, 1, 8, 8);
//! let (loss, grad) = model.loss_and_grad(&x, &[0, 1]);
//! assert_eq!(grad.len(), model.param_count());
//! assert!(loss > 0.0);
//! ```

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod tensor4;

pub use model::{ModelSpec, Sequential};
pub use tensor4::Tensor4;
