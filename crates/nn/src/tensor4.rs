//! NCHW 4-D tensor used by the layer implementations.
//!
//! A [`Tensor4`] is a batch of `n` feature maps with `c` channels of size
//! `h × w`, stored contiguously in NCHW order. All layers consume and
//! produce this type; vectors of logits are represented as `(n, c, 1, 1)`.

/// Dense NCHW `f32` tensor.
///
/// ```
/// use fuiov_nn::Tensor4;
/// let mut t = Tensor4::zeros(1, 2, 2, 2);
/// t.set(0, 1, 0, 1, 7.0);
/// assert_eq!(t.get(0, 1, 0, 1), 7.0);
/// assert_eq!(t.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// All-zeros tensor with the given shape.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Builds a tensor from a flat NCHW buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "Tensor4::from_vec: size mismatch"
        );
        Tensor4 { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Features per batch item (`c*h*w`).
    pub fn features(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Flat offset of `(n, c, h, w)`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any index is out of bounds.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any index is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Flat view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Contiguous slice of one channel plane `(n, c)`.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = (n * self.c + c) * self.h * self.w;
        &self.data[start..start + self.h * self.w]
    }

    /// Contiguous slice of one batch item (all channels).
    pub fn item(&self, n: usize) -> &[f32] {
        let f = self.features();
        &self.data[n * f..(n + 1) * f]
    }

    /// Reinterprets as `(n, features, 1, 1)` without copying the data.
    pub fn flatten(mut self) -> Tensor4 {
        self.c = self.features();
        self.h = 1;
        self.w = 1;
        self
    }

    /// Reinterprets a flat `(n, c*h*w, 1, 1)` tensor back to `(n,c,h,w)`.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, c: usize, h: usize, w: usize) -> Tensor4 {
        assert_eq!(
            self.features(),
            c * h * w,
            "reshape: element count mismatch"
        );
        self.c = c;
        self.h = h;
        self.w = w;
        self
    }

    /// Stacks per-item flat feature vectors into a `(len, features, 1, 1)`
    /// tensor — the standard way batches are assembled from a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or lengths differ.
    pub fn from_items(items: &[&[f32]]) -> Tensor4 {
        assert!(!items.is_empty(), "from_items: empty batch");
        let f = items[0].len();
        let mut data = Vec::with_capacity(items.len() * f);
        for it in items {
            assert_eq!(it.len(), f, "from_items: ragged items");
            data.extend_from_slice(it);
        }
        Tensor4::from_vec(items.len(), f, 1, 1, data)
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_len() {
        let t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
        assert_eq!(t.features(), 60);
        assert!(!t.is_empty());
    }

    #[test]
    fn indexing_is_nchw() {
        let mut t = Tensor4::zeros(2, 2, 2, 2);
        t.set(1, 1, 1, 1, 9.0);
        assert_eq!(t.as_slice()[15], 9.0);
        assert_eq!(t.get(1, 1, 1, 1), 9.0);
    }

    #[test]
    fn plane_and_item_are_contiguous() {
        let t = Tensor4::from_vec(1, 2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.plane(0, 1), &[3.0, 4.0]);
        assert_eq!(t.item(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn flatten_then_reshape_roundtrips() {
        let t = Tensor4::from_vec(1, 2, 2, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let flat = t.clone().flatten();
        assert_eq!(flat.shape(), (1, 4, 1, 1));
        assert_eq!(flat.reshape(2, 2, 1), t);
    }

    #[test]
    fn from_items_stacks() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let t = Tensor4::from_items(&[&a, &b]);
        assert_eq!(t.shape(), (2, 2, 1, 1));
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "element count mismatch")]
    fn reshape_rejects_bad_shape() {
        let _ = Tensor4::zeros(1, 4, 1, 1).reshape(3, 1, 1);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let t = Tensor4::from_vec(1, 1, 1, 3, vec![0.5, -2.0, 1.0]);
        assert_eq!(t.max_abs(), 2.0);
    }
}
