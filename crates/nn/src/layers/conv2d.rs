//! 2-D convolution (stride 1, symmetric zero padding).

use super::Layer;
use crate::init;
use crate::tensor4::Tensor4;
use fuiov_tensor::Mat;
use rand::Rng;

/// Compute backend for [`Conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvBackend {
    /// Straightforward quadruple loop — best for the paper's small models.
    #[default]
    Direct,
    /// im2col + GEMM — the classical layout for wider channel counts.
    /// Bit-compatible with `Direct` up to `f32` rounding (equivalence is
    /// enforced by tests and the `micro` bench compares the two).
    Im2col,
}

/// Convolution with square kernels, stride 1 and zero padding.
///
/// Weights are stored as `out_channels × in_channels × k × k` followed by
/// the per-output-channel bias in the flat parameter layout. Two
/// [`ConvBackend`]s are available; both produce the same results.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    backend: ConvBackend,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor4>,
    /// One unfolded column matrix per batch item (im2col backend only).
    cached_cols: Option<Vec<Mat>>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "Conv2d::new: zero dimension"
        );
        let fan_in = in_channels * kernel * kernel;
        let mut weight = vec![0.0; out_channels * fan_in];
        init::kaiming_uniform(rng, &mut weight, fan_in);
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            backend: ConvBackend::Direct,
            weight,
            bias: vec![0.0; out_channels],
            grad_weight: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
            cached_cols: None,
        }
    }

    /// Selects the compute backend.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The compute backend in use.
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Unfolds one batch item into a `(in_c·k²) × (oh·ow)` column matrix.
    fn im2col(&self, x: &Tensor4, b: usize) -> Mat {
        let (_, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let p = self.padding as isize;
        let rows = self.in_channels * k * k;
        let mut col = Mat::zeros(rows, oh * ow);
        for ic in 0..self.in_channels {
            for dy in 0..k {
                for dx in 0..k {
                    let row = (ic * k + dy) * k + dx;
                    for y in 0..oh {
                        let iy = y as isize + dy as isize - p;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for xx in 0..ow {
                            let ix = xx as isize + dx as isize - p;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            col.set(row, y * ow + xx, x.get(b, ic, iy as usize, ix as usize));
                        }
                    }
                }
            }
        }
        col
    }

    #[allow(clippy::needless_range_loop)] // batch index feeds several tensors
    fn forward_im2col(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let w_mat = Mat::from_vec(
            self.out_channels,
            self.in_channels * k * k,
            self.weight.clone(),
        );
        let mut out = Tensor4::zeros(n, self.out_channels, oh, ow);
        let mut cols = Vec::with_capacity(n);
        for b in 0..n {
            let col = self.im2col(x, b);
            let prod = w_mat.matmul(&col); // out_c × (oh·ow)
            for oc in 0..self.out_channels {
                for i in 0..oh * ow {
                    let idx = out.index(b, oc, i / ow, i % ow);
                    out.as_mut_slice()[idx] = prod.get(oc, i) + self.bias[oc];
                }
            }
            cols.push(col);
        }
        self.cached_cols = Some(cols);
        out
    }

    #[allow(clippy::needless_range_loop)] // batch index feeds several tensors
    fn backward_im2col(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let x = self
            .cached_input
            .as_ref()
            .expect("conv2d: backward before forward");
        let cols = self
            .cached_cols
            .as_ref()
            .expect("conv2d: im2col cache missing");
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let p = self.padding as isize;
        let w_mat = Mat::from_vec(
            self.out_channels,
            self.in_channels * k * k,
            self.weight.clone(),
        );
        let mut grad_in = Tensor4::zeros(n, self.in_channels, h, w);
        for b in 0..n {
            // g_mat: out_c × (oh·ow) for this item.
            let g_mat = {
                let mut data = Vec::with_capacity(self.out_channels * oh * ow);
                for oc in 0..self.out_channels {
                    data.extend_from_slice(grad_out.plane(b, oc));
                }
                Mat::from_vec(self.out_channels, oh * ow, data)
            };
            // grad_w += g_mat · colᵀ ; grad_b += row-sums of g_mat.
            let gw = g_mat.matmul(&cols[b].transpose());
            for (gv, &v) in self.grad_weight.iter_mut().zip(gw.as_slice()) {
                *gv += v;
            }
            for oc in 0..self.out_channels {
                self.grad_bias[oc] += g_mat.row(oc).iter().sum::<f32>();
            }
            // grad_col = w_matᵀ · g_mat, then scatter (col2im).
            let gcol = w_mat.tr_matmul(&g_mat);
            for ic in 0..self.in_channels {
                for dy in 0..k {
                    for dx in 0..k {
                        let row = (ic * k + dy) * k + dx;
                        for y in 0..oh {
                            let iy = y as isize + dy as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for xx in 0..ow {
                                let ix = xx as isize + dx as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let idx =
                                    grad_in.index(b, ic, iy as usize, ix as usize);
                                grad_in.as_mut_slice()[idx] += gcol.get(row, y * ow + xx);
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.padding + 1 - self.kernel, w + 2 * self.padding + 1 - self.kernel)
    }

    #[inline]
    fn w_index(&self, oc: usize, ic: usize, dy: usize, dx: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel + dy) * self.kernel + dx
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert_eq!(c, self.in_channels, "conv2d: input channel mismatch");
        assert!(
            h + 2 * self.padding >= self.kernel && w + 2 * self.padding >= self.kernel,
            "conv2d: input smaller than kernel"
        );
        if self.backend == ConvBackend::Im2col {
            self.cached_input = Some(x.clone());
            return self.forward_im2col(x);
        }
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor4::zeros(n, self.out_channels, oh, ow);
        let p = self.padding as isize;
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                let iy = y as isize + dy as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for dx in 0..self.kernel {
                                    let ix = xx as isize + dx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += self.weight[self.w_index(oc, ic, dy, dx)]
                                        * x.get(b, ic, iy as usize, ix as usize);
                                }
                            }
                        }
                        out.set(b, oc, y, xx, acc);
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        if self.backend == ConvBackend::Im2col {
            return self.backward_im2col(grad_out);
        }
        let x = self
            .cached_input
            .as_ref()
            .expect("conv2d: backward before forward");
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(
            grad_out.shape(),
            (n, self.out_channels, oh, ow),
            "conv2d: gradient shape mismatch"
        );
        let mut grad_in = Tensor4::zeros(n, self.in_channels, h, w);
        let p = self.padding as isize;
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for xx in 0..ow {
                        let g = grad_out.get(b, oc, y, xx);
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += g;
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                let iy = y as isize + dy as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for dx in 0..self.kernel {
                                    let ix = xx as isize + dx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let wi = self.w_index(oc, ic, dy, dx);
                                    self.grad_weight[wi] +=
                                        g * x.get(b, ic, iy as usize, ix as usize);
                                    let gi = grad_in.index(b, ic, iy as usize, ix as usize);
                                    grad_in.as_mut_slice()[gi] += g * self.weight[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.weight.len());
        w.copy_from_slice(&self.weight);
        b.copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let (w, b) = src.split_at(self.weight.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.grad_weight.len());
        w.copy_from_slice(&self.grad_weight);
        b.copy_from_slice(&self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.iter_mut().for_each(|v| *v = 0.0);
        self.grad_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1, bias 0 == identity.
        let mut c = Conv2d::new(&mut rng(), 1, 1, 1, 0);
        c.write_params(&[1.0, 0.0]);
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_valid_convolution() {
        let mut c = Conv2d::new(&mut rng(), 1, 1, 3, 0);
        // Sum-of-window kernel, bias 10.
        let mut p = vec![1.0; 9];
        p.push(10.0);
        c.write_params(&p);
        let x = Tensor4::from_vec(1, 1, 3, 3, (1..=9).map(|i| i as f32).collect());
        let y = c.forward(&x);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert_eq!(y.as_slice(), &[55.0]); // 45 + 10
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let c = Conv2d::new(&mut rng(), 1, 4, 3, 1);
        assert_eq!(c.out_hw(8, 8), (8, 8));
    }

    #[test]
    fn multi_channel_shapes() {
        let mut c = Conv2d::new(&mut rng(), 3, 5, 3, 1);
        let x = Tensor4::zeros(2, 3, 6, 6);
        let y = c.forward(&x);
        assert_eq!(y.shape(), (2, 5, 6, 6));
        assert_eq!(c.param_count(), 5 * 3 * 9 + 5);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let x = Tensor4::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        testutil::check_input_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 2, 3, 1);
        let x = Tensor4::from_vec(
            2,
            2,
            4,
            4,
            (0..64).map(|i| (i as f32 * 0.29).cos()).collect(),
        );
        testutil::check_param_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn im2col_forward_matches_direct() {
        let mut direct = Conv2d::new(&mut rng(), 3, 5, 3, 1);
        let mut gemm = direct.clone().with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            2,
            3,
            6,
            6,
            (0..216).map(|i| (i as f32 * 0.173).sin()).collect(),
        );
        let a = direct.forward(&x);
        let b = gemm.forward(&x);
        assert_eq!(a.shape(), b.shape());
        let diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff < 1e-4, "backend mismatch {diff}");
    }

    #[test]
    fn im2col_backward_matches_direct() {
        let mut direct = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let mut gemm = direct.clone().with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            2,
            2,
            5,
            5,
            (0..100).map(|i| (i as f32 * 0.291).cos()).collect(),
        );
        let ya = direct.forward(&x);
        let _ = gemm.forward(&x);
        let (n, c, h, w) = ya.shape();
        let g = Tensor4::from_vec(
            n,
            c,
            h,
            w,
            (0..ya.len()).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        direct.zero_grads();
        gemm.zero_grads();
        let gi_a = direct.backward(&g);
        let gi_b = gemm.backward(&g);
        let diff_in = gi_a
            .as_slice()
            .iter()
            .zip(gi_b.as_slice())
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff_in < 1e-4, "input grad mismatch {diff_in}");
        let mut ga = vec![0.0; direct.param_count()];
        let mut gb = vec![0.0; gemm.param_count()];
        direct.read_grads(&mut ga);
        gemm.read_grads(&mut gb);
        let diff_p = ga
            .iter()
            .zip(&gb)
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff_p < 1e-3, "param grad mismatch {diff_p}");
    }

    #[test]
    fn im2col_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 2, 3, 1).with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.41).sin()).collect(),
        );
        testutil::check_input_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn param_roundtrip() {
        let a = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let mut p = vec![0.0; a.param_count()];
        a.read_params(&mut p);
        let mut b = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        b.write_params(&p);
        let mut q = vec![0.0; b.param_count()];
        b.read_params(&mut q);
        assert_eq!(p, q);
    }
}
