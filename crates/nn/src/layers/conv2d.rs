//! 2-D convolution (stride 1, symmetric zero padding).

use super::Layer;
use crate::init;
use crate::tensor4::Tensor4;
use fuiov_tensor::Mat;
use rand::Rng;

/// Compute backend for [`Conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvBackend {
    /// Straightforward quadruple loop — best for the paper's small models.
    #[default]
    Direct,
    /// im2col + GEMM — the classical layout for wider channel counts.
    /// Bit-compatible with `Direct` up to `f32` rounding (equivalence is
    /// enforced by tests and the `micro` bench compares the two).
    Im2col,
}

/// Convolution with square kernels, stride 1 and zero padding.
///
/// Weights are stored as `out_channels × in_channels × k × k` followed by
/// the per-output-channel bias in the flat parameter layout. Two
/// [`ConvBackend`]s are available; both produce the same results.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    backend: ConvBackend,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor4>,
    /// The whole minibatch unfolded into one `(in_c·k²) × (n·oh·ow)` column
    /// matrix (im2col backend only); item `b` owns column range
    /// `[b·oh·ow, (b+1)·oh·ow)`.
    cached_cols: Option<Mat>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "Conv2d::new: zero dimension"
        );
        let fan_in = in_channels * kernel * kernel;
        let mut weight = vec![0.0; out_channels * fan_in];
        init::kaiming_uniform(rng, &mut weight, fan_in);
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            backend: ConvBackend::Direct,
            weight,
            bias: vec![0.0; out_channels],
            grad_weight: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
            cached_cols: None,
        }
    }

    /// Selects the compute backend.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The compute backend in use.
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Unfolds the whole minibatch into one `(in_c·k²) × (n·oh·ow)` column
    /// matrix, so forward and backward each run a single large GEMM instead
    /// of one small GEMM per batch item.
    fn im2col_batch(&self, x: &Tensor4) -> Mat {
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let p = self.padding as isize;
        let rows = self.in_channels * k * k;
        let plane = oh * ow;
        let total = n * plane;
        let mut data = vec![0.0f32; rows * total];
        for b in 0..n {
            for ic in 0..self.in_channels {
                for dy in 0..k {
                    for dx in 0..k {
                        let row = (ic * k + dy) * k + dx;
                        let dst = &mut data[row * total + b * plane..][..plane];
                        for y in 0..oh {
                            let iy = y as isize + dy as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src = &x.plane(b, ic)[iy as usize * w..][..w];
                            for xx in 0..ow {
                                let ix = xx as isize + dx as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                dst[y * ow + xx] = src[ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Mat::from_vec(rows, total, data)
    }

    fn forward_im2col(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let w_mat = Mat::from_vec(
            self.out_channels,
            self.in_channels * k * k,
            self.weight.clone(),
        );
        let cols = self.im2col_batch(x);
        let prod = w_mat.matmul(&cols); // out_c × (n·oh·ow)
        let plane = oh * ow;
        let mut out = Tensor4::zeros(n, self.out_channels, oh, ow);
        for b in 0..n {
            for oc in 0..self.out_channels {
                let src = &prod.row(oc)[b * plane..(b + 1) * plane];
                let base = out.index(b, oc, 0, 0);
                let dst = &mut out.as_mut_slice()[base..base + plane];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + self.bias[oc];
                }
            }
        }
        self.cached_cols = Some(cols);
        out
    }

    fn backward_im2col(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let x = self
            .cached_input
            .as_ref()
            .expect("conv2d: backward before forward");
        let cols = self
            .cached_cols
            .as_ref()
            .expect("conv2d: im2col cache missing");
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let p = self.padding as isize;
        let plane = oh * ow;
        let total = n * plane;
        let w_mat = Mat::from_vec(
            self.out_channels,
            self.in_channels * k * k,
            self.weight.clone(),
        );
        // Batched g_mat: out_c × (n·oh·ow), column layout matching `cols`.
        let g_mat = {
            let mut data = vec![0.0f32; self.out_channels * total];
            for oc in 0..self.out_channels {
                for b in 0..n {
                    data[oc * total + b * plane..][..plane].copy_from_slice(grad_out.plane(b, oc));
                }
            }
            Mat::from_vec(self.out_channels, total, data)
        };
        // grad_w += g_mat · colsᵀ ; grad_b += row-sums of g_mat — one GEMM
        // for the whole batch instead of n small ones.
        let gw = g_mat.matmul(&cols.transpose());
        for (gv, &v) in self.grad_weight.iter_mut().zip(gw.as_slice()) {
            *gv += v;
        }
        for oc in 0..self.out_channels {
            self.grad_bias[oc] += g_mat.row(oc).iter().sum::<f32>();
        }
        // grad_col = w_matᵀ · g_mat, then scatter every item (col2im).
        let gcol = w_mat.tr_matmul(&g_mat);
        let mut grad_in = Tensor4::zeros(n, self.in_channels, h, w);
        for b in 0..n {
            for ic in 0..self.in_channels {
                for dy in 0..k {
                    for dx in 0..k {
                        let row = (ic * k + dy) * k + dx;
                        let src = &gcol.row(row)[b * plane..(b + 1) * plane];
                        for y in 0..oh {
                            let iy = y as isize + dy as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_base = grad_in.index(b, ic, iy as usize, 0);
                            let dst = &mut grad_in.as_mut_slice()[dst_base..dst_base + w];
                            for xx in 0..ow {
                                let ix = xx as isize + dx as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                dst[ix as usize] += src[y * ow + xx];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.padding + 1 - self.kernel,
            w + 2 * self.padding + 1 - self.kernel,
        )
    }

    #[inline]
    fn w_index(&self, oc: usize, ic: usize, dy: usize, dx: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel + dy) * self.kernel + dx
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert_eq!(c, self.in_channels, "conv2d: input channel mismatch");
        assert!(
            h + 2 * self.padding >= self.kernel && w + 2 * self.padding >= self.kernel,
            "conv2d: input smaller than kernel"
        );
        if self.backend == ConvBackend::Im2col {
            self.cached_input = Some(x.clone());
            return self.forward_im2col(x);
        }
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor4::zeros(n, self.out_channels, oh, ow);
        let p = self.padding as isize;
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                let iy = y as isize + dy as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for dx in 0..self.kernel {
                                    let ix = xx as isize + dx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += self.weight[self.w_index(oc, ic, dy, dx)]
                                        * x.get(b, ic, iy as usize, ix as usize);
                                }
                            }
                        }
                        out.set(b, oc, y, xx, acc);
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        if self.backend == ConvBackend::Im2col {
            return self.backward_im2col(grad_out);
        }
        let x = self
            .cached_input
            .as_ref()
            .expect("conv2d: backward before forward");
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(
            grad_out.shape(),
            (n, self.out_channels, oh, ow),
            "conv2d: gradient shape mismatch"
        );
        let mut grad_in = Tensor4::zeros(n, self.in_channels, h, w);
        let p = self.padding as isize;
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for xx in 0..ow {
                        let g = grad_out.get(b, oc, y, xx);
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += g;
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                let iy = y as isize + dy as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for dx in 0..self.kernel {
                                    let ix = xx as isize + dx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let wi = self.w_index(oc, ic, dy, dx);
                                    self.grad_weight[wi] +=
                                        g * x.get(b, ic, iy as usize, ix as usize);
                                    let gi = grad_in.index(b, ic, iy as usize, ix as usize);
                                    grad_in.as_mut_slice()[gi] += g * self.weight[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.weight.len());
        w.copy_from_slice(&self.weight);
        b.copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let (w, b) = src.split_at(self.weight.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.grad_weight.len());
        w.copy_from_slice(&self.grad_weight);
        b.copy_from_slice(&self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.iter_mut().for_each(|v| *v = 0.0);
        self.grad_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1, bias 0 == identity.
        let mut c = Conv2d::new(&mut rng(), 1, 1, 1, 0);
        c.write_params(&[1.0, 0.0]);
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_valid_convolution() {
        let mut c = Conv2d::new(&mut rng(), 1, 1, 3, 0);
        // Sum-of-window kernel, bias 10.
        let mut p = vec![1.0; 9];
        p.push(10.0);
        c.write_params(&p);
        let x = Tensor4::from_vec(1, 1, 3, 3, (1..=9).map(|i| i as f32).collect());
        let y = c.forward(&x);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert_eq!(y.as_slice(), &[55.0]); // 45 + 10
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let c = Conv2d::new(&mut rng(), 1, 4, 3, 1);
        assert_eq!(c.out_hw(8, 8), (8, 8));
    }

    #[test]
    fn multi_channel_shapes() {
        let mut c = Conv2d::new(&mut rng(), 3, 5, 3, 1);
        let x = Tensor4::zeros(2, 3, 6, 6);
        let y = c.forward(&x);
        assert_eq!(y.shape(), (2, 5, 6, 6));
        assert_eq!(c.param_count(), 5 * 3 * 9 + 5);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let x = Tensor4::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        testutil::check_input_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 2, 3, 1);
        let x = Tensor4::from_vec(
            2,
            2,
            4,
            4,
            (0..64).map(|i| (i as f32 * 0.29).cos()).collect(),
        );
        testutil::check_param_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn im2col_forward_matches_direct() {
        let mut direct = Conv2d::new(&mut rng(), 3, 5, 3, 1);
        let mut gemm = direct.clone().with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            2,
            3,
            6,
            6,
            (0..216).map(|i| (i as f32 * 0.173).sin()).collect(),
        );
        let a = direct.forward(&x);
        let b = gemm.forward(&x);
        assert_eq!(a.shape(), b.shape());
        let diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff < 1e-4, "backend mismatch {diff}");
    }

    #[test]
    fn im2col_backward_matches_direct() {
        let mut direct = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let mut gemm = direct.clone().with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            2,
            2,
            5,
            5,
            (0..100).map(|i| (i as f32 * 0.291).cos()).collect(),
        );
        let ya = direct.forward(&x);
        let _ = gemm.forward(&x);
        let (n, c, h, w) = ya.shape();
        let g = Tensor4::from_vec(
            n,
            c,
            h,
            w,
            (0..ya.len()).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        direct.zero_grads();
        gemm.zero_grads();
        let gi_a = direct.backward(&g);
        let gi_b = gemm.backward(&g);
        let diff_in = gi_a
            .as_slice()
            .iter()
            .zip(gi_b.as_slice())
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff_in < 1e-4, "input grad mismatch {diff_in}");
        let mut ga = vec![0.0; direct.param_count()];
        let mut gb = vec![0.0; gemm.param_count()];
        direct.read_grads(&mut ga);
        gemm.read_grads(&mut gb);
        let diff_p = ga
            .iter()
            .zip(&gb)
            .fold(0.0f32, |m, (p, q)| m.max((p - q).abs()));
        assert!(diff_p < 1e-3, "param grad mismatch {diff_p}");
    }

    #[test]
    fn im2col_batched_is_bitwise_thread_invariant() {
        // The batched im2col GEMM must produce identical bytes at any pool
        // width (forward AND both backward gradients) — DESIGN.md §5.
        let x = Tensor4::from_vec(
            3,
            2,
            6,
            6,
            (0..216).map(|i| (i as f32 * 0.219).sin()).collect(),
        );
        let run = |threads: usize| {
            fuiov_tensor::pool::set_threads(threads);
            let mut c = Conv2d::new(&mut rng(), 2, 4, 3, 1).with_backend(ConvBackend::Im2col);
            let y = c.forward(&x);
            let g = Tensor4::from_vec(
                3,
                4,
                6,
                6,
                (0..y.len()).map(|i| (i as f32 * 0.57).cos()).collect(),
            );
            let gi = c.backward(&g);
            let mut gp = vec![0.0; c.param_count()];
            c.read_grads(&mut gp);
            fuiov_tensor::pool::set_threads(0);
            let to_bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            (to_bits(y.as_slice()), to_bits(gi.as_slice()), to_bits(&gp))
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "2-thread run diverged from serial");
        assert_eq!(serial, run(7), "7-thread run diverged from serial");
    }

    #[test]
    fn im2col_gradient_matches_numeric() {
        let mut c = Conv2d::new(&mut rng(), 2, 2, 3, 1).with_backend(ConvBackend::Im2col);
        let x = Tensor4::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.41).sin()).collect(),
        );
        testutil::check_input_gradient(&mut c, &x, 1e-2);
    }

    #[test]
    fn param_roundtrip() {
        let a = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        let mut p = vec![0.0; a.param_count()];
        a.read_params(&mut p);
        let mut b = Conv2d::new(&mut rng(), 2, 3, 3, 1);
        b.write_params(&p);
        let mut q = vec![0.0; b.param_count()];
        b.read_params(&mut q);
        assert_eq!(p, q);
    }
}
