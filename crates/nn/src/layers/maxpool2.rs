//! 2×2 max pooling with stride 2.

use super::Layer;
use crate::tensor4::Tensor4;

/// Max pooling over non-overlapping 2×2 windows.
///
/// Odd trailing rows/columns are dropped (floor division), matching the
/// common deep-learning default. The argmax position of each window is
/// cached so backward can route gradients to the winning element only.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    /// For each output element, flat index of the winning input element.
    argmax: Option<Vec<usize>>,
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2 {
            argmax: None,
            in_shape: None,
        }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_hw(h: usize, w: usize) -> (usize, usize) {
        (h / 2, w / 2)
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert!(h >= 2 && w >= 2, "maxpool2: input smaller than window");
        let (oh, ow) = Self::out_hw(h, w);
        let mut out = Tensor4::zeros(n, c, oh, ow);
        let mut argmax = vec![0usize; out.len()];
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best_val = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = x.index(b, ch, 2 * y + dy, 2 * xx + dx);
                                let v = x.as_slice()[idx];
                                if v > best_val {
                                    best_val = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        out.as_mut_slice()[oi] = best_val;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.in_shape = Some((n, c, h, w));
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let argmax = self
            .argmax
            .as_ref()
            .expect("maxpool2: backward before forward");
        let (n, c, h, w) = self.in_shape.expect("maxpool2: backward before forward");
        assert_eq!(
            grad_out.len(),
            argmax.len(),
            "maxpool2: gradient shape mismatch"
        );
        let mut grad_in = Tensor4::zeros(n, c, h, w);
        for (&idx, &g) in argmax.iter().zip(grad_out.as_slice()) {
            grad_in.as_mut_slice()[idx] += g;
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn forward_picks_window_max() {
        let mut p = MaxPool2::new();
        #[rustfmt::skip]
        let x = Tensor4::from_vec(1, 1, 2, 4, vec![
            1.0, 5.0, 2.0, 0.0,
            3.0, 4.0, 1.0, 6.0,
        ]);
        let y = p.forward(&x);
        assert_eq!(y.shape(), (1, 1, 1, 2));
        assert_eq!(y.as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn odd_dimensions_truncate() {
        let mut p = MaxPool2::new();
        let x = Tensor4::zeros(1, 1, 5, 3);
        let y = p.forward(&x);
        assert_eq!(y.shape(), (1, 1, 2, 1));
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2::new();
        #[rustfmt::skip]
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![
            1.0, 5.0,
            3.0, 4.0,
        ]);
        p.forward(&x);
        let g = Tensor4::from_vec(1, 1, 1, 1, vec![2.0]);
        let gi = p.backward(&g);
        assert_eq!(gi.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn gradient_matches_numeric() {
        let mut p = MaxPool2::new();
        // Distinct values so the argmax is stable under ±eps perturbation.
        let x = Tensor4::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.73).sin() * 3.0).collect(),
        );
        testutil::check_input_gradient(&mut p, &x, 1e-2);
    }
}
