//! Batch normalisation over channels (BatchNorm2d).

use super::Layer;
use crate::tensor4::Tensor4;

/// Per-channel batch normalisation with learnable scale/shift and running
/// statistics for evaluation mode.
///
/// Training: normalises each channel by the batch mean/variance computed
/// over `(n, h, w)`, then applies `γ·x̂ + β`. Evaluation: uses the running
/// (exponential-moving-average) statistics instead. The flat parameter
/// layout is `[γ…, β…]`; running statistics are buffers, not parameters
/// (they are not part of the unlearning state, matching common FL practice
/// of aggregating only trainable parameters).
#[derive(Debug, Clone)]
pub struct BatchNorm2 {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    training: bool,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x_hat: Tensor4,
    inv_std: Vec<f32>,
}

impl BatchNorm2 {
    /// Creates a batch-norm layer for `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm2: channels must be positive");
        BatchNorm2 {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            training: true,
            cache: None,
        }
    }
}

impl Layer for BatchNorm2 {
    fn name(&self) -> &'static str {
        "batchnorm2"
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    #[allow(clippy::needless_range_loop)] // channel index feeds stats + tensors
    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert_eq!(c, self.channels, "batchnorm2: channel mismatch");
        let m = (n * h * w) as f32;
        let mut out = x.clone();

        if self.training {
            let mut x_hat = x.clone();
            let mut inv_std = vec![0.0f32; c];
            for ch in 0..c {
                // Batch mean/var over (n, h, w) for this channel.
                let mut sum = 0.0f64;
                for b in 0..n {
                    for &v in x.plane(b, ch) {
                        sum += f64::from(v);
                    }
                }
                let mean = (sum / f64::from(m)) as f32;
                let mut var_acc = 0.0f64;
                for b in 0..n {
                    for &v in x.plane(b, ch) {
                        let d = f64::from(v - mean);
                        var_acc += d * d;
                    }
                }
                let var = (var_acc / f64::from(m)) as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ch] = istd;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                for b in 0..n {
                    for y in 0..h {
                        for xx in 0..w {
                            let xh = (x.get(b, ch, y, xx) - mean) * istd;
                            x_hat.set(b, ch, y, xx, xh);
                            out.set(b, ch, y, xx, self.gamma[ch] * xh + self.beta[ch]);
                        }
                    }
                }
            }
            self.cache = Some(Cache { x_hat, inv_std });
        } else {
            for ch in 0..c {
                let istd = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                for b in 0..n {
                    for y in 0..h {
                        for xx in 0..w {
                            let xh = (x.get(b, ch, y, xx) - self.running_mean[ch]) * istd;
                            out.set(b, ch, y, xx, self.gamma[ch] * xh + self.beta[ch]);
                        }
                    }
                }
            }
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let cache = self
            .cache
            .as_ref()
            .expect("batchnorm2: backward before forward (train mode)");
        let (n, c, h, w) = cache.x_hat.shape();
        assert_eq!(
            grad_out.shape(),
            (n, c, h, w),
            "batchnorm2: gradient shape mismatch"
        );
        let m = (n * h * w) as f32;
        let mut grad_in = Tensor4::zeros(n, c, h, w);

        for ch in 0..c {
            // Accumulate per-channel sums.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..n {
                for y in 0..h {
                    for xx in 0..w {
                        let dy = f64::from(grad_out.get(b, ch, y, xx));
                        sum_dy += dy;
                        sum_dy_xhat += dy * f64::from(cache.x_hat.get(b, ch, y, xx));
                    }
                }
            }
            self.grad_beta[ch] += sum_dy as f32;
            self.grad_gamma[ch] += sum_dy_xhat as f32;

            // dx = γ·istd/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
            let coeff = self.gamma[ch] * cache.inv_std[ch] / m;
            for b in 0..n {
                for y in 0..h {
                    for xx in 0..w {
                        let dy = grad_out.get(b, ch, y, xx);
                        let xh = cache.x_hat.get(b, ch, y, xx);
                        let dx = coeff * (m * dy - sum_dy as f32 - xh * sum_dy_xhat as f32);
                        grad_in.set(b, ch, y, xx, dx);
                    }
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }

    fn read_params(&self, out: &mut [f32]) {
        let (g, b) = out.split_at_mut(self.channels);
        g.copy_from_slice(&self.gamma);
        b.copy_from_slice(&self.beta);
    }

    fn write_params(&mut self, src: &[f32]) {
        let (g, b) = src.split_at(self.channels);
        self.gamma.copy_from_slice(g);
        self.beta.copy_from_slice(b);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let (g, b) = out.split_at_mut(self.channels);
        g.copy_from_slice(&self.grad_gamma);
        b.copy_from_slice(&self.grad_beta);
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.iter_mut().for_each(|v| *v = 0.0);
        self.grad_beta.iter_mut().for_each(|v| *v = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    fn batch() -> Tensor4 {
        Tensor4::from_vec(
            2,
            2,
            2,
            2,
            (0..16)
                .map(|i| (i as f32 * 0.7).sin() * 2.0 + 0.5)
                .collect(),
        )
    }

    #[test]
    fn training_output_is_normalised() {
        let mut bn = BatchNorm2::new(2);
        let y = bn.forward(&batch());
        // Per channel: mean ≈ 0 (β=0), var ≈ 1 (γ=1).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..2 {
                vals.extend_from_slice(y.plane(b, ch));
            }
            let mean = fuiov_tensor::stats::mean(&vals);
            let var = fuiov_tensor::stats::variance(&vals);
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2::new(2);
        // A few training passes to populate running statistics.
        for _ in 0..50 {
            bn.forward(&batch());
        }
        bn.set_training(false);
        let x = batch();
        let y = bn.forward(&x);
        // Eval output is an affine map of the input, not batch-normalised;
        // with converged running stats it is close to the train output.
        bn.set_training(true);
        let y_train = bn.forward(&x);
        let diff: f32 = y
            .as_slice()
            .iter()
            .zip(y_train.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(
            diff < 0.2,
            "running stats should approximate batch stats, diff {diff}"
        );
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut bn = BatchNorm2::new(2);
        testutil::check_input_gradient(&mut bn, &batch(), 2e-2);
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let mut bn = BatchNorm2::new(2);
        testutil::check_param_gradient(&mut bn, &batch(), 2e-2);
    }

    #[test]
    fn param_roundtrip() {
        let mut bn = BatchNorm2::new(3);
        bn.write_params(&[1.0, 2.0, 3.0, -1.0, -2.0, -3.0]);
        let mut p = vec![0.0; 6];
        bn.read_params(&mut p);
        assert_eq!(p, vec![1.0, 2.0, 3.0, -1.0, -2.0, -3.0]);
    }
}
