//! 2×2 average pooling with stride 2.

use super::Layer;
use crate::tensor4::Tensor4;

/// Average pooling over non-overlapping 2×2 windows (odd trailing
/// rows/columns dropped, as in [`super::MaxPool2`]).
///
/// Backward distributes each output gradient equally over its window.
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl AvgPool2 {
    /// Creates a 2×2/stride-2 average-pool layer.
    pub fn new() -> Self {
        AvgPool2 { in_shape: None }
    }
}

impl Layer for AvgPool2 {
    fn name(&self) -> &'static str {
        "avgpool2"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert!(h >= 2 && w >= 2, "avgpool2: input smaller than window");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor4::zeros(n, c, oh, ow);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = 0.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                acc += x.get(b, ch, 2 * y + dy, 2 * xx + dx);
                            }
                        }
                        out.set(b, ch, y, xx, acc / 4.0);
                    }
                }
            }
        }
        self.in_shape = Some((n, c, h, w));
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape.expect("avgpool2: backward before forward");
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(
            grad_out.shape(),
            (n, c, oh, ow),
            "avgpool2: gradient shape mismatch"
        );
        let mut grad_in = Tensor4::zeros(n, c, h, w);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let g = grad_out.get(b, ch, y, xx) / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = grad_in.index(b, ch, 2 * y + dy, 2 * xx + dx);
                                grad_in.as_mut_slice()[idx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn forward_averages_windows() {
        let mut p = AvgPool2::new();
        #[rustfmt::skip]
        let x = Tensor4::from_vec(1, 1, 2, 4, vec![
            1.0, 3.0, 0.0, 4.0,
            5.0, 7.0, 8.0, 0.0,
        ]);
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn backward_distributes_equally() {
        let mut p = AvgPool2::new();
        let x = Tensor4::zeros(1, 1, 2, 2);
        p.forward(&x);
        let g = Tensor4::from_vec(1, 1, 1, 1, vec![4.0]);
        let gi = p.backward(&g);
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_matches_numeric() {
        let mut p = AvgPool2::new();
        let x = Tensor4::from_vec(
            2,
            2,
            4,
            4,
            (0..64).map(|i| (i as f32 * 0.31).sin()).collect(),
        );
        testutil::check_input_gradient(&mut p, &x, 1e-2);
    }
}
