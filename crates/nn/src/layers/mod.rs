//! Layer implementations with manual backpropagation.
//!
//! Each layer caches whatever it needs during [`Layer::forward`] and
//! consumes that cache in [`Layer::backward`]. Parameters and their
//! gradients are exposed through flat-slice read/write methods so the whole
//! model can be serialised into one `Vec<f32>` — the representation the
//! unlearning pipeline operates on.

mod activation;
mod avgpool2;
mod batchnorm;
mod conv2d;
mod dropout;
mod flatten;
mod linear;
mod maxpool2;
mod relu;

pub use activation::{LeakyRelu, Sigmoid, Tanh};
pub use avgpool2::AvgPool2;
pub use batchnorm::BatchNorm2;
pub use conv2d::{Conv2d, ConvBackend};
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use maxpool2::MaxPool2;
pub use relu::Relu;

use crate::tensor4::Tensor4;

/// A differentiable layer.
///
/// The contract is strict sequencing: `backward` must be called with the
/// gradient of the loss w.r.t. the output of the *most recent* `forward`
/// call. Gradients accumulate into the layer's gradient buffer until
/// [`Layer::zero_grads`] is called, which supports mini-batch accumulation.
pub trait Layer: Send {
    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Computes the layer output, caching anything `backward` needs.
    fn forward(&mut self, x: &Tensor4) -> Tensor4;

    /// Propagates `grad_out` (∂loss/∂output) to ∂loss/∂input, accumulating
    /// parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Copies parameters into `out` (length exactly `param_count`).
    fn read_params(&self, _out: &mut [f32]) {}

    /// Overwrites parameters from `src` (length exactly `param_count`).
    fn write_params(&mut self, _src: &[f32]) {}

    /// Copies accumulated gradients into `out`.
    fn read_grads(&self, _out: &mut [f32]) {}

    /// Clears the gradient accumulation buffer.
    fn zero_grads(&mut self) {}

    /// Switches between training and evaluation behaviour (dropout masks,
    /// batch-norm statistics). Most layers ignore this.
    fn set_training(&mut self, _training: bool) {}

    /// Clones the layer behind a box (layers are held as trait objects).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Numerically checks ∂loss/∂input of a layer against finite
    /// differences, where the "loss" is `Σ coeffᵢ · outᵢ` for fixed random
    /// coefficients (so ∂loss/∂out = coeff).
    pub fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor4, tol: f32) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);

        let out = layer.forward(x);
        let coeff: Vec<f32> = (0..out.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (n, c, h, w) = out.shape();
        let grad_out = Tensor4::from_vec(n, c, h, w, coeff.clone());
        let analytic = layer.backward(&grad_out);

        let loss = |layer: &mut dyn Layer, x: &Tensor4| -> f64 {
            let o = layer.forward(x);
            o.as_slice()
                .iter()
                .zip(&coeff)
                .map(|(a, b)| f64::from(*a) * f64::from(*b))
                .sum()
        };

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = ((loss(layer, &xp) - loss(layer, &xm)) / (2.0 * f64::from(eps))) as f32;
            let ana = analytic.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numeric={num} analytic={ana}"
            );
        }
    }

    /// Numerically checks parameter gradients the same way.
    pub fn check_param_gradient(layer: &mut dyn Layer, x: &Tensor4, tol: f32) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);

        let out = layer.forward(x);
        let coeff: Vec<f32> = (0..out.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (n, c, h, w) = out.shape();
        let grad_out = Tensor4::from_vec(n, c, h, w, coeff.clone());
        layer.zero_grads();
        let _ = layer.backward(&grad_out);
        let mut analytic = vec![0.0; layer.param_count()];
        layer.read_grads(&mut analytic);

        let mut params = vec![0.0; layer.param_count()];
        layer.read_params(&mut params);

        let loss = |layer: &mut dyn Layer, x: &Tensor4| -> f64 {
            let o = layer.forward(x);
            o.as_slice()
                .iter()
                .zip(&coeff)
                .map(|(a, b)| f64::from(*a) * f64::from(*b))
                .sum()
        };

        let eps = 1e-3f32;
        for i in 0..params.len() {
            let orig = params[i];
            params[i] = orig + eps;
            layer.write_params(&params);
            let up = loss(layer, x);
            params[i] = orig - eps;
            layer.write_params(&params);
            let down = loss(layer, x);
            params[i] = orig;
            layer.write_params(&params);
            let num = ((up - down) / (2.0 * f64::from(eps))) as f32;
            let ana = analytic[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "param grad mismatch at {i}: numeric={num} analytic={ana}"
            );
        }
    }
}
