//! Fully-connected layer: `y = W·x + b`.

use super::Layer;
use crate::init;
use crate::tensor4::Tensor4;
use rand::Rng;

/// Dense layer mapping `(n, in_features, 1, 1)` to `(n, out_features, 1, 1)`.
///
/// Weights are stored row-major as `out_features × in_features`, followed by
/// the bias in the flat parameter layout.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// Row-major `out × in`.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor4>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "Linear::new: zero dimension"
        );
        let mut weight = vec![0.0; in_features * out_features];
        init::xavier_uniform(rng, &mut weight, in_features, out_features);
        Linear {
            in_features,
            out_features,
            weight,
            bias: vec![0.0; out_features],
            grad_weight: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        assert_eq!(
            x.features(),
            self.in_features,
            "linear: input features mismatch"
        );
        let n = x.n();
        let mut out = Tensor4::zeros(n, self.out_features, 1, 1);
        for b in 0..n {
            let xi = x.item(b);
            let oi = &mut out.as_mut_slice()[b * self.out_features..(b + 1) * self.out_features];
            for (o, (row, bias)) in oi
                .iter_mut()
                .zip(self.weight.chunks_exact(self.in_features).zip(&self.bias))
            {
                *o = fuiov_tensor::vector::dot(row, xi) + bias;
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let x = self
            .cached_input
            .as_ref()
            .expect("linear: backward before forward");
        let n = x.n();
        assert_eq!(
            grad_out.features(),
            self.out_features,
            "linear: grad features"
        );
        assert_eq!(grad_out.n(), n, "linear: grad batch size");

        let mut grad_in = Tensor4::zeros(n, self.in_features, 1, 1);
        for b in 0..n {
            let xi = x.item(b);
            let go = grad_out.item(b);
            let gi = &mut grad_in.as_mut_slice()[b * self.in_features..(b + 1) * self.in_features];
            for (o, &g) in go.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                self.grad_bias[o] += g;
                let wrow = &self.weight[o * self.in_features..(o + 1) * self.in_features];
                let grow = &mut self.grad_weight[o * self.in_features..(o + 1) * self.in_features];
                for i in 0..self.in_features {
                    grow[i] += g * xi[i];
                    gi[i] += g * wrow[i];
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.weight.len());
        w.copy_from_slice(&self.weight);
        b.copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let (w, b) = src.split_at(self.weight.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.grad_weight.len());
        w.copy_from_slice(&self.grad_weight);
        b.copy_from_slice(&self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.iter_mut().for_each(|v| *v = 0.0);
        self.grad_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(&mut rng(), 2, 2);
        l.write_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]); // W=[[1,2],[3,4]], b=[0.5,-0.5]
        let x = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn param_roundtrip() {
        let l = Linear::new(&mut rng(), 3, 2);
        let mut p = vec![0.0; l.param_count()];
        l.read_params(&mut p);
        let mut l2 = Linear::new(&mut rng(), 3, 2);
        l2.write_params(&p);
        let mut p2 = vec![0.0; l2.param_count()];
        l2.read_params(&mut p2);
        assert_eq!(p, p2);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut l = Linear::new(&mut rng(), 4, 3);
        let x = Tensor4::from_vec(2, 4, 1, 1, (0..8).map(|i| i as f32 * 0.1 - 0.4).collect());
        testutil::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let mut l = Linear::new(&mut rng(), 4, 3);
        let x = Tensor4::from_vec(2, 4, 1, 1, (0..8).map(|i| i as f32 * 0.1 - 0.4).collect());
        testutil::check_param_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Linear::new(&mut rng(), 2, 1);
        let x = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, 2.0]);
        let g = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        l.forward(&x);
        l.backward(&g);
        l.forward(&x);
        l.backward(&g);
        let mut grads = vec![0.0; l.param_count()];
        l.read_grads(&mut grads);
        assert_eq!(&grads[..2], &[2.0, 4.0]); // accumulated twice
        l.zero_grads();
        l.read_grads(&mut grads);
        assert!(grads.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut l = Linear::new(&mut rng(), 2, 1);
        let g = Tensor4::zeros(1, 1, 1, 1);
        let _ = l.backward(&g);
    }
}
