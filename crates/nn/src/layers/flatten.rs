//! Flattening layer: `(n, c, h, w) → (n, c·h·w, 1, 1)`.

use super::Layer;
use crate::tensor4::Tensor4;

/// Reshapes feature maps into flat feature vectors (no-op on the data,
/// which is already contiguous in NCHW order).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { in_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.in_shape = Some(x.shape());
        x.clone().flatten()
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let (_, c, h, w) = self.in_shape.expect("flatten: backward before forward");
        grad_out.clone().reshape(c, h, w)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data() {
        let mut f = Flatten::new();
        let x = Tensor4::from_vec(2, 2, 1, 2, (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x);
        assert_eq!(y.shape(), (2, 4, 1, 1));
        let back = f.backward(&y);
        assert_eq!(back, x);
    }
}
