//! Inverted dropout.

use super::Layer;
use crate::tensor4::Tensor4;
use fuiov_tensor::rng::rng_for;
use rand::Rng;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation
/// needs no rescaling. In evaluation mode the layer is the identity.
///
/// The mask is drawn from a deterministic per-(seed, step) stream so
/// training runs are reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    step: u64,
    training: bool,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Dropout {
            p,
            seed,
            step: 0,
            training: true,
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let mut rng = rng_for(self.seed, 0xD809 ^ self.step);
        self.step = self.step.wrapping_add(1);
        let keep = 1.0 - self.p;
        let mask: Vec<bool> = (0..x.len()).map(|_| rng.gen::<f32>() < keep).collect();
        let mut out = x.clone();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v = if m { *v / keep } else { 0.0 };
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        match &self.mask {
            None => grad_out.clone(), // eval mode or p == 0: identity
            Some(mask) => {
                assert_eq!(
                    grad_out.len(),
                    mask.len(),
                    "dropout: gradient shape mismatch"
                );
                let keep = 1.0 - self.p;
                let mut grad_in = grad_out.clone();
                for (g, &m) in grad_in.as_mut_slice().iter_mut().zip(mask) {
                    *g = if m { *g / keep } else { 0.0 };
                }
                grad_in
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x), x);
        let g = Tensor4::from_vec(1, 1, 1, 4, vec![1.0; 4]);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor4::from_vec(1, 1, 1, 1000, vec![1.0; 1000]);
        let y = d.forward(&x);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + kept, 1000);
        assert!((400..600).contains(&zeros), "zeros={zeros} far from p=0.5");
        // Expected value preserved: mean ≈ 1.
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor4::from_vec(1, 1, 1, 64, vec![1.0; 64]);
        let y = d.forward(&x);
        let g = Tensor4::from_vec(1, 1, 1, 64, vec![1.0; 64]);
        let gi = d.backward(&g);
        for (o, gv) in y.as_slice().iter().zip(gi.as_slice()) {
            assert_eq!(*o == 0.0, *gv == 0.0, "mask mismatch between fwd and bwd");
        }
    }

    #[test]
    fn masks_differ_across_steps() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor4::from_vec(1, 1, 1, 128, vec![1.0; 128]);
        let a = d.forward(&x);
        let b = d.forward(&x);
        assert_ne!(a, b, "consecutive steps should use fresh masks");
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1)")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
