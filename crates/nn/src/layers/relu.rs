//! ReLU activation.

use super::Layer;
use crate::tensor4::Tensor4;

/// Element-wise `max(0, x)`.
///
/// Backward masks the incoming gradient by the sign of the cached input
/// (subgradient 0 at exactly zero).
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut out = x.clone();
        let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mask = self.mask.as_ref().expect("relu: backward before forward");
        assert_eq!(grad_out.len(), mask.len(), "relu: gradient shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &keep) in grad_in.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *g = 0.0;
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor4::from_vec(1, 1, 1, 3, vec![-1.0, 1.0, 2.0]);
        r.forward(&x);
        let g = Tensor4::from_vec(1, 1, 1, 3, vec![5.0, 6.0, 7.0]);
        let gi = r.backward(&g);
        assert_eq!(gi.as_slice(), &[0.0, 6.0, 7.0]);
    }

    #[test]
    fn gradient_matches_numeric_away_from_zero() {
        let mut r = Relu::new();
        // Keep inputs away from the kink at 0 so finite differences are valid.
        let x = Tensor4::from_vec(1, 2, 1, 3, vec![-1.0, 0.5, 2.0, -0.7, 1.5, -2.0]);
        testutil::check_input_gradient(&mut r, &x, 1e-2);
    }

    #[test]
    fn has_no_params() {
        let r = Relu::new();
        assert_eq!(r.param_count(), 0);
    }
}
