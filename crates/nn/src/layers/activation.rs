//! Element-wise activations beyond ReLU: sigmoid, tanh and leaky ReLU.

use super::Layer;
use crate::tensor4::Tensor4;

/// Logistic sigmoid `σ(x) = 1/(1+e^{-x})`.
///
/// Backward uses the cached output: `σ'(x) = σ(x)(1−σ(x))`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    out: Option<Tensor4>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { out: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut out = x.clone();
        for v in out.as_mut_slice() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let out = self.out.as_ref().expect("sigmoid: backward before forward");
        assert_eq!(
            grad_out.len(),
            out.len(),
            "sigmoid: gradient shape mismatch"
        );
        let mut grad_in = grad_out.clone();
        for (g, &o) in grad_in.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *g *= o * (1.0 - o);
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    out: Option<Tensor4>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { out: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut out = x.clone();
        for v in out.as_mut_slice() {
            *v = v.tanh();
        }
        self.out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let out = self.out.as_ref().expect("tanh: backward before forward");
        assert_eq!(grad_out.len(), out.len(), "tanh: gradient shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &o) in grad_in.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *g *= 1.0 - o * o;
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Leaky ReLU: `x` for `x > 0`, `αx` otherwise.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative-slope `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f32) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "LeakyRelu: invalid alpha"
        );
        LeakyRelu { alpha, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut out = x.clone();
        let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
        for (v, &pos) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !pos {
                *v *= self.alpha;
            }
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mask = self
            .mask
            .as_ref()
            .expect("leaky_relu: backward before forward");
        assert_eq!(
            grad_out.len(),
            mask.len(),
            "leaky_relu: gradient shape mismatch"
        );
        let mut grad_in = grad_out.clone();
        for (g, &pos) in grad_in.as_mut_slice().iter_mut().zip(mask) {
            if !pos {
                *g *= self.alpha;
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn sigmoid_known_values() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor4::from_vec(1, 1, 1, 3, vec![0.0, 100.0, -100.0]));
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[1] > 0.999);
        assert!(y.as_slice()[2] < 0.001);
    }

    #[test]
    fn sigmoid_gradient_matches_numeric() {
        let mut s = Sigmoid::new();
        let x = Tensor4::from_vec(1, 2, 1, 3, vec![-2.0, -0.5, 0.0, 0.3, 1.0, 2.5]);
        testutil::check_input_gradient(&mut s, &x, 1e-2);
    }

    #[test]
    fn tanh_known_values() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor4::from_vec(1, 1, 1, 2, vec![0.0, 100.0]));
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_numeric() {
        let mut t = Tanh::new();
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![-1.0, -0.2, 0.4, 1.3]);
        testutil::check_input_gradient(&mut t, &x, 1e-2);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor4::from_vec(1, 1, 1, 2, vec![-2.0, 3.0]));
        assert_eq!(y.as_slice(), &[-0.2, 3.0]);
    }

    #[test]
    fn leaky_relu_gradient_matches_numeric() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor4::from_vec(1, 1, 2, 3, vec![-1.0, -0.4, 0.5, 0.9, -2.0, 1.5]);
        testutil::check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn leaky_relu_rejects_negative_alpha() {
        let _ = LeakyRelu::new(-0.5);
    }
}
