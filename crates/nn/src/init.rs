//! Weight initialisation.
//!
//! Kaiming-uniform (He) initialisation for layers followed by ReLU, and
//! Xavier-uniform for the output layer. Both take an explicit RNG so model
//! construction is deterministic given a seed.

use rand::Rng;

/// Fills `w` with Kaiming-uniform values: `U(−b, b)` with
/// `b = sqrt(6 / fan_in)`. Appropriate before ReLU activations.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, w: &mut [f32], fan_in: usize) {
    assert!(fan_in > 0, "kaiming_uniform: fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    for v in w {
        *v = rng.gen_range(-bound..bound);
    }
}

/// Fills `w` with Xavier-uniform values: `U(−b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`. Appropriate for linear output
/// layers feeding a softmax.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, w: &mut [f32], fan_in: usize, fan_out: usize) {
    assert!(
        fan_in + fan_out > 0,
        "xavier_uniform: fans must be positive"
    );
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    for v in w {
        *v = rng.gen_range(-bound..bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bounds_hold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut w = vec![0.0; 1000];
        kaiming_uniform(&mut rng, &mut w, 100);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= bound));
        // Not all zero, roughly centered.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < bound / 5.0);
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut w = vec![0.0; 1000];
        xavier_uniform(&mut rng, &mut w, 50, 10);
        let bound = (6.0f32 / 60.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(3);
        let mut b = rand::rngs::StdRng::seed_from_u64(3);
        let mut wa = vec![0.0; 16];
        let mut wb = vec![0.0; 16];
        kaiming_uniform(&mut a, &mut wa, 4);
        kaiming_uniform(&mut b, &mut wb, 4);
        assert_eq!(wa, wb);
    }
}
