//! Optimisers.
//!
//! The paper trains with plain SGD (§III-A); momentum and weight decay are
//! provided as options for the ablation benches but default to off so the
//! reproduction matches the paper's update rule `w ← w − η·g` exactly.

use fuiov_tensor::vector;

/// Stochastic gradient descent over flat parameter vectors.
///
/// ```
/// use fuiov_nn::optim::Sgd;
/// let mut sgd = Sgd::new(0.1);
/// let mut params = vec![1.0, 2.0];
/// sgd.step(&mut params, &[1.0, -1.0]);
/// assert_eq!(params, vec![0.9, 2.1]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Option<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "Sgd::new: invalid learning rate"
        );
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: None,
        }
    }

    /// Enables classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Enables L2 weight decay (added to the gradient before the step).
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update `params ← params − lr·(grad + wd·params)`,
    /// with momentum if configured.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grad.len()`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "Sgd::step: length mismatch");
        if self.momentum == 0.0 && self.weight_decay == 0.0 {
            vector::axpy(-self.lr, grad, params);
            return;
        }
        let mut effective: Vec<f32> = grad.to_vec();
        if self.weight_decay > 0.0 {
            vector::axpy(self.weight_decay, params, &mut effective);
        }
        if self.momentum > 0.0 {
            let vel = self.velocity.get_or_insert_with(|| vec![0.0; params.len()]);
            assert_eq!(vel.len(), params.len(), "Sgd::step: parameter size changed");
            for (v, g) in vel.iter_mut().zip(&effective) {
                *v = self.momentum * *v + g;
            }
            let vel = self.velocity.as_ref().expect("just inserted");
            vector::axpy(-self.lr, vel, params);
        } else {
            vector::axpy(-self.lr, &effective, params);
        }
    }
}

/// Adam optimiser (Kingma & Ba) over flat parameter vectors.
///
/// Not used by the paper reproduction (which is plain SGD) but provided
/// for the convergence ablations; note that adaptive per-coordinate steps
/// interact with the sign-storage scheme — directions stay informative,
/// but the calibrated recovery rate absorbs the changing step scale.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Option<Vec<f32>>,
    v: Option<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr > 0.0 && lr.is_finite(),
            "Adam::new: invalid learning rate"
        );
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: None,
            v: None,
        }
    }

    /// Overrides the moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either β is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Applies one bias-corrected Adam update.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grad.len()` or the parameter size
    /// changes between steps.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "Adam::step: length mismatch");
        let m = self.m.get_or_insert_with(|| vec![0.0; params.len()]);
        let v = self.v.get_or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(m.len(), params.len(), "Adam::step: parameter size changed");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, g), (mi, vi)) in params
            .iter_mut()
            .zip(grad)
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_paper_update_rule() {
        let mut sgd = Sgd::new(0.5);
        let mut p = vec![1.0, -1.0];
        sgd.step(&mut p, &[2.0, 2.0]);
        assert_eq!(p, vec![0.0, -2.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut sgd = Sgd::new(1.0).with_momentum(0.5);
        let mut p = vec![0.0];
        sgd.step(&mut p, &[1.0]); // v=1, p=-1
        sgd.step(&mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut sgd = Sgd::new(0.1).with_weight_decay(1.0);
        let mut p = vec![10.0];
        sgd.step(&mut p, &[0.0]);
        assert!((p[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut adam = Adam::new(0.1);
        let mut p = vec![0.0f32, 0.0];
        adam.step(&mut p, &[0.5, -3.0]);
        assert!((p[0] + 0.1).abs() < 1e-4, "{p:?}");
        assert!((p[1] - 0.1).abs() < 1e-4, "{p:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let mut p = vec![-4.0f32];
        for _ in 0..300 {
            let g = vec![2.0 * (p[0] - 3.0)];
            adam.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "ended at {}", p[0]);
    }

    #[test]
    fn adam_adapts_per_coordinate() {
        // A coordinate with consistently tiny gradients still moves at
        // ≈ lr per step (scale invariance), unlike SGD.
        let mut adam = Adam::new(0.01);
        let mut p = vec![0.0f32, 0.0];
        for _ in 0..50 {
            adam.step(&mut p, &[1e-4, 1.0]);
        }
        assert!(
            p[0].abs() > 0.1 * p[1].abs(),
            "small-gradient coordinate stalled: {p:?}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn adam_rejects_bad_lr() {
        let _ = Adam::new(f32::NAN);
    }

    #[test]
    fn converges_on_quadratic() {
        // minimise f(p) = (p-3)^2 ; grad = 2(p-3)
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        let mut p = vec![0.0f32];
        for _ in 0..200 {
            let g = vec![2.0 * (p[0] - 3.0)];
            sgd.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3);
    }
}
