//! Numerical gradient checking utilities.
//!
//! Public so downstream users adding custom [`Layer`]s can verify their
//! backward passes the same way this crate's own layers are tested. The
//! "loss" used is `Σ cᵢ·outᵢ` for fixed random coefficients `c`, whose
//! gradient w.r.t. the output is exactly `c` — so any mismatch is the
//! layer's fault.

use crate::layers::Layer;
use crate::tensor4::Tensor4;
use rand::{Rng, SeedableRng};

/// Result of a gradient check: the worst relative error found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest relative deviation between numeric and analytic values.
    pub max_rel_error: f32,
    /// Flat index where it occurred.
    pub worst_index: usize,
}

impl GradCheck {
    /// Whether the check passed at the given tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

fn probe_loss(layer: &mut dyn Layer, x: &Tensor4, coeff: &[f32]) -> f64 {
    let o = layer.forward(x);
    o.as_slice()
        .iter()
        .zip(coeff)
        .map(|(a, b)| f64::from(*a) * f64::from(*b))
        .sum()
}

/// Checks ∂loss/∂input against central finite differences.
///
/// `eps` is the probe step (1e-3 suits `f32`); layers with
/// non-differentiable points (ReLU at 0, max-pool ties) need inputs away
/// from those points.
///
/// ```
/// use fuiov_nn::gradcheck::check_input_gradient;
/// use fuiov_nn::layers::Tanh;
/// use fuiov_nn::Tensor4;
///
/// let mut layer = Tanh::new();
/// let x = Tensor4::from_vec(1, 1, 1, 3, vec![-0.5, 0.2, 1.0]);
/// let report = check_input_gradient(&mut layer, &x, 1e-3, 42);
/// assert!(report.passes(1e-2));
/// ```
pub fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor4, eps: f32, seed: u64) -> GradCheck {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out = layer.forward(x);
    let coeff: Vec<f32> = (0..out.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let (n, c, h, w) = out.shape();
    let grad_out = Tensor4::from_vec(n, c, h, w, coeff.clone());
    let analytic = layer.backward(&grad_out);

    let mut worst = GradCheck {
        max_rel_error: 0.0,
        worst_index: 0,
    };
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let num = ((probe_loss(layer, &xp, &coeff) - probe_loss(layer, &xm, &coeff))
            / (2.0 * f64::from(eps))) as f32;
        let ana = analytic.as_slice()[i];
        let rel = (num - ana).abs() / (1.0 + num.abs().max(ana.abs()));
        if rel > worst.max_rel_error {
            worst = GradCheck {
                max_rel_error: rel,
                worst_index: i,
            };
        }
    }
    worst
}

/// Checks parameter gradients against central finite differences.
pub fn check_param_gradient(layer: &mut dyn Layer, x: &Tensor4, eps: f32, seed: u64) -> GradCheck {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out = layer.forward(x);
    let coeff: Vec<f32> = (0..out.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let (n, c, h, w) = out.shape();
    let grad_out = Tensor4::from_vec(n, c, h, w, coeff.clone());
    layer.zero_grads();
    let _ = layer.backward(&grad_out);
    let mut analytic = vec![0.0; layer.param_count()];
    layer.read_grads(&mut analytic);

    let mut params = vec![0.0; layer.param_count()];
    layer.read_params(&mut params);

    let mut worst = GradCheck {
        max_rel_error: 0.0,
        worst_index: 0,
    };
    for i in 0..params.len() {
        let orig = params[i];
        params[i] = orig + eps;
        layer.write_params(&params);
        let up = probe_loss(layer, x, &coeff);
        params[i] = orig - eps;
        layer.write_params(&params);
        let down = probe_loss(layer, x, &coeff);
        params[i] = orig;
        layer.write_params(&params);
        let num = ((up - down) / (2.0 * f64::from(eps))) as f32;
        let ana = analytic[i];
        let rel = (num - ana).abs() / (1.0 + num.abs().max(ana.abs()));
        if rel > worst.max_rel_error {
            worst = GradCheck {
                max_rel_error: rel,
                worst_index: i,
            };
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Sigmoid};
    use rand::SeedableRng;

    #[test]
    fn sigmoid_passes() {
        let mut layer = Sigmoid::new();
        let x = Tensor4::from_vec(1, 2, 1, 2, vec![-1.0, 0.3, 0.7, 2.0]);
        let r = check_input_gradient(&mut layer, &x, 1e-3, 1);
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn linear_params_pass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = Tensor4::from_vec(2, 3, 1, 1, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]);
        let r = check_param_gradient(&mut layer, &x, 1e-3, 2);
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn broken_layer_fails_the_check() {
        /// A layer whose backward lies (returns 2× the true gradient).
        #[derive(Clone)]
        struct Broken;
        impl Layer for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn forward(&mut self, x: &Tensor4) -> Tensor4 {
                x.clone()
            }
            fn backward(&mut self, g: &Tensor4) -> Tensor4 {
                let mut out = g.clone();
                for v in out.as_mut_slice() {
                    *v *= 2.0;
                }
                out
            }
            fn clone_box(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }
        let mut layer = Broken;
        let x = Tensor4::from_vec(1, 1, 1, 3, vec![0.5, -0.5, 1.0]);
        let r = check_input_gradient(&mut layer, &x, 1e-3, 3);
        assert!(!r.passes(1e-2), "broken layer must fail: {r:?}");
    }
}
