//! Softmax cross-entropy loss.

use crate::tensor4::Tensor4;

/// Numerically-stable softmax over a logit slice.
///
/// Subtracts the max before exponentiation so large logits cannot overflow.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Mean softmax cross-entropy over a batch of logits `(n, classes, 1, 1)`,
/// returning `(loss, ∂loss/∂logits)`.
///
/// The gradient is the classic `(softmax − onehot) / n`, which is what the
/// last layer's `backward` consumes.
///
/// # Panics
///
/// Panics if `labels.len() != logits.n()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor4, labels: &[usize]) -> (f32, Tensor4) {
    let (n, classes, h, w) = logits.shape();
    assert_eq!(
        h * w,
        1,
        "softmax_cross_entropy: logits must be (n, c, 1, 1)"
    );
    assert_eq!(
        labels.len(),
        n,
        "softmax_cross_entropy: label count mismatch"
    );
    let mut grad = Tensor4::zeros(n, classes, 1, 1);
    let mut total = 0.0f64;
    for (b, &y) in labels.iter().enumerate() {
        assert!(y < classes, "softmax_cross_entropy: label {y} out of range");
        let probs = softmax(logits.item(b));
        // Clamp to avoid log(0) when the model is confidently wrong.
        total -= f64::from(probs[y].max(1e-12).ln());
        let g = &mut grad.as_mut_slice()[b * classes..(b + 1) * classes];
        for (k, gk) in g.iter_mut().enumerate() {
            let indicator = if k == y { 1.0 } else { 0.0 };
            *gk = (probs[k] - indicator) / n as f32;
        }
    }
    ((total / n as f64) as f32, grad)
}

/// Fraction of batch items whose argmax logit equals the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.n()`.
pub fn batch_accuracy(logits: &Tensor4, labels: &[usize]) -> f32 {
    let n = logits.n();
    assert_eq!(labels.len(), n, "batch_accuracy: label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let correct = (0..n)
        .filter(|&b| fuiov_tensor::stats::argmax(logits.item(b)) == Some(labels[b]))
        .count();
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(b.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor4::zeros(2, 4, 1, 1);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let mut logits = Tensor4::zeros(1, 3, 1, 1);
        logits.set(0, 1, 0, 0, 50.0);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-5);
        assert!(grad.max_abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor4::from_vec(2, 3, 1, 1, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut up = logits.clone();
            up.as_mut_slice()[i] += eps;
            let mut dn = logits.clone();
            dn.as_mut_slice()[i] -= eps;
            let (lu, _) = softmax_cross_entropy(&up, &labels);
            let (ld, _) = softmax_cross_entropy(&dn, &labels);
            let num = (lu - ld) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-3,
                "grad mismatch at {i}: numeric={num} analytic={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_item() {
        let logits = Tensor4::from_vec(1, 3, 1, 1, vec![0.3, -0.7, 1.1]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        let s: f32 = grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor4::from_vec(2, 2, 1, 1, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(batch_accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(batch_accuracy(&logits, &[1, 1]), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let logits = Tensor4::zeros(1, 2, 1, 1);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
