//! Model container and the paper's architectures.
//!
//! [`Sequential`] chains [`Layer`]s and exposes the *flat parameter vector*
//! interface the unlearning pipeline is written against: the entire model is
//! one `Vec<f32>`, and `loss_and_grad` returns the gradient in the same
//! layout. [`ModelSpec`] is a serialisable architecture description so that
//! every federated client can deterministically construct an identical
//! model from a seed.

use crate::layers::{Conv2d, Flatten, Layer, Linear, MaxPool2, Relu};
use crate::loss::{batch_accuracy, softmax_cross_entropy};
use crate::tensor4::Tensor4;
use fuiov_tensor::rng::{rng_for, streams};

/// Architecture description.
///
/// The two CNN variants mirror the paper's §V-A setup: MNIST uses
/// "two convolutional layers and two fully-connected layers"; GTSRB uses
/// "two convolutional layers and one fully connected layer". The MLP and
/// linear variants exist for fast unit tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// conv(c1,3×3,p1) → ReLU → pool → conv(c2) → ReLU → pool → fc(hidden)
    /// → ReLU → fc(classes). The paper's MNIST model shape.
    CnnTwoFc {
        /// Input channels.
        in_ch: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// First conv channel count.
        c1: usize,
        /// Second conv channel count.
        c2: usize,
        /// Hidden fully-connected width.
        hidden: usize,
        /// Output classes.
        classes: usize,
    },
    /// conv(c1) → ReLU → pool → conv(c2) → ReLU → pool → fc(classes).
    /// The paper's GTSRB model shape.
    CnnOneFc {
        /// Input channels.
        in_ch: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// First conv channel count.
        c1: usize,
        /// Second conv channel count.
        c2: usize,
        /// Output classes.
        classes: usize,
    },
    /// flatten → fc(hidden) → ReLU → fc(classes); for fast tests.
    Mlp {
        /// Flat input feature count.
        inputs: usize,
        /// Hidden width.
        hidden: usize,
        /// Output classes.
        classes: usize,
    },
    /// Single linear layer (softmax regression); the cheapest testable model.
    Linear {
        /// Flat input feature count.
        inputs: usize,
        /// Output classes.
        classes: usize,
    },
    /// Extension: the CnnTwoFc shape with batch-norm after each conv —
    /// used by the regularisation ablations.
    CnnBn {
        /// Input channels.
        in_ch: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// First conv channel count.
        c1: usize,
        /// Second conv channel count.
        c2: usize,
        /// Hidden fully-connected width.
        hidden: usize,
        /// Output classes.
        classes: usize,
    },
    /// Extension: MLP with inverted dropout on the hidden layer. The drop
    /// probability is stored in permille so the spec stays `Eq`/`Copy`.
    MlpDropout {
        /// Flat input feature count.
        inputs: usize,
        /// Hidden width.
        hidden: usize,
        /// Output classes.
        classes: usize,
        /// Drop probability × 1000 (e.g. `200` = 0.2).
        drop_permille: u16,
    },
}

impl ModelSpec {
    /// The paper's MNIST architecture at full 28×28 scale.
    pub fn mnist() -> Self {
        ModelSpec::CnnTwoFc {
            in_ch: 1,
            h: 28,
            w: 28,
            c1: 8,
            c2: 16,
            hidden: 64,
            classes: 10,
        }
    }

    /// The paper's GTSRB architecture (3-channel 32×32, here with the
    /// synthetic sign dataset's default class count).
    pub fn gtsrb(classes: usize) -> Self {
        ModelSpec::CnnOneFc {
            in_ch: 3,
            h: 32,
            w: 32,
            c1: 8,
            c2: 16,
            classes,
        }
    }

    /// A reduced-scale CNN for integration tests (same code path as
    /// [`ModelSpec::mnist`], ~20× fewer parameters).
    pub fn tiny_cnn(in_ch: usize, hw: usize, classes: usize) -> Self {
        ModelSpec::CnnTwoFc {
            in_ch,
            h: hw,
            w: hw,
            c1: 4,
            c2: 4,
            hidden: 16,
            classes,
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match *self {
            ModelSpec::CnnTwoFc { classes, .. }
            | ModelSpec::CnnOneFc { classes, .. }
            | ModelSpec::Mlp { classes, .. }
            | ModelSpec::Linear { classes, .. }
            | ModelSpec::CnnBn { classes, .. }
            | ModelSpec::MlpDropout { classes, .. } => classes,
        }
    }

    /// Expected input shape `(c, h, w)`; flat specs report `(features, 1, 1)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        match *self {
            ModelSpec::CnnTwoFc { in_ch, h, w, .. }
            | ModelSpec::CnnOneFc { in_ch, h, w, .. }
            | ModelSpec::CnnBn { in_ch, h, w, .. } => (in_ch, h, w),
            ModelSpec::Mlp { inputs, .. }
            | ModelSpec::Linear { inputs, .. }
            | ModelSpec::MlpDropout { inputs, .. } => (inputs, 1, 1),
        }
    }

    /// Builds the model with weights drawn deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = rng_for(seed, streams::INIT);
        let layers: Vec<Box<dyn Layer>> = match *self {
            ModelSpec::CnnTwoFc {
                in_ch,
                h,
                w,
                c1,
                c2,
                hidden,
                classes,
            } => {
                let flat = c2 * (h / 4) * (w / 4);
                vec![
                    Box::new(Conv2d::new(&mut rng, in_ch, c1, 3, 1)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Conv2d::new(&mut rng, c1, c2, 3, 1)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Flatten::new()),
                    Box::new(Linear::new(&mut rng, flat, hidden)),
                    Box::new(Relu::new()),
                    Box::new(Linear::new(&mut rng, hidden, classes)),
                ]
            }
            ModelSpec::CnnOneFc {
                in_ch,
                h,
                w,
                c1,
                c2,
                classes,
            } => {
                let flat = c2 * (h / 4) * (w / 4);
                vec![
                    Box::new(Conv2d::new(&mut rng, in_ch, c1, 3, 1)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Conv2d::new(&mut rng, c1, c2, 3, 1)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Flatten::new()),
                    Box::new(Linear::new(&mut rng, flat, classes)),
                ]
            }
            ModelSpec::Mlp {
                inputs,
                hidden,
                classes,
            } => vec![
                Box::new(Flatten::new()),
                Box::new(Linear::new(&mut rng, inputs, hidden)),
                Box::new(Relu::new()),
                Box::new(Linear::new(&mut rng, hidden, classes)),
            ],
            ModelSpec::Linear { inputs, classes } => vec![
                Box::new(Flatten::new()),
                Box::new(Linear::new(&mut rng, inputs, classes)),
            ],
            ModelSpec::CnnBn {
                in_ch,
                h,
                w,
                c1,
                c2,
                hidden,
                classes,
            } => {
                let flat = c2 * (h / 4) * (w / 4);
                vec![
                    Box::new(Conv2d::new(&mut rng, in_ch, c1, 3, 1)),
                    Box::new(crate::layers::BatchNorm2::new(c1)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Conv2d::new(&mut rng, c1, c2, 3, 1)),
                    Box::new(crate::layers::BatchNorm2::new(c2)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2::new()),
                    Box::new(Flatten::new()),
                    Box::new(Linear::new(&mut rng, flat, hidden)),
                    Box::new(Relu::new()),
                    Box::new(Linear::new(&mut rng, hidden, classes)),
                ]
            }
            ModelSpec::MlpDropout {
                inputs,
                hidden,
                classes,
                drop_permille,
            } => vec![
                Box::new(Flatten::new()),
                Box::new(Linear::new(&mut rng, inputs, hidden)),
                Box::new(Relu::new()),
                Box::new(crate::layers::Dropout::new(
                    f32::from(drop_permille) / 1000.0,
                    seed,
                )),
                Box::new(Linear::new(&mut rng, hidden, classes)),
            ],
        };
        Sequential::from_layers(*self, layers)
    }

    /// Parameter count of the built model (without building weights twice).
    pub fn param_count(&self) -> usize {
        // Cheap enough to just build once; specs are only used at setup.
        self.build(0).param_count()
    }
}

/// A feed-forward stack of layers with a flat-parameter interface.
#[derive(Clone)]
pub struct Sequential {
    spec: ModelSpec,
    layers: Vec<Box<dyn Layer>>,
    param_count: usize,
    training: bool,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("spec", &self.spec)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("param_count", &self.param_count)
            .finish()
    }
}

impl Sequential {
    fn from_layers(spec: ModelSpec, layers: Vec<Box<dyn Layer>>) -> Self {
        let param_count = layers.iter().map(|l| l.param_count()).sum();
        Sequential {
            spec,
            layers,
            param_count,
            training: true,
        }
    }

    /// The architecture this model was built from.
    pub fn spec(&self) -> ModelSpec {
        self.spec
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Switches every layer between training and evaluation behaviour
    /// (dropout masks, batch-norm statistics). Models start in training
    /// mode; [`Sequential::predict`] and [`Sequential::accuracy`]
    /// temporarily switch to evaluation mode themselves.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// Whether the model is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Forward pass through all layers (caches activations for backward).
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Mean loss and the flat gradient vector for one batch.
    ///
    /// Gradients are freshly computed (internal buffers are zeroed first),
    /// so the result is exactly `∂L/∂θ` for this batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.n()` or shapes are inconsistent with
    /// the architecture.
    pub fn loss_and_grad(&mut self, x: &Tensor4, labels: &[usize]) -> (f32, Vec<f32>) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
        let logits = self.forward(x);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, labels);
        let mut grad = grad_logits;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        (loss, self.grads())
    }

    /// The flat-parameter layout, layer by layer in network order: one
    /// `(layer name, range into the flat vector)` entry per *parametric*
    /// layer (layers with no trainable parameters are skipped). The ranges
    /// partition `0..param_count()` and index directly into
    /// [`Sequential::params`] / [`Sequential::set_params`] vectors —
    /// baselines that edit individual layers (e.g. NoT weight negation)
    /// use this instead of guessing offsets.
    pub fn layer_param_spans(&self) -> Vec<(&'static str, std::ops::Range<usize>)> {
        let mut spans = Vec::new();
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            if n > 0 {
                spans.push((layer.name(), off..off + n));
            }
            off += n;
        }
        spans
    }

    /// Flat copy of all parameters, layer by layer in network order.
    pub fn params(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count];
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.read_params(&mut out[off..off + n]);
            off += n;
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != param_count()`.
    pub fn set_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.param_count, "set_params: length mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.param_count();
            layer.write_params(&src[off..off + n]);
            off += n;
        }
    }

    /// Flat copy of the accumulated gradients.
    pub fn grads(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count];
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.read_grads(&mut out[off..off + n]);
            off += n;
        }
        out
    }

    /// Predicted class for each batch item (evaluated in eval mode; the
    /// previous mode is restored afterwards).
    pub fn predict(&mut self, x: &Tensor4) -> Vec<usize> {
        let was_training = self.training;
        self.set_training(false);
        let logits = self.forward(x);
        self.set_training(was_training);
        (0..logits.n())
            .map(|b| fuiov_tensor::stats::argmax(logits.item(b)).expect("non-empty logits"))
            .collect()
    }

    /// A human-readable per-layer summary (name and parameter count) —
    /// the usual "model.summary()" table.
    ///
    /// ```
    /// use fuiov_nn::ModelSpec;
    /// let m = ModelSpec::Mlp { inputs: 4, hidden: 8, classes: 2 }.build(0);
    /// let s = m.summary();
    /// assert!(s.contains("linear"));
    /// assert!(s.contains("total"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>10}", "layer", "params");
        for layer in &self.layers {
            let _ = writeln!(out, "{:<12} {:>10}", layer.name(), layer.param_count());
        }
        let _ = writeln!(out, "{:<12} {:>10}", "total", self.param_count);
        out
    }

    /// Classification accuracy on a batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.n()`.
    pub fn accuracy(&mut self, x: &Tensor4, labels: &[usize]) -> f32 {
        let was_training = self.training;
        self.set_training(false);
        let logits = self.forward(x);
        self.set_training(was_training);
        batch_accuracy(&logits, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_batch() -> (Tensor4, Vec<usize>) {
        let x = Tensor4::from_vec(4, 2, 1, 1, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn build_is_deterministic() {
        let spec = ModelSpec::Mlp {
            inputs: 4,
            hidden: 8,
            classes: 3,
        };
        let a = spec.build(5).params();
        let b = spec.build(5).params();
        let c = spec.build(6).params();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn param_roundtrip_through_flat_vector() {
        let spec = ModelSpec::tiny_cnn(1, 8, 4);
        let m1 = spec.build(1);
        let p = m1.params();
        let mut m2 = spec.build(2);
        m2.set_params(&p);
        assert_eq!(m2.params(), p);
    }

    #[test]
    fn cnn_shapes_flow_end_to_end() {
        let spec = ModelSpec::tiny_cnn(1, 8, 4);
        let mut m = spec.build(0);
        let x = Tensor4::zeros(3, 1, 8, 8);
        let logits = m.forward(&x);
        assert_eq!(logits.shape(), (3, 4, 1, 1));
    }

    #[test]
    fn cnn_one_fc_shapes() {
        let spec = ModelSpec::CnnOneFc {
            in_ch: 3,
            h: 8,
            w: 8,
            c1: 4,
            c2: 4,
            classes: 5,
        };
        let mut m = spec.build(0);
        let x = Tensor4::zeros(2, 3, 8, 8);
        assert_eq!(m.forward(&x).shape(), (2, 5, 1, 1));
    }

    #[test]
    fn whole_model_gradient_matches_numeric() {
        let spec = ModelSpec::Mlp {
            inputs: 3,
            hidden: 4,
            classes: 2,
        };
        let mut m = spec.build(9);
        let x = Tensor4::from_vec(2, 3, 1, 1, vec![0.1, -0.2, 0.5, 0.7, 0.0, -0.4]);
        let labels = [0usize, 1];
        let (_, grad) = m.loss_and_grad(&x, &labels);
        let params = m.params();
        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(3) {
            let mut p = params.clone();
            p[i] += eps;
            m.set_params(&p);
            let (lu, _) = m.loss_and_grad(&x, &labels);
            p[i] = params[i] - eps;
            m.set_params(&p);
            let (ld, _) = m.loss_and_grad(&x, &labels);
            m.set_params(&params);
            let num = (lu - ld) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "grad mismatch at {i}: numeric={num} analytic={}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_learns_xor() {
        let spec = ModelSpec::Mlp {
            inputs: 2,
            hidden: 16,
            classes: 2,
        };
        let mut m = spec.build(3);
        let (x, y) = xor_batch();
        for _ in 0..800 {
            let (_, g) = m.loss_and_grad(&x, &y);
            let mut p = m.params();
            fuiov_tensor::vector::axpy(-0.5, &g, &mut p);
            m.set_params(&p);
        }
        assert_eq!(m.accuracy(&x, &y), 1.0, "MLP failed to fit XOR");
    }

    #[test]
    fn loss_and_grad_does_not_accumulate_across_calls() {
        let spec = ModelSpec::Linear {
            inputs: 2,
            classes: 2,
        };
        let mut m = spec.build(0);
        let x = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, -1.0]);
        let (_, g1) = m.loss_and_grad(&x, &[0]);
        let (_, g2) = m.loss_and_grad(&x, &[0]);
        assert_eq!(g1, g2);
    }

    #[test]
    fn predict_matches_accuracy() {
        let spec = ModelSpec::Linear {
            inputs: 2,
            classes: 2,
        };
        let mut m = spec.build(1);
        let (x, y) = xor_batch();
        let preds = m.predict(&x);
        let acc = m.accuracy(&x, &y);
        let manual = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32;
        assert_eq!(acc, manual);
    }

    #[test]
    fn cnn_bn_builds_and_flows() {
        let spec = ModelSpec::CnnBn {
            in_ch: 1,
            h: 8,
            w: 8,
            c1: 4,
            c2: 4,
            hidden: 8,
            classes: 3,
        };
        let mut m = spec.build(0);
        let x = Tensor4::zeros(2, 1, 8, 8);
        assert_eq!(m.forward(&x).shape(), (2, 3, 1, 1));
        // BN adds 2 params per channel over the plain CnnTwoFc.
        let plain = ModelSpec::CnnTwoFc {
            in_ch: 1,
            h: 8,
            w: 8,
            c1: 4,
            c2: 4,
            hidden: 8,
            classes: 3,
        };
        assert_eq!(m.param_count(), plain.param_count() + 2 * 4 + 2 * 4);
    }

    #[test]
    fn dropout_model_eval_mode_is_deterministic() {
        let spec = ModelSpec::MlpDropout {
            inputs: 4,
            hidden: 8,
            classes: 2,
            drop_permille: 500,
        };
        let mut m = spec.build(1);
        let x = Tensor4::from_vec(1, 4, 1, 1, vec![0.5, -0.5, 0.3, 0.1]);
        // predict() runs in eval mode: repeated calls agree.
        assert_eq!(m.predict(&x), m.predict(&x));
        assert!(m.is_training());
        // Training-mode forwards differ across steps (fresh masks).
        let a = m.forward(&x);
        let b = m.forward(&x);
        assert_ne!(a, b);
    }

    #[test]
    fn summary_lists_layers_and_total() {
        let spec = ModelSpec::tiny_cnn(1, 8, 4);
        let m = spec.build(0);
        let s = m.summary();
        assert!(s.contains("conv2d"));
        assert!(s.contains("maxpool2"));
        assert!(s.contains(&m.param_count().to_string()));
    }

    #[test]
    fn layer_param_spans_partition_the_flat_vector() {
        for spec in [
            ModelSpec::Mlp {
                inputs: 9,
                hidden: 4,
                classes: 3,
            },
            ModelSpec::tiny_cnn(1, 8, 4),
        ] {
            let m = spec.build(0);
            let spans = m.layer_param_spans();
            assert!(!spans.is_empty());
            let mut expected_start = 0;
            for (name, range) in &spans {
                assert!(!name.is_empty());
                assert_eq!(range.start, expected_start, "spans must be contiguous");
                assert!(range.end > range.start, "parametric spans are non-empty");
                expected_start = range.end;
            }
            assert_eq!(expected_start, m.param_count());
            // First span is the first weighted layer (linear for the MLP).
            assert!(matches!(spans[0].0, "linear" | "conv2d"));
        }
    }

    #[test]
    fn clone_is_independent() {
        let spec = ModelSpec::Mlp {
            inputs: 2,
            hidden: 4,
            classes: 2,
        };
        let m1 = spec.build(0);
        let mut m2 = m1.clone();
        let zeros = vec![0.0; m2.param_count()];
        m2.set_params(&zeros);
        assert_ne!(m1.params(), m2.params());
    }
}
