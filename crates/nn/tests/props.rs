//! Property-based tests for the NN substrate: flat-parameter round-trips,
//! softmax invariants, and whole-model gradient checks on random inputs.

use fuiov_nn::loss::{softmax, softmax_cross_entropy};
use fuiov_nn::{ModelSpec, Tensor4};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_preserves_ordering(logits in prop::collection::vec(-20.0f32..20.0, 2..16)) {
        let p = softmax(&logits);
        for i in 0..logits.len() {
            for j in 0..logits.len() {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_item(
        logits in prop::collection::vec(-5.0f32..5.0, 4),
        label in 0usize..4,
    ) {
        let t = Tensor4::from_vec(1, 4, 1, 1, logits);
        let (_, grad) = softmax_cross_entropy(&t, &[label]);
        let s: f32 = grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-5);
        // Only the true-label coordinate is negative.
        for (k, g) in grad.as_slice().iter().enumerate() {
            if k == label {
                prop_assert!(*g <= 0.0);
            } else {
                prop_assert!(*g >= 0.0);
            }
        }
    }

    #[test]
    fn params_roundtrip_any_seed(seed in any::<u64>()) {
        let spec = ModelSpec::Mlp { inputs: 6, hidden: 5, classes: 3 };
        let m = spec.build(seed);
        let p = m.params();
        let mut m2 = spec.build(seed.wrapping_add(1));
        m2.set_params(&p);
        prop_assert_eq!(m2.params(), p);
    }

    #[test]
    fn loss_grad_matches_finite_difference_on_random_input(
        seed in 0u64..50,
        raw in prop::collection::vec(-1.0f32..1.0, 6),
        label in 0usize..3,
    ) {
        // Linear spec: smooth everywhere, so finite differences are valid
        // for arbitrary random draws (ReLU kinks would need case-by-case
        // step sizes; the MLP variant is covered by unit tests).
        let spec = ModelSpec::Linear { inputs: 3, classes: 3 };
        let mut m = spec.build(seed);
        let x = Tensor4::from_vec(2, 3, 1, 1, raw);
        let labels = [label, (label + 1) % 3];
        let (_, grad) = m.loss_and_grad(&x, &labels);
        let params = m.params();
        let eps = 1e-2f32;
        // Spot-check a few coordinates.
        for idx in [0usize, params.len() / 2, params.len() - 1] {
            let mut p = params.clone();
            p[idx] += eps;
            m.set_params(&p);
            let (lu, _) = m.loss_and_grad(&x, &labels);
            p[idx] = params[idx] - eps;
            m.set_params(&p);
            let (ld, _) = m.loss_and_grad(&x, &labels);
            m.set_params(&params);
            let num = (lu - ld) / (2.0 * eps);
            prop_assert!(
                (num - grad[idx]).abs() < 5e-2 * (1.0 + num.abs()),
                "coord {}: numeric {} vs analytic {}", idx, num, grad[idx]
            );
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient(seed in any::<u64>(), lr in 0.001f32..1.0) {
        use fuiov_nn::optim::Sgd;
        let spec = ModelSpec::Linear { inputs: 4, classes: 2 };
        let mut m = spec.build(seed);
        let x = Tensor4::from_vec(1, 4, 1, 1, vec![0.5, -0.5, 0.25, 1.0]);
        let (loss_before, grad) = m.loss_and_grad(&x, &[0]);
        let mut params = m.params();
        Sgd::new(lr.min(0.1)).step(&mut params, &grad);
        m.set_params(&params);
        let (loss_after, _) = m.loss_and_grad(&x, &[0]);
        // Small steps on a smooth convex-ish loss should not increase it
        // noticeably.
        prop_assert!(loss_after <= loss_before + 1e-3);
    }

    #[test]
    fn predictions_are_valid_classes(seed in any::<u64>()) {
        let spec = ModelSpec::Mlp { inputs: 4, hidden: 6, classes: 5 };
        let mut m = spec.build(seed);
        let x = Tensor4::from_vec(3, 4, 1, 1, (0..12).map(|i| i as f32 / 12.0).collect());
        for p in m.predict(&x) {
            prop_assert!(p < 5);
        }
    }
}
