//! End-to-end training tests for the paper's CNN architectures (reduced
//! scale): the substrate must actually learn, not just have correct
//! gradients.

use fuiov_nn::optim::{Adam, Sgd};
use fuiov_nn::{ModelSpec, Sequential, Tensor4};
use rand::{Rng, SeedableRng};

/// A tiny separable task: class = quadrant of the brightest blob in an
/// 8×8 image. Convolutions + pooling solve this easily; a broken
/// substrate doesn't.
fn blob_dataset(n: usize, seed: u64) -> (Tensor4, Vec<usize>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * 64);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen_range(0..4usize);
        let (cy, cx): (i32, i32) = match label {
            0 => (2, 2),
            1 => (2, 6),
            2 => (6, 2),
            _ => (6, 6),
        };
        let jy = cy + rng.gen_range(-1..=1);
        let jx = cx + rng.gen_range(-1..=1);
        for y in 0..8i32 {
            for x in 0..8i32 {
                let d2 = ((y - jy).pow(2) + (x - jx).pow(2)) as f32;
                let v = (-d2 / 3.0).exp() + rng.gen_range(0.0..0.15);
                data.push(v.min(1.0));
            }
        }
        labels.push(label);
    }
    (Tensor4::from_vec(n, 1, 8, 8, data), labels)
}

fn train(model: &mut Sequential, x: &Tensor4, y: &[usize], steps: usize, lr: f32) -> f32 {
    let mut sgd = Sgd::new(lr).with_momentum(0.9);
    for _ in 0..steps {
        let (_, grad) = model.loss_and_grad(x, y);
        let mut p = model.params();
        sgd.step(&mut p, &grad);
        model.set_params(&p);
    }
    model.accuracy(x, y)
}

#[test]
fn cnn_two_fc_learns_blob_quadrants() {
    let spec = ModelSpec::CnnTwoFc {
        in_ch: 1,
        h: 8,
        w: 8,
        c1: 4,
        c2: 4,
        hidden: 16,
        classes: 4,
    };
    let mut m = spec.build(5);
    let (x, y) = blob_dataset(48, 1);
    let acc = train(&mut m, &x, &y, 60, 0.1);
    assert!(acc > 0.9, "CnnTwoFc should master the blob task: {acc}");

    // Generalisation to a fresh draw of the same task.
    let (xt, yt) = blob_dataset(32, 2);
    let test_acc = m.accuracy(&xt, &yt);
    assert!(test_acc > 0.7, "should generalise: {test_acc}");
}

#[test]
fn cnn_one_fc_learns_blob_quadrants() {
    let spec = ModelSpec::CnnOneFc {
        in_ch: 1,
        h: 8,
        w: 8,
        c1: 4,
        c2: 4,
        classes: 4,
    };
    let mut m = spec.build(6);
    let (x, y) = blob_dataset(48, 3);
    let acc = train(&mut m, &x, &y, 60, 0.1);
    assert!(acc > 0.9, "CnnOneFc should master the blob task: {acc}");
}

#[test]
fn batchnorm_cnn_learns_and_eval_mode_stays_strong() {
    let spec = ModelSpec::CnnBn {
        in_ch: 1,
        h: 8,
        w: 8,
        c1: 4,
        c2: 4,
        hidden: 16,
        classes: 4,
    };
    let mut m = spec.build(7);
    let (x, y) = blob_dataset(48, 4);
    let train_acc = train(&mut m, &x, &y, 60, 0.05);
    assert!(train_acc > 0.85, "CnnBn should learn: {train_acc}");
    // accuracy() runs in eval mode (running stats); after 60 steps the
    // running statistics should support comparable performance.
    let eval_acc = m.accuracy(&x, &y);
    assert!(eval_acc > 0.7, "eval-mode accuracy collapsed: {eval_acc}");
}

#[test]
fn adam_trains_the_cnn_too() {
    let spec = ModelSpec::CnnTwoFc {
        in_ch: 1,
        h: 8,
        w: 8,
        c1: 4,
        c2: 4,
        hidden: 16,
        classes: 4,
    };
    let mut m = spec.build(8);
    let (x, y) = blob_dataset(48, 5);
    let mut adam = Adam::new(0.01);
    for _ in 0..60 {
        let (_, grad) = m.loss_and_grad(&x, &y);
        let mut p = m.params();
        adam.step(&mut p, &grad);
        m.set_params(&p);
    }
    let acc = m.accuracy(&x, &y);
    assert!(acc > 0.9, "Adam-trained CNN should master the task: {acc}");
}

#[test]
fn im2col_backend_trains_identically() {
    // Training dynamics must match across conv backends bit-for-bit is too
    // strict for f32 GEMM reordering; require matching predictions.
    use fuiov_nn::layers::{Conv2d, ConvBackend, Flatten, Layer, Linear, Relu};
    use rand::rngs::StdRng;

    let (x, y) = blob_dataset(24, 6);
    let run = |backend: ConvBackend| -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(&mut rng, 1, 4, 3, 1).with_backend(backend)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(&mut rng, 4 * 64, 4)),
        ];
        // Manual mini training loop over the raw layer stack.
        for _ in 0..20 {
            let mut cur = x.clone();
            for l in &mut layers {
                l.zero_grads();
                cur = l.forward(&cur);
            }
            let (_, mut grad) = fuiov_nn::loss::softmax_cross_entropy(&cur, &y);
            for l in layers.iter_mut().rev() {
                grad = l.backward(&grad);
            }
            for l in &mut layers {
                let n = l.param_count();
                if n == 0 {
                    continue;
                }
                let mut p = vec![0.0; n];
                let mut g = vec![0.0; n];
                l.read_params(&mut p);
                l.read_grads(&mut g);
                fuiov_tensor::vector::axpy(-0.1, &g, &mut p);
                l.write_params(&p);
            }
        }
        let mut cur = x.clone();
        for l in &mut layers {
            cur = l.forward(&cur);
        }
        (0..cur.n())
            .map(|b| fuiov_tensor::stats::argmax(cur.item(b)).unwrap())
            .collect()
    };
    let direct = run(ConvBackend::Direct);
    let gemm = run(ConvBackend::Im2col);
    let agree = direct.iter().zip(&gemm).filter(|(a, b)| a == b).count();
    assert!(
        agree >= direct.len() - 1,
        "backends diverged: {agree}/{} predictions agree",
        direct.len()
    );
}
