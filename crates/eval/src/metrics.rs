//! Model-quality metrics used across the evaluation.

use fuiov_data::Dataset;
use fuiov_nn::Sequential;
use fuiov_tensor::vector;

/// Test accuracy of a model over a whole dataset, evaluated in batches to
/// bound memory.
///
/// Returns `0.0` for an empty dataset.
pub fn test_accuracy(model: &mut Sequential, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    let all: Vec<usize> = (0..data.len()).collect();
    for chunk in all.chunks(256) {
        let (x, y) = data.gather(chunk);
        let preds = model.predict(&x);
        correct += preds.iter().zip(&y).filter(|(p, t)| p == t).count();
    }
    correct as f32 / data.len() as f32
}

/// Mean cross-entropy loss over a dataset.
///
/// Returns `0.0` for an empty dataset.
pub fn test_loss(model: &mut Sequential, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let all: Vec<usize> = (0..data.len()).collect();
    for chunk in all.chunks(256) {
        let (x, y) = data.gather(chunk);
        let (loss, _) = model.loss_and_grad(&x, &y);
        total += f64::from(loss) * chunk.len() as f64;
    }
    (total / data.len() as f64) as f32
}

/// Per-class accuracy; classes absent from the test set report `None`.
pub fn per_class_accuracy(model: &mut Sequential, data: &Dataset) -> Vec<Option<f32>> {
    let mut hit = vec![0usize; data.num_classes()];
    let mut seen = vec![0usize; data.num_classes()];
    if !data.is_empty() {
        let all: Vec<usize> = (0..data.len()).collect();
        for chunk in all.chunks(256) {
            let (x, y) = data.gather(chunk);
            let preds = model.predict(&x);
            for (p, t) in preds.iter().zip(&y) {
                seen[*t] += 1;
                if p == t {
                    hit[*t] += 1;
                }
            }
        }
    }
    hit.into_iter()
        .zip(seen)
        .map(|(h, s)| {
            if s == 0 {
                None
            } else {
                Some(h as f32 / s as f32)
            }
        })
        .collect()
}

/// L2 distance between two flat parameter vectors — the §III-B closeness
/// criterion between an unlearned and a retrained model.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn model_distance(a: &[f32], b: &[f32]) -> f32 {
    vector::l2_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuiov_data::DigitStyle;
    use fuiov_nn::ModelSpec;

    fn setup() -> (Sequential, Dataset) {
        let spec = ModelSpec::Mlp {
            inputs: 144,
            hidden: 8,
            classes: 10,
        };
        (spec.build(3), Dataset::digits(40, &DigitStyle::small(), 8))
    }

    #[test]
    fn accuracy_in_unit_range() {
        let (mut m, d) = setup();
        let acc = test_accuracy(&mut m, &d);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn accuracy_of_trained_model_improves() {
        let (mut m, d) = setup();
        let before = test_accuracy(&mut m, &d);
        // Overfit directly on the evaluation set (fine for a metric test).
        let (x, y) = d.full();
        for _ in 0..60 {
            let (_, g) = m.loss_and_grad(&x, &y);
            let mut p = m.params();
            fuiov_tensor::vector::axpy(-0.5, &g, &mut p);
            m.set_params(&p);
        }
        let after = test_accuracy(&mut m, &d);
        assert!(after > before, "training should help: {before} -> {after}");
        assert!(test_loss(&mut m, &d) < 2.3);
    }

    #[test]
    fn per_class_covers_all_classes() {
        let (mut m, d) = setup();
        let pc = per_class_accuracy(&mut m, &d);
        assert_eq!(pc.len(), 10);
        assert!(pc.iter().all(Option::is_some)); // balanced dataset
    }

    #[test]
    fn per_class_reports_none_for_absent_class() {
        let (mut m, d) = setup();
        let keep: Vec<usize> = (0..d.len()).filter(|&i| d.label(i) != 4).collect();
        let d = d.subset(&keep);
        let pc = per_class_accuracy(&mut m, &d);
        assert!(pc[4].is_none());
    }

    #[test]
    fn empty_dataset_metrics_are_zero() {
        let (mut m, d) = setup();
        let empty = d.subset(&[]);
        assert_eq!(test_accuracy(&mut m, &empty), 0.0);
        assert_eq!(test_loss(&mut m, &empty), 0.0);
    }

    #[test]
    fn model_distance_is_l2() {
        assert_eq!(model_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
